"""Cosine top-k search over an embedding store.

Implements the paper's multi-step translation: cosine similarity between a
query term and all policy terms yields the top-k (k=10) candidate pairs,
which the pipeline then confirms with an LLM equivalence prompt.  Edge
embeddings concatenate source, action, and target for whole-practice
matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.store import EmbeddingStore

DEFAULT_TOP_K = 10


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One nearest-neighbour result."""

    key: str
    score: float


def top_k(
    store: EmbeddingStore, query: str, k: int = DEFAULT_TOP_K, *, min_score: float = 0.0
) -> list[SearchHit]:
    """The ``k`` stored keys most similar to ``query``.

    Results are sorted by descending score with the key as a deterministic
    tie-break; hits below ``min_score`` are dropped.
    """
    if len(store) == 0 or k <= 0:
        return []
    query_vec = store.model.embed(query)
    qnorm = np.linalg.norm(query_vec)
    if qnorm == 0:
        return []
    # One consistent (keys, matrix) snapshot: concurrent inserts from other
    # query workers must not shift rows out from under the key list.
    keys, matrix = store.snapshot()
    scores = matrix @ (query_vec / qnorm)
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], keys[i]))
    hits = []
    for i in order[:k]:
        score = float(scores[i])
        if score < min_score:
            break
        hits.append(SearchHit(key=keys[i], score=score))
    return hits


def edge_text(source: str, action: str, target: str) -> str:
    """Canonical text form of a graph edge for embedding purposes."""
    return f"{source} {action} {target}"
