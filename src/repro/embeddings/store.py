"""Embedding store: pre-computed vectors for all graph elements.

The paper pre-computes embeddings for every node and edge of the policy
graphs and caches them alongside the other pipeline artifacts.  The store
keeps an insertion-ordered matrix for fast batched cosine search and can be
persisted to ``.npz``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.embeddings.model import EmbeddingModel


class EmbeddingStore:
    """Ordered map of text keys to embedding vectors."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or EmbeddingModel()
        self._keys: list[str] = []
        self._index: dict[str, int] = {}
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    def add(self, key: str) -> np.ndarray:
        """Embed and store ``key``; idempotent."""
        if key in self._index:
            return self._rows[self._index[key]]
        vec = self.model.embed(key)
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self._rows.append(vec)
        self._matrix = None
        return vec

    def add_many(self, keys: list[str]) -> None:
        for key in keys:
            self.add(key)

    def get(self, key: str) -> np.ndarray:
        """Vector for ``key``, embedding on demand if absent."""
        if key not in self._index:
            return self.add(key)
        return self._rows[self._index[key]]

    def matrix(self) -> np.ndarray:
        """All stored vectors stacked row-wise (cached until mutation)."""
        if self._matrix is None:
            if self._rows:
                self._matrix = np.stack(self._rows)
            else:
                self._matrix = np.zeros((0, self.model.dim))
        return self._matrix

    def save(self, path: str | Path) -> None:
        """Persist keys and vectors to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            keys=np.array(self._keys, dtype=object),
            matrix=self.matrix(),
            model_name=np.array(self.model.name),
            dim=np.array(self.model.dim),
        )

    @classmethod
    def load(cls, path: str | Path, model: EmbeddingModel | None = None) -> "EmbeddingStore":
        """Load a store persisted by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=True)
        store = cls(model or EmbeddingModel(dim=int(data["dim"]), name=str(data["model_name"])))
        keys = [str(k) for k in data["keys"]]
        matrix = data["matrix"]
        store._keys = keys
        store._index = {k: i for i, k in enumerate(keys)}
        store._rows = [matrix[i] for i in range(len(keys))]
        store._matrix = matrix if len(keys) else None
        return store
