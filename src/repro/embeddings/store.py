"""Embedding store: pre-computed vectors for all graph elements.

The paper pre-computes embeddings for every node and edge of the policy
graphs and caches them alongside the other pipeline artifacts.  The store
keeps an insertion-ordered matrix for fast batched cosine search and can be
persisted to ``.npz``.

The store is thread-safe: concurrent batch queries read (and lazily
insert) vectors from many workers, so all index mutations and matrix
reads are lock-guarded.  Embedding itself happens outside the lock — the
model is deterministic, so a racing double-computation of the same key
yields identical vectors and only one wins the insert.
"""

from __future__ import annotations

import io
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.embeddings.model import EmbeddingModel


class EmbeddingStore:
    """Ordered map of text keys to embedding vectors."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or EmbeddingModel()
        self._lock = threading.RLock()
        self._keys: list[str] = []
        self._index: dict[str, int] = {}
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    @property
    def keys(self) -> list[str]:
        with self._lock:
            return list(self._keys)

    def add(self, key: str) -> np.ndarray:
        """Embed and store ``key``; idempotent and thread-safe."""
        with self._lock:
            idx = self._index.get(key)
            if idx is not None:
                return self._rows[idx]
        vec = self.model.embed(key)
        with self._lock:
            idx = self._index.get(key)
            if idx is not None:  # another thread won the race
                return self._rows[idx]
            self._index[key] = len(self._keys)
            self._keys.append(key)
            self._rows.append(vec)
            self._matrix = None
            return vec

    def add_many(self, keys: list[str]) -> None:
        for key in keys:
            self.add(key)

    def get(self, key: str) -> np.ndarray:
        """Vector for ``key``, embedding on demand if absent."""
        with self._lock:
            idx = self._index.get(key)
            if idx is not None:
                return self._rows[idx]
        return self.add(key)

    def matrix(self) -> np.ndarray:
        """All stored vectors stacked row-wise (cached until mutation)."""
        with self._lock:
            if self._matrix is None:
                if self._rows:
                    self._matrix = np.stack(self._rows)
                else:
                    self._matrix = np.zeros((0, self.model.dim))
            return self._matrix

    def snapshot(self) -> tuple[list[str], np.ndarray]:
        """Consistent (keys, matrix) pair taken under one lock hold.

        Concurrent searchers need the key list and the row matrix to line
        up; grabbing them in two separate calls could interleave with an
        insert.
        """
        with self._lock:
            return list(self._keys), self.matrix()

    def to_bytes(self) -> bytes:
        """Serialize keys and vectors to ``.npz`` bytes (snapshot payload)."""
        buffer = io.BytesIO()
        keys, matrix = self.snapshot()
        np.savez_compressed(
            buffer,
            keys=np.array(keys, dtype=object),
            matrix=matrix,
            model_name=np.array(self.model.name),
            dim=np.array(self.model.dim),
        )
        return buffer.getvalue()

    def save(self, path: str | Path) -> None:
        """Persist keys and vectors to an ``.npz`` file, atomically.

        The payload lands in a temporary file in the destination directory
        and is renamed into place, so an existing store file is either
        fully replaced or left untouched — never truncated by a crash
        mid-write.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_bytes()
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def from_bytes(
        cls, payload: bytes, model: EmbeddingModel | None = None
    ) -> "EmbeddingStore":
        """Reconstruct a store from :meth:`to_bytes` output."""
        return cls._from_npz(np.load(io.BytesIO(payload), allow_pickle=True), model)

    @classmethod
    def load(cls, path: str | Path, model: EmbeddingModel | None = None) -> "EmbeddingStore":
        """Load a store persisted by :meth:`save`."""
        return cls._from_npz(np.load(Path(path), allow_pickle=True), model)

    @classmethod
    def _from_npz(cls, data, model: EmbeddingModel | None) -> "EmbeddingStore":
        store = cls(model or EmbeddingModel(dim=int(data["dim"]), name=str(data["model_name"])))
        keys = [str(k) for k in data["keys"]]
        matrix = data["matrix"]
        store._keys = keys
        store._index = {k: i for i, k in enumerate(keys)}
        store._rows = [matrix[i] for i in range(len(keys))]
        store._matrix = matrix if len(keys) else None
        return store
