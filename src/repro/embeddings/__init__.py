"""Offline embedding substrate.

Stands in for OpenAI's ``text-embedding-3-large`` (term/edge similarity) and
for the SciBERT similarity filter the paper applies during taxonomy
construction.  The model is a deterministic hashed n-gram embedder: no
weights, no network, identical vectors on every run.
"""

from repro.embeddings.model import EmbeddingModel, cosine_similarity
from repro.embeddings.store import EmbeddingStore
from repro.embeddings.search import SearchHit, edge_text, top_k

__all__ = [
    "EmbeddingModel",
    "cosine_similarity",
    "EmbeddingStore",
    "SearchHit",
    "edge_text",
    "top_k",
]
