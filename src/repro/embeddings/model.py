"""Deterministic hashed n-gram embedding model.

Each word contributes a hash-seeded pseudo-random vector plus fastText-style
character n-gram subword vectors; a phrase embedding is the L2-normalized
mean of its word embeddings.  Morphological variants ("email"/"emails") and
phrase extensions ("email address"/"email") therefore land close in cosine
space, which is the property the pipeline actually relies on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

_DEFAULT_DIM = 256
_NGRAM_RANGE = (3, 5)


def _stable_hash(text: str) -> int:
    """64-bit content hash, stable across processes (unlike ``hash``)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 when either is zero."""
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


@dataclass(slots=True)
class EmbeddingModel:
    """Hash-seeded embedding model.

    Args:
        dim: embedding dimensionality.
        name: model identifier recorded in stores; lets tests distinguish
            the "text-embedding-3-large stand-in" from the "SciBERT
            stand-in" configuration even though both share the mechanism.
        subword_weight: relative weight of character n-gram features versus
            whole-word features.
    """

    dim: int = _DEFAULT_DIM
    name: str = "hashed-ngram-256"
    subword_weight: float = 0.8
    _word_cache: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def _feature_vector(self, feature: str) -> np.ndarray:
        rng = np.random.default_rng(_stable_hash(self.name + "\x00" + feature))
        vec = rng.standard_normal(self.dim)
        return vec / np.linalg.norm(vec)

    def _word_vector(self, word: str) -> np.ndarray:
        cached = self._word_cache.get(word)
        if cached is not None:
            return cached
        vec = self._feature_vector("w:" + word)
        ngrams = self._char_ngrams(word)
        if ngrams:
            sub = np.zeros(self.dim)
            for gram in ngrams:
                sub += self._feature_vector("g:" + gram)
            sub_norm = np.linalg.norm(sub)
            if sub_norm > 0:
                sub = sub / sub_norm
            vec = (1.0 - self.subword_weight) * vec + self.subword_weight * sub
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        self._word_cache[word] = vec
        return vec

    @staticmethod
    def _char_ngrams(word: str) -> list[str]:
        padded = f"<{word}>"
        lo, hi = _NGRAM_RANGE
        grams = []
        for n in range(lo, hi + 1):
            grams.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
        return grams

    def embed(self, text: str) -> np.ndarray:
        """Embed a term, phrase, or short sentence."""
        words = [w for w in text.lower().split() if w]
        if not words:
            return np.zeros(self.dim)
        vec = np.zeros(self.dim)
        for word in words:
            vec += self._word_vector(word)
        vec /= len(words)
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embed a batch; returns an array of shape (len(texts), dim)."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(t) for t in texts])

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two texts under this model."""
        return cosine_similarity(self.embed(text_a), self.embed(text_b))
