"""Client-side token-bucket throttling for remote completion providers.

A remote API enforces a request budget on its side with 429s; a polite
client enforces the same budget on *its* side so the 429s (mostly) never
happen.  :class:`TokenBucket` is the standard leaky-refill formulation:
``rate`` tokens accrue per second up to a ``burst`` ceiling, each request
takes one token, and a request finding the bucket empty sleeps exactly
until its token has accrued.

Both the clock and the sleep are injectable, mirroring the seams in
:class:`~repro.resilience.retry.RetryingLLM` and :mod:`repro.jobs.faults`:
tests drive the bucket through simulated time and assert the exact waits
without ever touching the wall clock.
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """Thread-safe token bucket; ``acquire`` blocks until a token is free.

    ``rate`` is tokens (requests) per second; ``burst`` is the bucket
    capacity — how many requests may go out back-to-back after an idle
    period.  A freshly built bucket starts full.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 1.0,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._updated = self._clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self) -> bool:
        """Take a token if one is available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def acquire(self) -> float:
        """Take a token, sleeping until one accrues; returns seconds waited.

        The deficit is computed under the lock but the sleep happens
        outside it, so a stalled bucket never blocks other threads from
        computing *their* deficit — they queue up on future tokens in
        arrival order of their reservations, not on the lock.
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            self._tokens -= 1.0
            if self._tokens >= 0.0:
                return 0.0
            wait = -self._tokens / self.rate
        self._sleep(wait)
        return wait

    @property
    def available(self) -> float:
        """Current token balance (may be negative under reservation debt)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
