"""Hardened LLM provider boundary: HTTP backend, cassettes, stress profiles.

The pipeline's :class:`~repro.llm.client.LLMClient` protocol was designed
to host a real completion backend; this package supplies it plus the
machinery that makes it operable:

* :class:`HTTPProvider` — env-gated stdlib HTTP backend with connection
  reuse, per-request timeouts, a structured error taxonomy
  (:class:`~repro.errors.RateLimitError` /
  :class:`~repro.errors.TransientHTTPError` /
  :class:`~repro.errors.PermanentHTTPError`), and client-side
  :class:`TokenBucket` throttling.  Never required by tier-1.
* :class:`RecordingLLM` / :class:`ReplayLLM` — content-addressed
  prompt→completion cassettes (fsync'd JSONL) that turn one real-provider
  run into a deterministic offline fixture; strict replay raises
  :class:`~repro.errors.CassetteMissError` on uncovered prompts.
* :class:`ProfiledLLM` + named :data:`PROFILES` (``flaky-429``,
  ``brownout``, ``flapping``) — deterministic, content-keyed fault and
  latency injection for end-to-end resilience stress.
* :func:`llm_stack_state` / :func:`sync_resilience_metrics` —
  operational introspection over a composed wrapper stack.
"""

from repro.providers.cassette import (
    CassetteReport,
    RecordingLLM,
    ReplayLLM,
    SkippedLine,
    cassette_line,
    load_cassette,
)
from repro.providers.http import HTTPProvider, parse_retry_after
from repro.providers.introspect import llm_stack_state, sync_resilience_metrics
from repro.providers.profiles import (
    PROFILES,
    ProfiledLLM,
    StressProfile,
    get_profile,
)
from repro.providers.throttle import TokenBucket

__all__ = [
    "CassetteReport",
    "HTTPProvider",
    "PROFILES",
    "ProfiledLLM",
    "RecordingLLM",
    "ReplayLLM",
    "SkippedLine",
    "StressProfile",
    "TokenBucket",
    "cassette_line",
    "get_profile",
    "llm_stack_state",
    "load_cassette",
    "parse_retry_after",
    "sync_resilience_metrics",
]
