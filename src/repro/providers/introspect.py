"""Operational introspection over a composed LLM wrapper stack.

The resilience stack is built by nesting wrappers —
``CachedLLM(CircuitBreaker(RetryingLLM(ProfiledLLM(backend))))`` — and
each layer keeps its own counters (some share a
:class:`~repro.llm.client.UsageStats`, some allocate their own).  This
module walks the ``_inner``/``_fallback`` chain and folds everything
into one answer to "what is the LLM boundary doing right now": one
aggregated usage dict plus the circuit breaker's state.

:func:`sync_resilience_metrics` then projects that view onto a
:class:`~repro.core.metrics.PipelineMetrics` instance as *absolute*
values (the usage counters are lifetime totals, so assignment — not
merge — keeps repeated syncs idempotent).  The pipeline and the serving
daemon both call it just before rendering stats.
"""

from __future__ import annotations

from repro.core.metrics import PipelineMetrics
from repro.llm.client import UsageStats
from repro.resilience.breaker import CircuitBreaker

#: Breaker-state encoding used by the ``PipelineMetrics.breaker_state``
#: gauge; ordered by degradation so merged gauges keep the worst state.
BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}


def llm_stack_state(llm: object) -> dict[str, object]:
    """Aggregate usage counters and breaker state across a wrapper stack.

    Walks ``_inner`` (every wrapper) and ``_fallback``
    (:class:`~repro.providers.cassette.ReplayLLM`) links, deduplicating
    shared :class:`UsageStats` objects by identity so a stack whose
    wrappers share one stats instance is not double-counted.  Works on
    any stack shape, including a bare backend (no wrappers at all).
    """
    usage = UsageStats()
    seen_stats: set[int] = set()
    seen_nodes: set[int] = set()
    breaker_state = None
    queue = [llm]
    while queue:
        node = queue.pop()
        if node is None or id(node) in seen_nodes:
            continue
        seen_nodes.add(id(node))
        stats = getattr(node, "stats", None)
        if isinstance(stats, UsageStats) and id(stats) not in seen_stats:
            seen_stats.add(id(stats))
            usage.merge(stats)
        if isinstance(node, CircuitBreaker):
            state = node.state
            # A stack with several breakers (unusual, but possible under
            # per-shard composition) reports the most degraded one.
            if breaker_state is None or (
                BREAKER_STATE_CODES[state] > BREAKER_STATE_CODES[breaker_state]
            ):
                breaker_state = state
        queue.append(getattr(node, "_inner", None))
        queue.append(getattr(node, "_fallback", None))
    return {
        "usage": usage.as_dict(),
        "breaker_state": breaker_state if breaker_state is not None else "closed",
        "has_breaker": breaker_state is not None,
    }


def sync_resilience_metrics(llm: object, metrics: PipelineMetrics) -> dict[str, object]:
    """Project the stack's current state onto ``metrics`` (absolute set).

    Returns the :func:`llm_stack_state` dict so callers that also want
    the raw view (the daemon's ``/stats``) pay for one walk, not two.
    """
    state = llm_stack_state(llm)
    usage = state["usage"]
    metrics.llm_retries = usage["retries"]
    metrics.llm_giveups = usage["retry_giveups"]
    metrics.retry_after_honored = usage["retry_after_honored"]
    metrics.breaker_state = BREAKER_STATE_CODES[state["breaker_state"]]
    metrics.provider_calls = usage["provider_calls"]
    metrics.provider_rate_limited = usage["provider_rate_limited"]
    metrics.cassette_records = usage["cassette_records"]
    metrics.cassette_replays = usage["cassette_replays"]
    metrics.cassette_misses = usage["cassette_misses"]
    return state
