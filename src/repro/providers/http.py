"""Env-gated HTTP completion provider over the standard library.

This is the production face of the :class:`~repro.llm.client.LLMClient`
protocol: a thin JSON-over-HTTP client built on :mod:`http.client` only
(no third-party dependencies), designed to sit at the *bottom* of the
resilience stack::

    CachedLLM(CircuitBreaker(RetryingLLM(RecordingLLM(HTTPProvider(...)))))

The provider itself never retries; it classifies every failure into the
structured taxonomy in :mod:`repro.errors` — :class:`RateLimitError`
carrying the server's ``Retry-After`` hint, :class:`TransientHTTPError`
for 408/5xx/transport loss, :class:`PermanentHTTPError` for the rest of
the 4xx range — and lets :class:`~repro.resilience.retry.RetryingLLM`
decide what to do with each.  A client-side
:class:`~repro.providers.throttle.TokenBucket` keeps the request rate
under the configured budget before the server has to say 429.

Nothing in tier-1 requires this module to reach a network: construction
is explicit or env-gated (:meth:`HTTPProvider.from_env`), and the
``transport`` seam lets tests exercise every status-code path against a
canned in-process responder.
"""

from __future__ import annotations

import json
import http.client
import os
import threading
import urllib.parse

from repro.errors import (
    PermanentHTTPError,
    ProviderError,
    RateLimitError,
    TransientHTTPError,
)
from repro.llm.client import UsageStats
from repro.providers.throttle import TokenBucket

#: Environment variables that configure :meth:`HTTPProvider.from_env`.
ENV_URL = "REPRO_LLM_URL"
ENV_MODEL = "REPRO_LLM_MODEL"
ENV_API_KEY = "REPRO_LLM_API_KEY"
ENV_TIMEOUT = "REPRO_LLM_TIMEOUT"
ENV_RPS = "REPRO_LLM_RPS"


def parse_retry_after(value: str | None) -> float | None:
    """Parse a ``Retry-After`` header into seconds, tolerantly.

    Only the delta-seconds form is honored; the HTTP-date form (and any
    other garbage) yields ``None`` so a malformed header degrades to the
    client's own backoff schedule instead of crashing the error path.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except (TypeError, ValueError):
        return None
    if seconds < 0:
        return None
    return seconds


class _PooledTransport:
    """Keep-alive :mod:`http.client` transport with per-thread connections.

    One persistent connection per (scheme, host, port) per thread: worker
    threads in a batch never contend on a shared socket, and sequential
    requests reuse the established connection instead of paying a
    handshake each.  A request that fails on a *reused* connection is
    retried once on a fresh one — the server may simply have closed the
    idle keep-alive socket, which is not a backend failure.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _connection(self, scheme: str, host: str, port: int, timeout: float):
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        key = (scheme, host, port)
        conn = pool.get(key)
        reused = conn is not None
        if conn is None:
            factory = (
                http.client.HTTPSConnection
                if scheme == "https"
                else http.client.HTTPConnection
            )
            conn = factory(host, port, timeout=timeout)
            pool[key] = conn
        else:
            conn.timeout = timeout
        return conn, reused

    def _drop(self, scheme: str, host: str, port: int) -> None:
        pool = getattr(self._local, "pool", None)
        if not pool:
            return
        conn = pool.pop((scheme, host, port), None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def __call__(
        self,
        url: str,
        body: bytes,
        headers: dict[str, str],
        timeout: float,
    ) -> tuple[int, dict[str, str], bytes]:
        parts = urllib.parse.urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise PermanentHTTPError(f"unsupported provider URL: {url!r}")
        host = parts.hostname
        port = parts.port or (443 if parts.scheme == "https" else 80)
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        last_error: Exception | None = None
        for attempt in range(2):
            conn, reused = self._connection(parts.scheme, host, port, timeout)
            try:
                conn.request("POST", path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                resp_headers = {k.lower(): v for k, v in response.getheaders()}
                return response.status, resp_headers, payload
            except (http.client.HTTPException, OSError) as exc:
                self._drop(parts.scheme, host, port)
                last_error = exc
                # Only a request that *reused* a pooled connection earns
                # the free in-transport replay; a fresh connection that
                # failed is a genuine transport error for the caller.
                if not reused or attempt:
                    break
        raise TransientHTTPError(f"connection to {host}:{port} failed: {last_error}")


class HTTPProvider:
    """Stdlib HTTP completion backend implementing ``LLMClient``.

    The request is ``POST {url}`` with body
    ``{"model": ..., "prompt": ...}``; the response may answer in this
    repository's native shape (``{"completion": "..."}``) or the common
    OpenAI-style shapes (``choices[0].text`` / ``choices[0].message.content``).

    ``transport`` is the injectable seam: any callable
    ``(url, body, headers, timeout) -> (status, headers, body)``.  Tests
    pass a canned responder; production uses :class:`_PooledTransport`.
    """

    def __init__(
        self,
        url: str,
        *,
        model: str = "default",
        api_key: str | None = None,
        timeout_seconds: float = 30.0,
        requests_per_second: float | None = None,
        burst: float = 4.0,
        transport=None,
        stats: UsageStats | None = None,
    ) -> None:
        if not url:
            raise ProviderError("provider URL must be non-empty")
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0")
        self.url = url
        self.model = model
        self._api_key = api_key
        self.timeout_seconds = float(timeout_seconds)
        self._transport = transport if transport is not None else _PooledTransport()
        self._bucket = (
            TokenBucket(requests_per_second, burst)
            if requests_per_second
            else None
        )
        self.stats = stats if stats is not None else UsageStats()
        self._lock = threading.Lock()

    # -- configuration ---------------------------------------------------

    @staticmethod
    def is_configured(env: dict[str, str] | None = None) -> bool:
        """Is the env-gated provider switched on (``REPRO_LLM_URL`` set)?"""
        env = os.environ if env is None else env
        return bool(env.get(ENV_URL))

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None, **overrides) -> "HTTPProvider":
        """Build a provider from ``REPRO_LLM_*`` environment variables.

        Raises :class:`~repro.errors.ProviderError` when ``REPRO_LLM_URL``
        is unset — callers should gate on :meth:`is_configured` first, so
        offline runs never construct a provider by accident.
        """
        env = os.environ if env is None else env
        url = env.get(ENV_URL, "")
        if not url:
            raise ProviderError(
                f"HTTP provider requested but {ENV_URL} is not set; "
                "tier-1 runs must stay offline"
            )
        kwargs: dict[str, object] = {"url": url}
        if env.get(ENV_MODEL):
            kwargs["model"] = env[ENV_MODEL]
        if env.get(ENV_API_KEY):
            kwargs["api_key"] = env[ENV_API_KEY]
        if env.get(ENV_TIMEOUT):
            try:
                kwargs["timeout_seconds"] = float(env[ENV_TIMEOUT])
            except ValueError as exc:
                raise ProviderError(f"invalid {ENV_TIMEOUT}: {env[ENV_TIMEOUT]!r}") from exc
        if env.get(ENV_RPS):
            try:
                kwargs["requests_per_second"] = float(env[ENV_RPS])
            except ValueError as exc:
                raise ProviderError(f"invalid {ENV_RPS}: {env[ENV_RPS]!r}") from exc
        kwargs.update(overrides)
        return cls(**kwargs)  # type: ignore[arg-type]

    # -- request path ----------------------------------------------------

    def _headers(self) -> dict[str, str]:
        headers = {
            "Content-Type": "application/json",
            "Accept": "application/json",
            "Connection": "keep-alive",
        }
        if self._api_key:
            headers["Authorization"] = f"Bearer {self._api_key}"
        return headers

    @staticmethod
    def _extract_completion(payload: bytes) -> str:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransientHTTPError(f"unparseable provider response: {exc}") from exc
        if isinstance(doc, dict):
            completion = doc.get("completion")
            if isinstance(completion, str):
                return completion
            choices = doc.get("choices")
            if isinstance(choices, list) and choices and isinstance(choices[0], dict):
                first = choices[0]
                if isinstance(first.get("text"), str):
                    return first["text"]
                message = first.get("message")
                if isinstance(message, dict) and isinstance(message.get("content"), str):
                    return message["content"]
        raise TransientHTTPError(
            "provider response carried no completion "
            "(expected 'completion' or OpenAI-style 'choices')"
        )

    def _classify(self, status: int, headers: dict[str, str], payload: bytes) -> Exception:
        detail = payload[:200].decode("utf-8", "replace")
        if status == 429:
            with self._lock:
                self.stats.provider_rate_limited += 1
            return RateLimitError(
                f"provider rate-limited the request: {detail}",
                retry_after=parse_retry_after(headers.get("retry-after")),
            )
        if status == 408 or status >= 500:
            return TransientHTTPError(
                f"provider returned {status}: {detail}", status=status
            )
        return PermanentHTTPError(
            f"provider rejected the request with {status}: {detail}", status=status
        )

    def complete(self, prompt: str) -> str:
        if self._bucket is not None:
            self._bucket.acquire()
        body = json.dumps(
            {"model": self.model, "prompt": prompt}, ensure_ascii=False
        ).encode("utf-8")
        try:
            status, headers, payload = self._transport(
                self.url, body, self._headers(), self.timeout_seconds
            )
        except ProviderError:
            raise
        except TimeoutError as exc:
            raise TransientHTTPError(f"provider request timed out: {exc}") from exc
        except OSError as exc:
            raise TransientHTTPError(f"provider transport failed: {exc}") from exc
        if status != 200:
            raise self._classify(status, headers, payload)
        completion = self._extract_completion(payload)
        # Only the provider-specific counter is bumped here; call/token
        # accounting lives in CachedLLM so a stack that aggregates every
        # wrapper's stats never double-counts a completion.
        with self._lock:
            self.stats.provider_calls += 1
        return completion
