"""Declarative, deterministic stress profiles for the LLM boundary.

A :class:`StressProfile` describes how an unreliable provider behaves —
what fraction of prompts hit rate limits, connection resets, or
timeouts, how long those bursts last, and what the latency distribution
looks like — and :class:`ProfiledLLM` enacts it around any real backend.

Everything is **content-keyed**: whether a prompt is designated to
fault, which fault it draws, and what latency it pays are all derived
from ``sha256(seed:prompt_digest:channel)``, never from call order,
wall-clock time, or shared mutable state.  The same suite of prompts
therefore sees the *same* faults at 1, 2, or 8 workers, in any arrival
order — which is what lets the chaos campaign assert byte-identical
verdicts across worker counts.

Fault bursts are modeled in *attempt space*: a designated prompt fails
its first ``faults_per_prompt`` attempts and then succeeds.  With
``faults_per_prompt`` no larger than the retry budget, every designated
prompt is eventually rescued by :class:`~repro.resilience.retry.RetryingLLM`
and the run's verdicts match a fault-free run exactly; push it past the
budget and the profile deterministically produces giveups instead.

Latency injection goes through an injectable ``sleep`` seam (the bugfix
rider): chaos suites pass a fake sleep and run the full brownout profile
in microseconds, while a manual stress run against the wall clock uses
the default ``time.sleep``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

from repro.errors import RateLimitError, TransientHTTPError
from repro.llm.client import LLMClient, UsageStats, prompt_fingerprint

#: Fault kinds a profile may draw from.
KIND_RATE_LIMIT = "rate_limit"  # 429 with a Retry-After hint
KIND_RESET = "reset"  # connection reset mid-request
KIND_TIMEOUT = "timeout"  # request deadline expired

_KNOWN_KINDS = frozenset({KIND_RATE_LIMIT, KIND_RESET, KIND_TIMEOUT})


def _draw(seed: int, digest: str, channel: str) -> float:
    """Deterministic uniform draw in [0, 1) keyed by content, not order."""
    material = f"{seed}:{digest}:{channel}".encode("utf-8")
    bucket = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    return bucket / 2**64


@dataclass(frozen=True, slots=True)
class StressProfile:
    """One named failure regime for the provider boundary.

    ``fault_rate`` is the fraction of prompts designated to fault;
    each designated prompt fails its first ``faults_per_prompt``
    attempts with a kind drawn (content-keyed) from ``kinds``.
    ``latency_base``/``latency_spread`` give every call a seeded
    latency; ``trickle_rate``/``trickle_seconds`` additionally designate
    slow-trickle prompts whose responses crawl in far above the p99.
    """

    name: str
    seed: int = 0
    fault_rate: float = 0.0
    faults_per_prompt: int = 1
    kinds: tuple[str, ...] = (KIND_RATE_LIMIT,)
    retry_after_seconds: float | None = None
    latency_base: float = 0.0
    latency_spread: float = 0.0
    trickle_rate: float = 0.0
    trickle_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= self.trickle_rate <= 1.0:
            raise ValueError("trickle_rate must be in [0, 1]")
        if self.faults_per_prompt < 0:
            raise ValueError("faults_per_prompt must be >= 0")
        unknown = set(self.kinds) - _KNOWN_KINDS
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if self.fault_rate > 0.0 and not self.kinds:
            raise ValueError("a faulting profile needs at least one kind")
        if min(self.latency_base, self.latency_spread, self.trickle_seconds) < 0:
            raise ValueError("latencies must be >= 0")

    # -- content-keyed decisions ----------------------------------------

    def is_designated(self, digest: str) -> bool:
        """Does this prompt fault under the profile?"""
        return self.fault_rate > 0.0 and _draw(self.seed, digest, "fault") < self.fault_rate

    def fault_kind(self, digest: str) -> str:
        index = int(_draw(self.seed, digest, "kind") * len(self.kinds))
        return self.kinds[min(index, len(self.kinds) - 1)]

    def latency_for(self, digest: str) -> float:
        """Seeded per-prompt latency (base + spread draw + trickle tail)."""
        latency = self.latency_base + self.latency_spread * _draw(
            self.seed, digest, "latency"
        )
        if self.trickle_rate > 0.0 and _draw(self.seed, digest, "trickle") < self.trickle_rate:
            latency += self.trickle_seconds
        return latency

    def build_fault(self, digest: str) -> Exception:
        kind = self.fault_kind(digest)
        if kind == KIND_RATE_LIMIT:
            return RateLimitError(
                f"injected 429 for digest {digest[:12]}… "
                f"(profile {self.name!r})",
                retry_after=self.retry_after_seconds,
            )
        if kind == KIND_RESET:
            return TransientHTTPError(
                f"injected connection reset for digest {digest[:12]}… "
                f"(profile {self.name!r})"
            )
        return TransientHTTPError(
            f"injected timeout for digest {digest[:12]}… "
            f"(profile {self.name!r})"
        )


#: The named regimes the chaos campaign and CLI ``--profile`` accept.
#: ``faults_per_prompt`` stays within the default retry budget
#: (``RetryPolicy.max_retries = 2``) so every designated prompt is
#: rescued and verdicts stay identical to a fault-free run.
PROFILES: dict[str, StressProfile] = {
    profile.name: profile
    for profile in (
        # Aggressive rate limiting: a third of prompts bounce off 429s
        # before succeeding.  The Retry-After hint (0.25s) deliberately
        # exceeds the default geometric schedule (0.05s, 0.1s) so honoring
        # it is observable in `retry_after_honored`.
        StressProfile(
            name="flaky-429",
            seed=429,
            fault_rate=0.35,
            faults_per_prompt=2,
            kinds=(KIND_RATE_LIMIT,),
            retry_after_seconds=0.25,
        ),
        # Degraded-capacity brownout: everything is slow, a quarter of
        # prompts trickle in far above the p99, and occasional timeouts
        # need one retry.
        StressProfile(
            name="brownout",
            seed=7,
            fault_rate=0.10,
            faults_per_prompt=1,
            kinds=(KIND_TIMEOUT,),
            latency_base=0.2,
            latency_spread=0.3,
            trickle_rate=0.25,
            trickle_seconds=1.5,
        ),
        # Flapping backend: nearly half of prompts hit a rotating mix of
        # resets, 429s, and timeouts before recovering.
        StressProfile(
            name="flapping",
            seed=13,
            fault_rate=0.45,
            faults_per_prompt=2,
            kinds=(KIND_RESET, KIND_RATE_LIMIT, KIND_TIMEOUT),
            retry_after_seconds=0.02,
            latency_base=0.01,
            latency_spread=0.05,
        ),
    )
}


def get_profile(name: str) -> StressProfile:
    """Look up a named profile; unknown names list the valid ones."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown stress profile {name!r} (known: {known})") from None


class ProfiledLLM:
    """Enact a :class:`StressProfile` around any ``LLMClient``.

    Composes exactly where a real unreliable provider would sit — at the
    bottom of the stack, under ``RetryingLLM``/``CircuitBreaker`` — so
    the chaos campaign exercises the same code paths a production outage
    would.  Per-prompt attempt counts (the only mutable state) are
    lock-guarded and content-keyed, preserving determinism under any
    worker interleaving.
    """

    def __init__(
        self,
        inner: LLMClient,
        profile: StressProfile,
        *,
        sleep=time.sleep,
        stats: UsageStats | None = None,
    ) -> None:
        self._inner = inner
        self.profile = profile
        self._sleep = sleep
        self.stats = stats if stats is not None else UsageStats()
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}

    def complete(self, prompt: str) -> str:
        digest = prompt_fingerprint(prompt)
        latency = self.profile.latency_for(digest)
        if latency > 0.0:
            self._sleep(latency)
        if self.profile.is_designated(digest):
            with self._lock:
                seen = self._attempts.get(digest, 0)
                if seen < self.profile.faults_per_prompt:
                    self._attempts[digest] = seen + 1
                    self.stats.faults_injected += 1
                    fault = self.profile.build_fault(digest)
                else:
                    fault = None
            if fault is not None:
                raise fault
        return self._inner.complete(prompt)
