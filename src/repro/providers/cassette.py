"""Record/replay cassettes: real-provider runs become offline fixtures.

A cassette is an append-only JSONL file of prompt→completion pairs keyed
by prompt digest (:func:`~repro.llm.client.prompt_fingerprint`).  Each
line is the same self-checking envelope the checkpoint journal uses —
``{"sha256": <hex of canonical record>, "record": {...}}`` — appended
through :func:`repro.store.atomic.append_durable_line` (write + flush +
fsync), so a kill mid-recording loses at most the pair being appended
and never corrupts earlier ones.

:class:`RecordingLLM` wraps a live backend and captures every completion
it produces; :class:`ReplayLLM` serves a cassette back deterministically
with no backend at all.  The composition is content-addressed, not
call-ordered: any worker count, any arrival order, any retry schedule
replays to the same completions, which is what makes a recorded
real-policy run a stable tier-1 fixture.

Replay loading tolerates exactly the damage an append-only log can
suffer — torn tails, checksum-failed lines, garbage bytes — by skipping
the bad line and reporting it in a structured
:class:`CassetteReport`; a damaged cassette degrades to a smaller one,
it never crashes replay.  Duplicate digests are first-wins (two workers
may race to record the same prompt; both wrote the same completion).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CassetteError, CassetteMissError
from repro.llm.client import LLMClient, UsageStats, prompt_fingerprint
from repro.store.atomic import StepHook, append_durable_line, atomic_write_json

CASSETTE_VERSION = 1

#: Suffix of the damage sidecar written next to a cassette whose load
#: skipped lines, so ``fsck`` can report cassette damage observed by a
#: real replay run without replaying the cassette itself.
SIDECAR_SUFFIX = ".integrity.json"


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def cassette_line(prompt: str, completion: str) -> str:
    """Envelope one prompt→completion pair as a self-checking JSONL line."""
    record = {
        "v": CASSETTE_VERSION,
        "digest": prompt_fingerprint(prompt),
        "prompt": prompt,
        "completion": completion,
    }
    payload = _canonical(record)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return json.dumps(
        {"sha256": digest, "record": record},
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(slots=True)
class SkippedLine:
    """One cassette line that could not be trusted, and why."""

    line_number: int  # 1-based
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {"line_number": self.line_number, "reason": self.reason}


@dataclass(slots=True)
class CassetteReport:
    """Structured account of a cassette load."""

    path: str
    entries: int = 0  # distinct digests loaded
    duplicates: int = 0  # repeated digests (first occurrence wins)
    skipped: list[SkippedLine] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "entries": self.entries,
            "duplicates": self.duplicates,
            "skipped": [line.as_dict() for line in self.skipped],
        }


def _parse_line(line: str) -> tuple[str, str, str]:
    """Validate one envelope line → (digest, prompt, completion).

    Raises ``ValueError`` with a human-readable reason on any damage;
    the loader converts that into a :class:`SkippedLine`.
    """
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable JSON: {exc}") from exc
    if not isinstance(envelope, dict):
        raise ValueError("envelope is not an object")
    record = envelope.get("record")
    declared = envelope.get("sha256")
    if not isinstance(record, dict) or not isinstance(declared, str):
        raise ValueError("envelope missing record/sha256")
    actual = hashlib.sha256(_canonical(record).encode("utf-8")).hexdigest()
    if actual != declared:
        raise ValueError("checksum mismatch")
    digest = record.get("digest")
    prompt = record.get("prompt")
    completion = record.get("completion")
    if (
        not isinstance(digest, str)
        or not isinstance(prompt, str)
        or not isinstance(completion, str)
    ):
        raise ValueError("record missing digest/prompt/completion")
    if prompt_fingerprint(prompt) != digest:
        raise ValueError("digest does not match prompt")
    return digest, prompt, completion


def parse_cassette_line(line: str) -> tuple[str, str, str]:
    """Public seam for the integrity walkers: validate one envelope line
    → ``(digest, prompt, completion)``, raising ``ValueError`` with a
    human-readable reason on any damage."""
    return _parse_line(line)


def sidecar_path(path: str | Path) -> Path:
    """Where a cassette's damage sidecar lives (``<cassette>.integrity.json``)."""
    return Path(str(path) + SIDECAR_SUFFIX)


def persist_cassette_report(report: CassetteReport) -> Path | None:
    """Persist damage a cassette load observed; drop the sidecar when clean.

    Called by :class:`RecordingLLM` and :class:`ReplayLLM` after every
    load: skipped (torn/corrupt) lines are written atomically next to
    the cassette so a later ``fsck`` can report the damage without a
    full replay, and a clean load removes any stale sidecar so the two
    never disagree.  Returns the sidecar path when one was written.
    """
    side = sidecar_path(report.path)
    if report.skipped:
        atomic_write_json(side, {"v": CASSETTE_VERSION, **report.as_dict()})
        return side
    try:
        side.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - unwritable parent; load proceeds
        pass
    return None


def load_cassette(path: str | Path) -> tuple[dict[str, str], CassetteReport]:
    """Load a cassette into a digest→completion map, skipping damage.

    A missing file is an empty cassette (strict replay then reports every
    lookup as a miss — loudly — rather than the load crashing first).
    """
    path = Path(path)
    table: dict[str, str] = {}
    report = CassetteReport(path=str(path))
    if not path.exists():
        return table, report
    try:
        text = path.read_text("utf-8", errors="replace")
    except OSError as exc:
        raise CassetteError(f"cassette {path} is unreadable: {exc}") from exc
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            digest, _prompt, completion = _parse_line(line)
        except ValueError as exc:
            report.skipped.append(SkippedLine(line_number=number, reason=str(exc)))
            continue
        if digest in table:
            report.duplicates += 1
            continue
        table[digest] = completion
    report.entries = len(table)
    return table, report


class RecordingLLM:
    """Capture every completion the inner backend produces into a cassette.

    Thread-safe and dedup-on-write: concurrent workers completing the
    same prompt record it once (first caller wins the append).  The file
    handle stays open for the wrapper's lifetime so every append is one
    write + flush + fsync, and :meth:`close` (or use as a context
    manager) releases it.  Appending to an existing cassette extends it:
    already-recorded digests are loaded first and never re-appended.
    """

    def __init__(
        self,
        inner: LLMClient,
        path: str | Path,
        *,
        fsync: bool = True,
        stats: UsageStats | None = None,
        step: StepHook | None = None,
    ) -> None:
        self._inner = inner
        self._path = Path(path)
        self._fsync = fsync
        self._step = step
        self.stats = stats if stats is not None else UsageStats()
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._recorded, self.report = load_cassette(self._path)
        persist_cassette_report(self.report)
        self._handle = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def complete(self, prompt: str) -> str:
        completion = self._inner.complete(prompt)
        digest = prompt_fingerprint(prompt)
        with self._lock:
            if self._handle is None:
                raise CassetteError(f"cassette {self._path} is closed for recording")
            if digest not in self._recorded:
                append_durable_line(
                    self._handle,
                    cassette_line(prompt, completion),
                    fsync=self._fsync,
                    step=self._step,
                    label=digest[:12],
                )
                self._recorded[digest] = completion
                self.stats.cassette_records += 1
        return completion

    def __len__(self) -> int:
        with self._lock:
            return len(self._recorded)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RecordingLLM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ReplayLLM:
    """Serve a recorded cassette deterministically; no backend required.

    In strict mode (the default) an unknown prompt raises a typed
    :class:`~repro.errors.CassetteMissError` carrying the prompt digest,
    so an incomplete fixture fails loudly with exactly the inputs a
    re-recording run must cover.  With ``fallback`` set, misses delegate
    to that client instead (useful for incrementally extending a cassette
    behind a :class:`RecordingLLM`).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        strict: bool = True,
        fallback: LLMClient | None = None,
        stats: UsageStats | None = None,
    ) -> None:
        self._path = Path(path)
        self.strict = strict
        self._fallback = fallback
        self.stats = stats if stats is not None else UsageStats()
        self._lock = threading.Lock()
        self._table, self.report = load_cassette(self._path)
        persist_cassette_report(self.report)

    @property
    def path(self) -> Path:
        return self._path

    def complete(self, prompt: str) -> str:
        digest = prompt_fingerprint(prompt)
        with self._lock:
            hit = self._table.get(digest)
            if hit is not None:
                self.stats.cassette_replays += 1
                return hit
            self.stats.cassette_misses += 1
        if self._fallback is not None:
            return self._fallback.complete(prompt)
        if self.strict:
            raise CassetteMissError(
                f"cassette {self._path} has no completion for prompt "
                f"digest {digest[:12]}… ({len(self._table)} entries loaded)",
                prompt_digest=digest,
            )
        raise CassetteMissError(
            f"cassette {self._path} missed digest {digest[:12]}… and no "
            "fallback client is configured",
            prompt_digest=digest,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)
