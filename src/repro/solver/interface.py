"""Solver façade: the public API of the SMT substrate.

Mirrors the slice of the SMT-LIB command set the pipeline uses: declare
constants, assert formulas, ``push``/``pop``, ``check-sat``, and
``check-sat-assuming``.  Formulas may contain quantifiers; they are
grounded over the declared universe at check time.  All resource budgets
convert to UNKNOWN results with an explanatory reason — the mechanism by
which the paper's "solver timeouts" are observed rather than suffered.

Thread ownership: a :class:`Solver` instance is single-thread-owned.  It
carries mutable per-check state (assertion stack, persistent SAT core,
grounding counters, statistics) with no internal locking; the concurrent
batch engine (:meth:`repro.core.pipeline.PolicyPipeline.query_batch`)
therefore builds a fresh instance per verification inside each worker and
shares only the immutable :class:`SolverBudget` across threads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import BudgetExceededError, SolverError
from repro.fol.formula import Formula, Not, Predicate
from repro.fol.simplify import simplify
from repro.fol.visitor import collect_constants, free_variables
from repro.solver import modelcheck
from repro.solver.cnf import atom_key, tseitin
from repro.solver.grounding import GroundingCounter, Universe, ground
from repro.solver.literals import AtomPool
from repro.solver.preprocess import preprocess
from repro.solver.proof import ProofLog, check_proof
from repro.solver.result import (
    CERTIFICATION_FAILED,
    CertificateReport,
    SatResult,
    SolverResult,
    SolverStatistics,
)
from repro.solver.sat import CDCLSolver
from repro.solver.theory import needs_theory, solve_with_theory


@dataclass(frozen=True, slots=True)
class SolverBudget:
    """Resource limits for one check.

    ``None`` disables the corresponding limit.  The defaults are generous
    enough for query-sized problems and small enough that a full-policy
    encoding reliably reports UNKNOWN instead of hanging.
    """

    max_conflicts: int | None = 50_000
    max_propagations: int | None = 5_000_000
    max_ground_instances: int | None = 200_000
    timeout_seconds: float | None = 10.0

    def scaled(self, factor: float) -> "SolverBudget":
        """A budget with every finite limit multiplied by ``factor``.

        Disabled limits (``None``) stay disabled.  This is the escalation
        primitive of the degradation ladder: UNKNOWN-with-budget-reason
        queries are re-checked at 4x, 16x, ... of their original budget.
        """
        if factor <= 0:
            raise ValueError("scale factor must be > 0")

        def scale_int(value: int | None) -> int | None:
            return None if value is None else max(1, int(value * factor))

        return SolverBudget(
            max_conflicts=scale_int(self.max_conflicts),
            max_propagations=scale_int(self.max_propagations),
            max_ground_instances=scale_int(self.max_ground_instances),
            timeout_seconds=(
                None
                if self.timeout_seconds is None
                else self.timeout_seconds * factor
            ),
        )


@dataclass(frozen=True, slots=True)
class CertificationConfig:
    """Trust-but-verify settings for one :class:`Solver`.

    With certification enabled, every decided verdict is independently
    re-checked (SAT answers by model evaluation against the original
    formulas, UNSAT answers by clausal-proof replay, theory lemmas by an
    independent congruence check) and demoted to UNKNOWN with reason
    ``"certification failed: ..."`` when the check disagrees — a
    soundness alarm, never a silently wrong answer.

    ``max_proof_events`` caps proof replay: larger proofs report a
    ``"skipped"`` certificate (verdict stands, but the certificate says
    the proof was not replayed) instead of burning unbounded check time.
    """

    enabled: bool = True
    check_models: bool = True
    check_proofs: bool = True
    check_grounding: bool = True
    max_proof_events: int = 100_000


class Solver:
    """An incremental SMT solver over many-sorted ground/quantified FOL.

    Not thread-safe: create one instance per worker (see the module
    docstring for the ownership contract the batch query engine relies on).
    """

    def __init__(
        self,
        budget: SolverBudget | None = None,
        *,
        enable_preprocessing: bool = False,
        certification: CertificationConfig | None = None,
        decision_seed: int = 0,
    ) -> None:
        self.budget = budget or SolverBudget()
        self.enable_preprocessing = enable_preprocessing
        self.certification = certification
        # VSIDS diversification for portfolio solving: perturbs the SAT
        # core's initial decision phases deterministically.  Seed 0 (the
        # default) is the exact legacy search; any other seed explores a
        # different trajectory over the same formulas, so a budget that
        # starves seed 0 may still let seed k decide — soundness is
        # unaffected because every decisive answer is (optionally)
        # certified independently of the trajectory that found it.
        self.decision_seed = decision_seed
        self.universe = Universe()
        self.statistics = SolverStatistics()
        self._stack: list[list[Formula]] = [[]]
        self._persistent: tuple[CDCLSolver, AtomPool] | None = None
        # Certification bookkeeping: per grounded assertion, the original
        # formula, the grounder's pre-simplification output, and the
        # universe snapshot it was expanded over.  Rebuilt with _build.
        self._cert_records: list[
            tuple[Formula, Formula, dict]
        ] = []
        # The grounding budget is cumulative over the whole problem: a
        # policy-sized assertion set exhausts it even though each individual
        # quantified axiom is small.  This is the mechanism behind the
        # full-policy UNKNOWNs (the paper's solver timeouts).
        self._ground_counter = GroundingCounter(self.budget.max_ground_instances)

    @property
    def _certifying(self) -> bool:
        return self.certification is not None and self.certification.enabled

    # ------------------------------------------------------------------
    # Assertion stack
    # ------------------------------------------------------------------

    def declare_constant(self, constant) -> None:
        """Add a constant to the grounding universe."""
        self.universe.declare(constant)

    def assert_formula(self, formula: Formula) -> None:
        """Assert ``formula`` at the current stack level.

        Constants appearing in the formula are auto-declared.
        """
        self.universe.declare_all(collect_constants(formula))
        self._stack[-1].append(formula)
        if self._persistent is not None:
            sat, pool = self._persistent
            try:
                self._load_formula(formula, sat, pool)
            except BudgetExceededError:
                self._persistent = None

    def push(self) -> None:
        """Open a new assertion scope."""
        self._stack.append([])

    def pop(self) -> None:
        """Discard the innermost assertion scope."""
        if len(self._stack) == 1:
            raise SolverError("pop on empty assertion stack")
        self._stack.pop()
        self._persistent = None  # learned state may depend on popped clauses

    @property
    def assertions(self) -> list[Formula]:
        """All currently asserted formulas, outermost scope first."""
        return [f for scope in self._stack for f in scope]

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def check_sat(self) -> SolverResult:
        """Is the conjunction of all assertions satisfiable?"""
        return self._check(assumption_formulas=())

    def check_sat_assuming(self, assumptions: list[Formula]) -> SolverResult:
        """check-sat under temporary literal assumptions.

        Assumptions must be ground atoms or their negations.  The solver
        instance (and its learned clauses) is reused across consecutive
        assuming-checks, which is the incremental-solving capability the
        paper names as future work.
        """
        return self._check(assumption_formulas=tuple(assumptions))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _deadline(self) -> float | None:
        if self.budget.timeout_seconds is None:
            return None
        return time.monotonic() + self.budget.timeout_seconds

    def _clauses_for(self, formula: Formula, pool: AtomPool) -> list:
        raw = ground(formula, self.universe, counter=self._ground_counter)
        if self._certifying:
            self._cert_records.append((formula, raw, self.universe.snapshot()))
        grounded = simplify(raw)
        self.statistics.ground_instances = self._ground_counter.count
        if free_variables(grounded):
            raise SolverError("assertion has free variables after grounding")
        return tseitin(grounded, pool)

    def _load_formula(self, formula: Formula, sat: CDCLSolver, pool: AtomPool) -> None:
        for clause in self._clauses_for(formula, pool):
            # A False return marks the instance root-unsat; the SAT core
            # remembers and reports it on the next solve.
            sat.add_clause(clause)

    def _build(self, deadline: float | None = None) -> tuple[CDCLSolver, AtomPool]:
        if self._persistent is not None:
            return self._persistent
        # Rebuilding from scratch re-grounds everything: start the
        # cumulative budget over.  The deadline rides on the counter so a
        # slow grounding phase converts into a wall-clock UNKNOWN instead
        # of overshooting the budget before search even starts.
        self._ground_counter = GroundingCounter(
            self.budget.max_ground_instances, deadline=deadline
        )
        self._cert_records = []
        pool = AtomPool()
        sat = CDCLSolver(
            0,
            stats=self.statistics,
            max_conflicts=self.budget.max_conflicts,
            max_propagations=self.budget.max_propagations,
            decision_seed=self.decision_seed,
        )
        if self._certifying:
            sat.proof = ProofLog()
        clauses: list = []
        for formula in self.assertions:
            clauses.extend(self._clauses_for(formula, pool))
        if self.enable_preprocessing:
            # Named atoms stay protected: assumptions and model extraction
            # must see their real values.  Pure-literal elimination is
            # therefore safe on auxiliary (Tseitin) variables only.
            protected = frozenset(pool.named_atoms().values())
            result = preprocess(
                clauses, pure_literals=True, protect=protected, deadline=deadline
            )
            if result.conflict:
                sat.ensure_vars(pool.count)
                var = pool.fresh("conflict")
                sat.add_clause((var,))
                sat.add_clause((-var,))
                self._persistent = (sat, pool)
                return self._persistent
            clauses = list(result.clauses)
            clauses.extend(
                (var,) if value else (-var,) for var, value in result.fixed.items()
            )
        for clause in clauses:
            sat.add_clause(clause)
        sat.ensure_vars(pool.count)
        self._persistent = (sat, pool)
        return self._persistent

    def _assumption_literal(self, formula: Formula, pool: AtomPool) -> int:
        negated = False
        node = formula
        while isinstance(node, Not):
            negated = not negated
            node = node.operand
        if not isinstance(node, Predicate):
            raise SolverError("assumptions must be (negated) ground atoms")
        var = pool.variable_for(atom_key(node))
        return -var if negated else var

    def _check(self, assumption_formulas: tuple[Formula, ...]) -> SolverResult:
        start = time.monotonic()
        deadline = self._deadline()
        try:
            sat, pool = self._build(deadline)
            sat.deadline = deadline
            lits = tuple(
                self._assumption_literal(f, pool) for f in assumption_formulas
            )
            sat.ensure_vars(pool.count)
            verdict = solve_with_theory(
                sat, pool, assumptions=lits, stats=self.statistics
            )
        except BudgetExceededError as exc:
            self._persistent = None
            self.statistics.solve_time_seconds += time.monotonic() - start
            return SolverResult(
                status=SatResult.UNKNOWN,
                reason=str(exc),
                statistics=self.statistics,
            )
        self.statistics.solve_time_seconds += time.monotonic() - start
        self.statistics.variables = pool.count
        model: dict[str, bool] = {}
        if verdict is SatResult.SAT:
            raw = sat.model()
            model = {
                key: raw.get(var, False) for key, var in pool.named_atoms().items()
            }
        result = SolverResult(
            status=verdict, model=model, statistics=self.statistics
        )
        if self._certifying and verdict is not SatResult.UNKNOWN:
            report = self._certify(verdict, sat, pool, lits)
            result.certificate = report
            if report.failed:
                # Soundness alarm: never surface the uncertified verdict.
                # The persistent core is dropped — its learned state is
                # tainted by whatever produced the bogus answer.
                self._persistent = None
                return SolverResult(
                    status=SatResult.UNKNOWN,
                    reason=f"{CERTIFICATION_FAILED}: {report.failures[0]}",
                    statistics=self.statistics,
                    certificate=report,
                )
        return result

    def _certify(
        self,
        verdict: SatResult,
        sat: CDCLSolver,
        pool: AtomPool,
        lits: tuple[int, ...],
    ) -> CertificateReport:
        """Independently re-check a decided verdict (see CertificationConfig)."""
        config = self.certification
        started = time.perf_counter()
        report = CertificateReport(verdict=verdict.value)

        def fail(message: str) -> None:
            report.status = "failed"
            report.failures.append(message)

        try:
            events = sat.proof.events if sat.proof is not None else []
            report.proof_events = len(events)

            if config.check_grounding:
                report.checks.append("grounding-parity")
                for formula, grounded, snapshot in self._cert_records:
                    if modelcheck.expand(formula, snapshot) != grounded:
                        fail(
                            "grounding mismatch: independent expansion of "
                            f"assertion {formula} disagrees with the grounder"
                        )
                        break

            if verdict is SatResult.SAT and config.check_models:
                raw = sat.model()
                report.checks.append("assumptions")
                for lit in lits:
                    if raw.get(abs(lit), False) != (lit > 0):
                        fail(f"model violates assumption literal {lit}")
                report.checks.append("cnf-model")
                inputs = [
                    e.clause for e in events if e.kind in ("input", "theory")
                ]
                violated = modelcheck.clause_violations(inputs, raw)
                if violated:
                    fail(
                        f"model falsifies {len(violated)} input clause(s), "
                        f"e.g. {violated[0]}"
                    )
                named = {
                    key: raw.get(var, False)
                    for key, var in pool.named_atoms().items()
                }
                report.checks.append("fol-model")
                for formula, _grounded, snapshot in self._cert_records:
                    if not modelcheck.evaluate_formula(formula, named, snapshot):
                        fail(
                            "model does not satisfy the original assertion "
                            f"{formula}"
                        )
                        break
                if needs_theory(pool):
                    report.checks.append("euf-model")
                    if not modelcheck.euf_consistent(named.items()):
                        fail("model is EUF-inconsistent under congruence")

            if verdict is SatResult.UNSAT and config.check_proofs:
                if self.enable_preprocessing:
                    # Presolving rewrites the clause set before it reaches
                    # the proof log; the replayed axioms would not be the
                    # asserted ones.  Decline rather than over-claim.
                    if not report.failures:
                        report.status = "skipped"
                    report.failures.append(
                        "proof replay skipped: preprocessing rewrites the "
                        "input clauses before logging"
                    )
                else:
                    report.checks.append("proof-replay")
                    outcome = check_proof(
                        events,
                        assumptions=lits,
                        variable_for=pool.variable_for,
                        max_events=config.max_proof_events,
                    )
                    report.lemmas_certified = outcome.lemmas_certified
                    if not outcome.ok:
                        if outcome.failures and outcome.failures[0].startswith(
                            "proof too large"
                        ):
                            if not report.failures:
                                report.status = "skipped"
                            report.failures.extend(outcome.failures)
                        else:
                            for message in outcome.failures:
                                fail(message)
        except Exception as exc:  # noqa: BLE001 - a broken certifier must alarm
            fail(f"certifier error: {type(exc).__name__}: {exc}")
        report.seconds = time.perf_counter() - started
        return report
