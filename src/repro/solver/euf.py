"""Congruence closure for equality over uninterpreted functions (EUF).

The theory layer behind the solver's DPLL(T) loop.  Atoms arrive as
canonical key strings ("=(a,b)", "share(tiktok,email)", "flag"); the
closure parses them into term nodes, merges equivalence classes under the
asserted equalities, propagates congruence (f(a) = f(b) when a = b), and
reports a conflict when a disequality is violated or when two congruent
predicate applications carry opposite truth values.
"""

from __future__ import annotations

from dataclasses import dataclass

EQ_PREDICATE = "="


@dataclass(frozen=True, slots=True)
class Node:
    """A parsed term: function/constant name applied to child node keys."""

    key: str
    name: str
    children: tuple[str, ...]


def parse_term(key: str) -> tuple[Node, list[Node]]:
    """Parse a canonical term key into its node and all descendant nodes."""
    nodes: list[Node] = []

    def parse(s: str) -> str:
        open_paren = s.find("(")
        if open_paren < 0:
            node = Node(key=s, name=s, children=())
            nodes.append(node)
            return s
        name = s[:open_paren]
        inner = s[open_paren + 1 : -1]
        child_keys = []
        depth = 0
        start = 0
        for i, ch in enumerate(inner):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                child_keys.append(parse(inner[start:i]))
                start = i + 1
        if inner:
            child_keys.append(parse(inner[start:]))
        node = Node(key=s, name=name, children=tuple(child_keys))
        nodes.append(node)
        return s

    parse(key)
    return nodes[-1], nodes


def parse_atom(key: str) -> tuple[str, tuple[str, ...]]:
    """Split an atom key into predicate name and argument term keys."""
    open_paren = key.find("(")
    if open_paren < 0:
        return key, ()
    name = key[:open_paren]
    inner = key[open_paren + 1 : -1]
    args: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(inner):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(inner[start:i])
            start = i + 1
    if inner:
        args.append(inner[start:])
    return name, tuple(args)


class CongruenceClosure:
    """Union-find with congruence propagation over term nodes."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._nodes: dict[str, Node] = {}

    def add_term(self, key: str) -> None:
        if key in self._nodes:
            return
        _root, nodes = parse_term(key)
        for node in nodes:
            if node.key not in self._nodes:
                self._nodes[node.key] = node
                self._parent[node.key] = node.key

    def find(self, key: str) -> str:
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def merge(self, a: str, b: str) -> None:
        self.add_term(a)
        self.add_term(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def are_equal(self, a: str, b: str) -> bool:
        self.add_term(a)
        self.add_term(b)
        return self.find(a) == self.find(b)

    def propagate_congruence(self) -> None:
        """Merge congruent applications until fixpoint.

        Two applications are congruent when they share a function name and
        their argument lists are pairwise equal in the current closure.
        """
        changed = True
        while changed:
            changed = False
            signatures: dict[tuple[str, tuple[str, ...]], str] = {}
            for node in self._nodes.values():
                if not node.children:
                    continue
                sig = (node.name, tuple(self.find(c) for c in node.children))
                other = signatures.get(sig)
                if other is None:
                    signatures[sig] = node.key
                elif self.find(other) != self.find(node.key):
                    self.merge(other, node.key)
                    changed = True


def check_euf(assignment: list[tuple[str, bool]]) -> list[tuple[str, bool]] | None:
    """Check a full assignment of atoms for EUF consistency.

    Args:
        assignment: (atom_key, value) pairs covering the atoms of interest.

    Returns:
        None when consistent, otherwise the subset of assigned literals
        that together form an inconsistency (a valid blocking clause is the
        disjunction of their negations).
    """
    closure = CongruenceClosure()
    equalities: list[tuple[str, str, str]] = []
    disequalities: list[tuple[str, str, str]] = []
    applications: list[tuple[str, bool, str, tuple[str, ...]]] = []

    for key, value in assignment:
        name, args = parse_atom(key)
        if name == EQ_PREDICATE and len(args) == 2:
            if value:
                equalities.append((key, args[0], args[1]))
            else:
                disequalities.append((key, args[0], args[1]))
            closure.add_term(args[0])
            closure.add_term(args[1])
        else:
            for arg in args:
                closure.add_term(arg)
            applications.append((key, value, name, args))

    for _key, a, b in equalities:
        closure.merge(a, b)
    closure.propagate_congruence()

    for key, a, b in disequalities:
        if closure.are_equal(a, b):
            culprits = [(key, False)] + [(k, True) for k, _a, _b in equalities]
            return culprits

    # Congruent predicate applications must agree on truth value.
    by_signature: dict[tuple[str, tuple[str, ...]], tuple[str, bool]] = {}
    for key, value, name, args in applications:
        sig = (name, tuple(closure.find(a) for a in args))
        seen = by_signature.get(sig)
        if seen is None:
            by_signature[sig] = (key, value)
        elif seen[1] != value:
            culprits = [(seen[0], seen[1]), (key, value)] + [
                (k, True) for k, _a, _b in equalities
            ]
            return culprits
    return None
