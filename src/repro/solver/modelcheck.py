"""Independent re-validation of solver answers (the SAT side of trust-but-verify).

Everything in this module is deliberately written from scratch against the
*specifications* of the solver substrate — canonical atom-key strings,
Herbrand expansion over a declared universe, congruence semantics for
``=`` — and shares no code with the CDCL search, the Tseitin transform,
the production grounder, or the production congruence closure.  A bug in
any of those therefore cannot hide itself here.

Four checks live here:

- :func:`clause_violations` — does the raw assignment satisfy the clauses
  the solver was actually given?
- :func:`evaluate_formula` — does the named-atom assignment satisfy the
  *original* (possibly quantified) FOL assertion, expanding quantifiers
  over the recorded universe snapshot on the fly?
- :func:`euf_consistent` — is the named-atom assignment consistent under
  equality-with-uninterpreted-functions?  (Also certifies theory-lemma
  premises for the proof checker.)
- :func:`expand` — an independent Herbrand expansion used to cross-check
  the production grounder node for node.

:func:`brute_force_status` combines the evaluator and the consistency
check into the reference enumerator the differential fuzzer compares the
real solver against.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SolverError
from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    TrueFormula,
)
from repro.fol.terms import Application, Constant, Sort, Term, Variable

#: Universe snapshot: declared constants per sort, in declaration order.
Domains = Mapping[Sort, tuple[Constant, ...]]

_EQ = "="


# ----------------------------------------------------------------------
# Canonical atom keys, re-derived from the documented format
# ("share(tiktok,email)", "=(a,f(b))", "flag") rather than imported.
# ----------------------------------------------------------------------


def render_term(term: Term, env: Mapping[Variable, Constant] | None = None) -> str:
    """Canonical string of a ground term (variables resolved via ``env``)."""
    if isinstance(term, Variable):
        if env is None or term not in env:
            raise SolverError(f"model check hit unbound variable {term.name!r}")
        return env[term].name
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Application):
        inner = ",".join(render_term(a, env) for a in term.args)
        return f"{term.symbol.name}({inner})"
    raise SolverError(f"model check cannot render term {term!r}")


def render_atom(atom: Predicate, env: Mapping[Variable, Constant] | None = None) -> str:
    """Canonical key of a (possibly env-resolved) atom."""
    if not atom.args:
        return atom.symbol.name
    inner = ",".join(render_term(a, env) for a in atom.args)
    return f"{atom.symbol.name}({inner})"


def _split_top_level(inner: str) -> list[str]:
    """Split "a,g(b,c),d" into top-level comma-separated chunks."""
    parts: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(inner):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(inner[start:i])
            start = i + 1
    if inner:
        parts.append(inner[start:])
    return parts


def _split_key(key: str) -> tuple[str, tuple[str, ...]]:
    """Split an atom or application key into head and argument keys."""
    open_paren = key.find("(")
    if open_paren < 0:
        return key, ()
    return key[:open_paren], tuple(_split_top_level(key[open_paren + 1 : -1]))


def _subterm_keys(key: str) -> set[str]:
    """Every term key reachable inside ``key``, including itself."""
    out = {key}
    _head, args = _split_key(key)
    for arg in args:
        out |= _subterm_keys(arg)
    return out


# ----------------------------------------------------------------------
# CNF-level check
# ----------------------------------------------------------------------


def clause_violations(
    clauses: Iterable[tuple[int, ...]], model: Mapping[int, bool]
) -> list[tuple[int, ...]]:
    """The clauses ``model`` fails to satisfy (empty list = all satisfied).

    Variables absent from ``model`` count as False, matching the solver's
    model extraction.
    """
    violated: list[tuple[int, ...]] = []
    for clause in clauses:
        for lit in clause:
            value = model.get(abs(lit), False)
            if value == (lit > 0):
                break
        else:
            violated.append(clause)
    return violated


# ----------------------------------------------------------------------
# FOL-level check: evaluate the original assertion under the named model
# ----------------------------------------------------------------------


def evaluate_formula(
    formula: Formula, assignment: Mapping[str, bool], domains: Domains
) -> bool:
    """Truth value of ``formula`` under ``assignment``, quantifiers expanded.

    Atoms missing from ``assignment`` default to False.  That is sound
    here because simplification is equivalence-preserving: an atom the
    solver never saw cannot influence the formula's truth value, so any
    default completes the model without changing the outcome.
    """

    def ev(node: Formula, env: dict[Variable, Constant]) -> bool:
        if isinstance(node, TrueFormula):
            return True
        if isinstance(node, FalseFormula):
            return False
        if isinstance(node, Predicate):
            return assignment.get(render_atom(node, env), False)
        if isinstance(node, Not):
            return not ev(node.operand, env)
        if isinstance(node, And):
            return all(ev(op, env) for op in node.operands)
        if isinstance(node, Or):
            return any(ev(op, env) for op in node.operands)
        if isinstance(node, Implies):
            return (not ev(node.antecedent, env)) or ev(node.consequent, env)
        if isinstance(node, Iff):
            return ev(node.left, env) == ev(node.right, env)
        if isinstance(node, Forall):
            domain = domains.get(node.variable.sort, ())
            return all(ev(node.body, {**env, node.variable: c}) for c in domain)
        if isinstance(node, Exists):
            domain = domains.get(node.variable.sort, ())
            return any(ev(node.body, {**env, node.variable: c}) for c in domain)
        raise SolverError(f"model check cannot evaluate node {node!r}")

    return ev(formula, {})


# ----------------------------------------------------------------------
# Independent Herbrand expansion (grounding cross-check)
# ----------------------------------------------------------------------


def expand(formula: Formula, domains: Domains) -> Formula:
    """Quantifier-free expansion of ``formula`` over ``domains``.

    Mirrors the *specification* of the production grounder — forall
    becomes the conjunction of the body over the variable's domain in
    declaration order, exists the disjunction, empty domains collapse to
    the vacuous constant — but is implemented independently (environment
    passing instead of substitute-then-recurse).  Certification compares
    its output tree against the production grounder's, node for node.
    """

    def subst_term(term: Term, env: dict[Variable, Constant]) -> Term:
        if isinstance(term, Variable):
            if term in env:
                return env[term]
            return term
        if isinstance(term, Application):
            return Application(
                term.symbol, tuple(subst_term(a, env) for a in term.args)
            )
        return term

    def walk(node: Formula, env: dict[Variable, Constant]) -> Formula:
        if isinstance(node, (TrueFormula, FalseFormula)):
            return node
        if isinstance(node, Predicate):
            if not env:
                return node
            return Predicate(
                node.symbol, tuple(subst_term(a, env) for a in node.args)
            )
        if isinstance(node, Not):
            return Not(walk(node.operand, env))
        if isinstance(node, And):
            return And(tuple(walk(op, env) for op in node.operands))
        if isinstance(node, Or):
            return Or(tuple(walk(op, env) for op in node.operands))
        if isinstance(node, Implies):
            return Implies(walk(node.antecedent, env), walk(node.consequent, env))
        if isinstance(node, Iff):
            return Iff(walk(node.left, env), walk(node.right, env))
        if isinstance(node, (Forall, Exists)):
            domain = domains.get(node.variable.sort, ())
            instances = [
                walk(node.body, {**env, node.variable: c}) for c in domain
            ]
            if isinstance(node, Forall):
                return And(tuple(instances)) if instances else TrueFormula()
            return Or(tuple(instances)) if instances else FalseFormula()
        raise SolverError(f"model check cannot expand node {node!r}")

    return walk(formula, {})


# ----------------------------------------------------------------------
# Independent EUF consistency check
# ----------------------------------------------------------------------


def euf_consistent(assignment: Iterable[tuple[str, bool]]) -> bool:
    """Is the atom assignment consistent under EUF semantics?

    A from-scratch congruence check: build equivalence classes of term
    keys under the asserted equalities, close them under congruence
    (same head, pairwise-equal arguments), then reject violated
    disequalities and congruent predicate applications with opposite
    truth values.
    """
    equalities: list[tuple[str, str]] = []
    disequalities: list[tuple[str, str]] = []
    applications: list[tuple[str, tuple[str, ...], bool]] = []
    terms: set[str] = set()

    for key, value in assignment:
        name, args = _split_key(key)
        if name == _EQ and len(args) == 2:
            (equalities if value else disequalities).append((args[0], args[1]))
            terms |= _subterm_keys(args[0]) | _subterm_keys(args[1])
        else:
            applications.append((name, args, value))
            for arg in args:
                terms |= _subterm_keys(arg)

    parent: dict[str, str] = {t: t for t in terms}

    def find(t: str) -> str:
        while parent[t] != t:
            parent[t] = parent[parent[t]]
            t = parent[t]
        return t

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for a, b in equalities:
        union(a, b)

    compound = [(t,) + _split_key(t) for t in terms if "(" in t]
    changed = True
    while changed:
        changed = False
        signatures: dict[tuple[str, tuple[str, ...]], str] = {}
        for t, head, args in compound:
            sig = (head, tuple(find(a) for a in args))
            other = signatures.get(sig)
            if other is None:
                signatures[sig] = t
            elif find(other) != find(t):
                union(other, t)
                changed = True

    for a, b in disequalities:
        if find(a) == find(b):
            return False

    by_signature: dict[tuple[str, tuple[str, ...]], bool] = {}
    for name, args, value in applications:
        sig = (name, tuple(find(a) for a in args))
        if by_signature.setdefault(sig, value) != value:
            return False
    return True


# ----------------------------------------------------------------------
# Brute-force reference enumerator (differential-fuzzing oracle)
# ----------------------------------------------------------------------


def collect_atom_keys(formula: Formula, domains: Domains) -> list[str]:
    """Sorted keys of every ground atom of the expanded formula."""
    keys: set[str] = set()

    def walk(node: Formula) -> None:
        if isinstance(node, Predicate):
            keys.add(render_atom(node))
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            for op in node.operands:
                walk(op)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, Iff):
            walk(node.left)
            walk(node.right)

    walk(expand(formula, domains))
    return sorted(keys)


def brute_force_status(
    formulas: list[Formula], domains: Domains, *, max_atoms: int = 20
) -> str:
    """Reference answer ("sat"/"unsat") by exhaustive model enumeration.

    Enumerates every assignment of the ground atoms appearing in the
    expanded formulas, keeping only EUF-consistent ones.  Exponential by
    construction — the fuzzer keeps formulas small; ``max_atoms`` guards
    against accidental blow-ups.
    """
    keys: set[str] = set()
    for formula in formulas:
        keys.update(collect_atom_keys(formula, domains))
    ordered = sorted(keys)
    if len(ordered) > max_atoms:
        raise SolverError(
            f"brute-force reference over {len(ordered)} atoms refused "
            f"(cap {max_atoms})"
        )
    for bits in range(1 << len(ordered)):
        assignment = {
            key: bool(bits >> i & 1) for i, key in enumerate(ordered)
        }
        if not all(evaluate_formula(f, assignment, domains) for f in formulas):
            continue
        if not euf_consistent(assignment.items()):
            continue
        return "sat"
    return "unsat"
