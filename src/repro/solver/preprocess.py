"""CNF preprocessing: unit propagation, subsumption, pure literals.

Classic presolving steps applied to the clause set before CDCL search.
Unit propagation and subsumption preserve logical equivalence over the
remaining clauses (units become fixed assignments that are reported back);
pure-literal elimination preserves satisfiability only, so it is opt-in
and must not be used when assumptions may later constrain eliminated
variables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError
from repro.solver.literals import Clause


def _check_deadline(deadline: float | None) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceededError("wall-clock timeout")


@dataclass(slots=True)
class PreprocessStats:
    """What preprocessing accomplished."""

    units_fixed: int = 0
    duplicates_removed: int = 0
    tautologies_removed: int = 0
    subsumed_removed: int = 0
    pure_eliminated: int = 0
    satisfied_removed: int = 0


@dataclass(slots=True)
class PreprocessResult:
    """Reduced clause set plus the assignments preprocessing fixed."""

    clauses: list[Clause] = field(default_factory=list)
    fixed: dict[int, bool] = field(default_factory=dict)  # var -> value
    conflict: bool = False
    stats: PreprocessStats = field(default_factory=PreprocessStats)


def _normalize(clause: Clause) -> Clause | None:
    """Sorted, deduplicated clause; None when tautological."""
    unique = tuple(sorted(set(clause)))
    seen = set(unique)
    for lit in unique:
        if -lit in seen:
            return None
    return unique


def propagate_units(
    result: PreprocessResult, *, deadline: float | None = None
) -> None:
    """Fix unit clauses and simplify the clause set to fixpoint."""
    changed = True
    while changed and not result.conflict:
        _check_deadline(deadline)
        changed = False
        remaining: list[Clause] = []
        for clause in result.clauses:
            lits = []
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var in result.fixed:
                    if result.fixed[var] == (lit > 0):
                        satisfied = True
                        break
                    continue  # literal false under fixed assignment
                lits.append(lit)
            if satisfied:
                result.stats.satisfied_removed += 1
                continue
            if not lits:
                result.conflict = True
                return
            if len(lits) == 1:
                lit = lits[0]
                var = abs(lit)
                value = lit > 0
                if var in result.fixed and result.fixed[var] != value:
                    result.conflict = True
                    return
                if var not in result.fixed:
                    result.fixed[var] = value
                    result.stats.units_fixed += 1
                changed = True
                continue
            remaining.append(tuple(lits))
        result.clauses = remaining


def remove_subsumed(
    result: PreprocessResult, *, deadline: float | None = None
) -> None:
    """Drop clauses that are supersets of another clause.

    Uses the smallest-clause-first ordering with set containment; fine for
    the clause counts our encodings produce.
    """
    ordered = sorted(result.clauses, key=len)
    kept: list[Clause] = []
    kept_sets: list[frozenset[int]] = []
    for i, clause in enumerate(ordered):
        if i % 256 == 0:
            _check_deadline(deadline)
        clause_set = frozenset(clause)
        if any(k <= clause_set for k in kept_sets):
            result.stats.subsumed_removed += 1
            continue
        kept.append(clause)
        kept_sets.append(clause_set)
    result.clauses = kept


def eliminate_pure_literals(
    result: PreprocessResult,
    *,
    protect: frozenset[int] = frozenset(),
    deadline: float | None = None,
) -> None:
    """Fix variables that occur with only one polarity.

    Satisfiability-preserving only: do not protect a variable here and then
    assume its other polarity later.  ``protect`` lists variables exempt
    from elimination (e.g. named atoms that may appear in assumptions or
    need faithful model values).
    """
    changed = True
    while changed and not result.conflict:
        _check_deadline(deadline)
        changed = False
        polarity: dict[int, int] = {}
        for clause in result.clauses:
            for lit in clause:
                var = abs(lit)
                polarity[var] = polarity.get(var, 0) | (1 if lit > 0 else 2)
        pure = {
            var: bits == 1
            for var, bits in polarity.items()
            if bits != 3 and var not in protect and var not in result.fixed
        }
        if not pure:
            return
        for var, value in pure.items():
            result.fixed[var] = value
            result.stats.pure_eliminated += 1
        result.clauses = [
            clause
            for clause in result.clauses
            if not any(abs(l) in pure and pure[abs(l)] == (l > 0) for l in clause)
        ]
        changed = True


def preprocess(
    clauses: list[Clause],
    *,
    pure_literals: bool = False,
    protect: frozenset[int] = frozenset(),
    deadline: float | None = None,
) -> PreprocessResult:
    """Run the presolving pipeline over ``clauses``.

    Returns the reduced clause set, fixed assignments, and a conflict flag
    (True means the input is unsatisfiable outright).  ``deadline`` (a
    ``time.monotonic`` instant) aborts presolving with a wall-clock
    :class:`BudgetExceededError`, mirroring the search-time budget.
    """
    result = PreprocessResult()
    seen: set[Clause] = set()
    for clause in clauses:
        normalized = _normalize(clause)
        if normalized is None:
            result.stats.tautologies_removed += 1
            continue
        if normalized in seen:
            result.stats.duplicates_removed += 1
            continue
        seen.add(normalized)
        result.clauses.append(normalized)

    propagate_units(result, deadline=deadline)
    if result.conflict:
        return result
    remove_subsumed(result, deadline=deadline)
    propagate_units(result, deadline=deadline)
    if not result.conflict and pure_literals:
        eliminate_pure_literals(result, protect=protect, deadline=deadline)
    return result
