"""Clausal proof logging and a standalone RUP/DRUP-style checker.

The CDCL core, when handed a :class:`ProofLog`, records every clause that
enters or leaves the database: original input clauses (pre-pruning, so the
log stands on its own), learned clauses, theory lemmas (with the
T-inconsistent assignment they exclude), and deletions from learned-DB
reduction.  :func:`check_proof` then replays the log **by unit propagation
only** — it shares no state and no code with the search: every learned
clause must be RUP (assuming its negation and propagating the active
database must yield a conflict), every theory lemma must be the negation
of an assignment that an *independent* congruence check confirms to be
EUF-inconsistent, and the final UNSAT claim must follow by propagation
alone from the surviving database plus the check's assumptions.

This is deliberately the slow-and-obvious checker: a linear scan
propagator over plain tuples.  Proof sizes are bounded by the solver's
conflict budget, and :class:`repro.solver.interface.CertificationConfig`
caps how many events a single check will replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.modelcheck import euf_consistent

#: Literal of an atom assignment (key, value) in a theory lemma premise.
Premise = tuple[tuple[str, bool], ...]


@dataclass(frozen=True, slots=True)
class ProofEvent:
    """One step of the clausal proof."""

    kind: str  # "input" | "learn" | "theory" | "delete"
    clause: tuple[int, ...]
    premise: Premise = ()  # theory lemmas: the assignment the lemma excludes


@dataclass(slots=True)
class ProofLog:
    """Append-only record of clause-database changes during search."""

    events: list[ProofEvent] = field(default_factory=list)

    # Clauses are normalized to sorted tuples: the search core reorders
    # clause lists in place (watched-literal swaps), so a delete event must
    # match its learn event by content, not by the order at logging time.

    def log_input(self, clause) -> None:
        self.events.append(ProofEvent("input", tuple(sorted(clause))))

    def log_learn(self, clause) -> None:
        self.events.append(ProofEvent("learn", tuple(sorted(clause))))

    def log_theory(self, clause, premise: Premise) -> None:
        self.events.append(ProofEvent("theory", tuple(sorted(clause)), premise))

    def log_delete(self, clause) -> None:
        self.events.append(ProofEvent("delete", tuple(sorted(clause))))

    def __len__(self) -> int:
        return len(self.events)


@dataclass(slots=True)
class ProofCheckResult:
    """Outcome of replaying one proof log."""

    ok: bool
    failures: list[str] = field(default_factory=list)
    events_checked: int = 0
    lemmas_certified: int = 0


def _propagates_to_conflict(
    clauses: list[tuple[int, ...]], units: tuple[int, ...]
) -> bool:
    """Does UP over ``clauses`` starting from ``units`` reach a conflict?

    A deliberately naive repeated-scan propagator: no watched literals, no
    trail, no sharing with the CDCL core.
    """
    assign: dict[int, bool] = {}
    for lit in units:
        var = abs(lit)
        value = lit > 0
        if assign.get(var, value) != value:
            return True  # the units themselves clash
        assign[var] = value
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned = 0
            open_count = 0
            satisfied = False
            for lit in clause:
                value = assign.get(abs(lit))
                if value is None:
                    unassigned = lit
                    open_count += 1
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if open_count == 0:
                return True  # clause falsified
            if open_count == 1:
                assign[abs(unassigned)] = unassigned > 0
                changed = True
    return False


def _expected_lemma(premise: Premise, variable_for) -> tuple[int, ...]:
    """The blocking clause a premise justifies: the negation of each literal."""
    return tuple(
        -variable_for(key) if value else variable_for(key)
        for key, value in premise
    )


def check_proof(
    events: list[ProofEvent],
    *,
    assumptions: tuple[int, ...] = (),
    variable_for=None,
    max_events: int | None = None,
) -> ProofCheckResult:
    """Replay a proof log and verify the UNSAT claim it supports.

    ``variable_for`` maps atom keys to SAT variables (needed to certify
    theory lemmas against their premises; pass the pool's ``variable_for``).
    ``assumptions`` are the literals the check-sat ran under; the final
    conflict must be derivable with them as extra units.
    """
    result = ProofCheckResult(ok=True)
    if max_events is not None and len(events) > max_events:
        result.ok = False
        result.failures.append(
            f"proof too large to replay ({len(events)} events > cap {max_events})"
        )
        return result

    active: list[tuple[int, ...]] = []
    for event in events:
        result.events_checked += 1
        if event.kind == "input":
            active.append(event.clause)
        elif event.kind == "theory":
            if variable_for is None:
                result.ok = False
                result.failures.append(
                    "theory lemma present but no atom-variable map supplied"
                )
                return result
            if euf_consistent(event.premise):
                result.ok = False
                result.failures.append(
                    "theory lemma premise is EUF-consistent; lemma "
                    f"{event.clause} excludes a legal model"
                )
                return result
            expected = _expected_lemma(event.premise, variable_for)
            if set(event.clause) != set(expected):
                result.ok = False
                result.failures.append(
                    f"theory lemma {event.clause} is not the negation of its "
                    f"premise (expected {tuple(sorted(expected))})"
                )
                return result
            result.lemmas_certified += 1
            active.append(event.clause)
        elif event.kind == "learn":
            if event.clause and not _propagates_to_conflict(
                active, tuple(-lit for lit in event.clause)
            ):
                result.ok = False
                result.failures.append(
                    f"learned clause {event.clause} is not RUP with respect "
                    "to the active database"
                )
                return result
            active.append(event.clause)
        elif event.kind == "delete":
            try:
                active.remove(event.clause)
            except ValueError:
                result.ok = False
                result.failures.append(
                    f"deletion of clause {event.clause} not present in the "
                    "active database"
                )
                return result
        else:  # pragma: no cover - log writers only emit the kinds above
            result.ok = False
            result.failures.append(f"unknown proof event kind {event.kind!r}")
            return result

    if not _propagates_to_conflict(active, assumptions):
        result.ok = False
        result.failures.append(
            "UNSAT claim fails: unit propagation over the final database "
            "(plus assumptions) does not reach a conflict"
        )
    return result
