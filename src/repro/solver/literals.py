"""Atom pool: bidirectional mapping between ground atoms and SAT variables.

Literals use the DIMACS convention: variable ``v >= 1``, literal ``+v`` for
the positive phase and ``-v`` for the negative phase.  Atom keys are
canonical strings of ground atoms ("share(tiktok, email_address)"), which
makes models directly readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Clause = tuple[int, ...]


@dataclass(slots=True)
class AtomPool:
    """Interns ground atoms and auxiliary (Tseitin) variables."""

    _by_key: dict[str, int] = field(default_factory=dict)
    _by_var: dict[int, str] = field(default_factory=dict)
    _next_var: int = 1

    def variable_for(self, key: str) -> int:
        """SAT variable for the atom ``key``, allocating if new."""
        var = self._by_key.get(key)
        if var is None:
            var = self._next_var
            self._next_var += 1
            self._by_key[key] = var
            self._by_var[var] = key
        return var

    def fresh(self, hint: str = "aux") -> int:
        """Allocate an auxiliary variable (Tseitin definition)."""
        var = self._next_var
        self._next_var += 1
        key = f"${hint}#{var}"
        self._by_key[key] = var
        self._by_var[var] = key
        return var

    def key_for(self, var: int) -> str:
        return self._by_var[var]

    def has_key(self, key: str) -> bool:
        return key in self._by_key

    @property
    def count(self) -> int:
        """Number of allocated variables."""
        return self._next_var - 1

    def named_atoms(self) -> dict[str, int]:
        """Non-auxiliary atoms only (keys not starting with ``$``)."""
        return {k: v for k, v in self._by_key.items() if not k.startswith("$")}
