"""Solver results and statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SatResult(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class SolverStatistics:
    """Work counters accumulated across checks on one solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    db_reductions: int = 0
    restarts: int = 0
    theory_checks: int = 0
    theory_conflicts: int = 0
    ground_instances: int = 0
    clauses: int = 0
    variables: int = 0
    solve_time_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "db_reductions": self.db_reductions,
            "restarts": self.restarts,
            "theory_checks": self.theory_checks,
            "theory_conflicts": self.theory_conflicts,
            "ground_instances": self.ground_instances,
            "clauses": self.clauses,
            "variables": self.variables,
            "solve_time_seconds": self.solve_time_seconds,
        }


@dataclass(slots=True)
class SolverResult:
    """A check-sat outcome plus diagnostics.

    ``reason`` explains UNKNOWN outcomes ("conflict budget exhausted",
    "wall-clock timeout", "grounding budget exhausted").  ``model`` maps
    atom keys to booleans for SAT outcomes.
    """

    status: SatResult
    reason: str = ""
    model: dict[str, bool] = field(default_factory=dict)
    statistics: SolverStatistics = field(default_factory=SolverStatistics)

    @property
    def is_sat(self) -> bool:
        return self.status is SatResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatResult.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is SatResult.UNKNOWN

    def __str__(self) -> str:
        if self.reason:
            return f"{self.status} ({self.reason})"
        return str(self.status)
