"""Solver results and statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SatResult(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class SolverStatistics:
    """Work counters accumulated across checks on one solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    db_reductions: int = 0
    restarts: int = 0
    theory_checks: int = 0
    theory_conflicts: int = 0
    ground_instances: int = 0
    clauses: int = 0
    variables: int = 0
    solve_time_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "db_reductions": self.db_reductions,
            "restarts": self.restarts,
            "theory_checks": self.theory_checks,
            "theory_conflicts": self.theory_conflicts,
            "ground_instances": self.ground_instances,
            "clauses": self.clauses,
            "variables": self.variables,
            "solve_time_seconds": self.solve_time_seconds,
        }


#: Marker prefixed to UNKNOWN reasons produced by a failed certification.
#: Downstream layers (degradation ladder, CLI exit codes) key off it.
CERTIFICATION_FAILED = "certification failed"


@dataclass(slots=True)
class CertificateReport:
    """What the trust-but-verify layer checked for one verdict.

    ``status`` is ``"certified"`` when every applicable check passed,
    ``"failed"`` when any check found the verdict unsupported (a soundness
    alarm — the verdict is demoted to UNKNOWN), and ``"skipped"`` when the
    check was declined (e.g. the proof outgrew the replay cap); a skipped
    certificate leaves the verdict standing but says so.
    """

    verdict: str = ""  # "sat" | "unsat"
    status: str = "certified"  # "certified" | "failed" | "skipped"
    checks: list[str] = field(default_factory=list)  # checks that ran, in order
    failures: list[str] = field(default_factory=list)
    proof_events: int = 0
    lemmas_certified: int = 0
    seconds: float = 0.0

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def certified(self) -> bool:
        return self.status == "certified"

    def as_dict(self) -> dict[str, object]:
        return {
            "verdict": self.verdict,
            "status": self.status,
            "checks": list(self.checks),
            "failures": list(self.failures),
            "proof_events": self.proof_events,
            "lemmas_certified": self.lemmas_certified,
        }

    def summary(self) -> str:
        line = f"certificate: {self.status} ({', '.join(self.checks) or 'no checks'})"
        for failure in self.failures:
            line += f"\n  ! {failure}"
        return line


@dataclass(slots=True)
class SolverResult:
    """A check-sat outcome plus diagnostics.

    ``reason`` explains UNKNOWN outcomes ("conflict budget exhausted",
    "wall-clock timeout", "grounding budget exhausted", "certification
    failed: ...").  ``model`` maps atom keys to booleans for SAT
    outcomes.  ``certificate`` is attached when certification ran.
    """

    status: SatResult
    reason: str = ""
    model: dict[str, bool] = field(default_factory=dict)
    statistics: SolverStatistics = field(default_factory=SolverStatistics)
    certificate: CertificateReport | None = None

    @property
    def is_sat(self) -> bool:
        return self.status is SatResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatResult.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is SatResult.UNKNOWN

    def __str__(self) -> str:
        if self.reason:
            return f"{self.status} ({self.reason})"
        return str(self.status)
