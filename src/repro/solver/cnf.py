"""Tseitin transformation of ground formulas to CNF.

Each non-atomic subformula gets a definition variable; the output is an
equisatisfiable clause set whose size is linear in the formula size (the
quadratic/exponential blow-up the paper reports comes from *grounding*, not
from this step).
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.fol.formula import (
    And,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    TrueFormula,
)
from repro.fol.terms import Application, Constant, Term, Variable
from repro.solver.literals import AtomPool, Clause


def atom_key(atom: Predicate) -> str:
    """Canonical string key of a ground atom."""
    if not atom.args:
        return atom.symbol.name
    rendered = ",".join(_term_key(a) for a in atom.args)
    return f"{atom.symbol.name}({rendered})"


def _term_key(term: Term) -> str:
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Application):
        inner = ",".join(_term_key(a) for a in term.args)
        return f"{term.symbol.name}({inner})"
    if isinstance(term, Variable):
        raise SolverError(f"formula is not ground: free variable {term.name}")
    raise SolverError(f"unsupported term {term!r}")


def tseitin(formula: Formula, pool: AtomPool) -> list[Clause]:
    """Clauses asserting ``formula``, using ``pool`` for variables."""
    clauses: list[Clause] = []
    root = _encode(formula, pool, clauses)
    clauses.append((root,))
    return clauses


def _encode(node: Formula, pool: AtomPool, clauses: list[Clause]) -> int:
    """Return a literal equivalent to ``node``, emitting definition clauses."""
    if isinstance(node, TrueFormula):
        var = pool.fresh("true")
        clauses.append((var,))
        return var
    if isinstance(node, FalseFormula):
        var = pool.fresh("false")
        clauses.append((-var,))
        return var
    if isinstance(node, Predicate):
        return pool.variable_for(atom_key(node))
    if isinstance(node, Not):
        return -_encode(node.operand, pool, clauses)
    if isinstance(node, And):
        if not node.operands:
            return _encode(TrueFormula(), pool, clauses)
        lits = [_encode(op, pool, clauses) for op in node.operands]
        out = pool.fresh("and")
        # out -> each lit;  all lits -> out.
        for lit in lits:
            clauses.append((-out, lit))
        clauses.append(tuple([-lit for lit in lits] + [out]))
        return out
    if isinstance(node, Or):
        if not node.operands:
            return _encode(FalseFormula(), pool, clauses)
        lits = [_encode(op, pool, clauses) for op in node.operands]
        out = pool.fresh("or")
        # out -> some lit;  each lit -> out.
        clauses.append(tuple([-out] + lits))
        for lit in lits:
            clauses.append((-lit, out))
        return out
    if isinstance(node, Implies):
        return _encode(Or((Not(node.antecedent), node.consequent)), pool, clauses)
    if isinstance(node, Iff):
        left = _encode(node.left, pool, clauses)
        right = _encode(node.right, pool, clauses)
        out = pool.fresh("iff")
        clauses.append((-out, -left, right))
        clauses.append((-out, left, -right))
        clauses.append((out, left, right))
        clauses.append((out, -left, -right))
        return out
    raise SolverError(f"tseitin: formula is not ground/propositional: {node!r}")
