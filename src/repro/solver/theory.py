"""Lazy DPLL(T) integration of the SAT core with the EUF theory.

The SAT core enumerates boolean models of the CNF skeleton; each full model
is checked for EUF consistency.  Inconsistent models are excluded with a
blocking clause built from the theory conflict, and the search resumes.
This is the classical lazy SMT loop (the eager alternative would encode
congruence axioms up front).
"""

from __future__ import annotations

from repro.errors import BudgetExceededError
from repro.solver import faults as _faults
from repro.solver.euf import EQ_PREDICATE, check_euf, parse_atom
from repro.solver.literals import AtomPool
from repro.solver.result import SatResult, SolverStatistics
from repro.solver.sat import CDCLSolver

_MAX_THEORY_ROUNDS = 10_000


def needs_theory(pool: AtomPool) -> bool:
    """True when any named atom involves equality or function terms."""
    for key in pool.named_atoms():
        name, args = parse_atom(key)
        if name == EQ_PREDICATE:
            return True
        if any("(" in a for a in args):
            return True
    return False


def solve_with_theory(
    sat: CDCLSolver,
    pool: AtomPool,
    *,
    assumptions: tuple[int, ...] = (),
    stats: SolverStatistics | None = None,
) -> SatResult:
    """Run the lazy DPLL(T) loop; returns the T-consistent verdict.

    Pure-boolean problems (no equality atoms, no function applications)
    skip theory checking entirely.
    """
    stats = stats or sat.stats
    theory_active = needs_theory(pool)

    for _round in range(_MAX_THEORY_ROUNDS):
        verdict = sat.solve(assumptions)
        if verdict is not SatResult.SAT or not theory_active:
            return verdict

        stats.theory_checks += 1
        model = sat.model()
        named = pool.named_atoms()
        assignment = [
            (key, model[var]) for key, var in named.items() if var in model
        ]
        conflict = _faults.mutate("theory.conflict", check_euf(assignment))
        if conflict is None:
            return SatResult.SAT

        stats.theory_conflicts += 1
        blocking = _faults.mutate(
            "theory.blocking_clause",
            tuple(
                -pool.variable_for(key) if value else pool.variable_for(key)
                for key, value in conflict
            ),
        )
        # The lemma's premise (the T-inconsistent assignment it excludes)
        # rides along into the proof log so the certification layer can
        # re-check the congruence conflict independently.
        if not sat.add_clause(blocking, theory_premise=tuple(conflict)):
            return SatResult.UNSAT

    raise BudgetExceededError("theory round budget exhausted")
