"""SMT solver substrate.

A from-scratch solver standing in for CVC5: Tseitin CNF conversion, a CDCL
SAT core (watched literals, VSIDS, Luby restarts), congruence closure for
equality over uninterpreted functions (lazy DPLL(T)), finite-domain
quantifier grounding, push/pop incrementality with ``check-sat-assuming``,
and explicit resource budgets so that the paper's solver timeouts surface
as first-class ``UNKNOWN`` results instead of hangs.

Every verdict can additionally be *certified* by a trust-but-verify layer
(:mod:`repro.solver.modelcheck`, :mod:`repro.solver.proof`): SAT answers
are re-validated against the original formulas by an independent
evaluator, UNSAT answers replay a clausal proof by unit propagation, and
a failed certificate demotes the verdict to UNKNOWN instead of surfacing
a possibly-wrong answer.
"""

from repro.solver.interface import CertificationConfig, Solver, SolverBudget
from repro.solver.result import (
    CERTIFICATION_FAILED,
    CertificateReport,
    SatResult,
    SolverResult,
    SolverStatistics,
)
from repro.solver.grounding import Universe

__all__ = [
    "CERTIFICATION_FAILED",
    "CertificateReport",
    "CertificationConfig",
    "Solver",
    "SolverBudget",
    "SolverResult",
    "SatResult",
    "SolverStatistics",
    "Universe",
]
