"""SMT solver substrate.

A from-scratch solver standing in for CVC5: Tseitin CNF conversion, a CDCL
SAT core (watched literals, VSIDS, Luby restarts), congruence closure for
equality over uninterpreted functions (lazy DPLL(T)), finite-domain
quantifier grounding, push/pop incrementality with ``check-sat-assuming``,
and explicit resource budgets so that the paper's solver timeouts surface
as first-class ``UNKNOWN`` results instead of hangs.
"""

from repro.solver.interface import Solver, SolverBudget
from repro.solver.result import SatResult, SolverResult, SolverStatistics
from repro.solver.grounding import Universe

__all__ = [
    "Solver",
    "SolverBudget",
    "SolverResult",
    "SatResult",
    "SolverStatistics",
    "Universe",
]
