"""CDCL SAT core.

Conflict-driven clause learning with two-watched-literal propagation,
VSIDS decision heuristics with phase saving, 1UIP conflict analysis,
Luby-sequence restarts, assumption-based solving (the mechanism behind
``check-sat-assuming``), and hard resource budgets.

The implementation favours clarity over raw speed, but is a real CDCL
solver: it learns clauses, backjumps non-chronologically, and restarts.
"""

from __future__ import annotations

import time

from repro.errors import BudgetExceededError, SolverError
from repro.solver import faults as _faults
from repro.solver.proof import ProofLog
from repro.solver.result import SatResult, SolverStatistics

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

_RESTART_BASE = 64
_ACTIVITY_DECAY = 0.95
_ACTIVITY_RESCALE = 1e100

# Knuth-style multiplicative hashes for the seeded initial-phase
# assignment.  Seed 0 is reserved for the legacy all-False phases so a
# seeded portfolio member can never silently replace the canonical
# search trajectory (byte-identical traces depend on it).
_PHASE_HASH_VAR = 2654435761
_PHASE_HASH_SEED = 2246822519


def seeded_phase(var: int, seed: int) -> bool:
    """Deterministic initial phase of ``var`` under ``seed`` (0 = False).

    A cheap avalanche over (var, seed): the same pair always yields the
    same polarity, and different seeds flip roughly half the variables —
    the diversification a portfolio race needs without any RNG state.
    """
    if seed == 0:
        return False
    # Combine with + (not ^): carries let the seed perturb every bit
    # position differently per variable, where a plain XOR would reduce
    # the seed's contribution to one global polarity flip.  Two
    # multiply-shift rounds finish the avalanche (Murmur3-style).
    mixed = (var * _PHASE_HASH_VAR + seed * _PHASE_HASH_SEED) & 0xFFFFFFFF
    mixed = ((mixed ^ (mixed >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    mixed = ((mixed ^ (mixed >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    return bool((mixed ^ (mixed >> 16)) & 1)


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Uses the MiniSat formulation: locate the finite subsequence that
    contains position ``i``, then recurse into it iteratively.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class CDCLSolver:
    """A reusable CDCL instance over a growing clause set."""

    def __init__(
        self,
        num_vars: int,
        *,
        stats: SolverStatistics | None = None,
        max_conflicts: int | None = None,
        max_propagations: int | None = None,
        deadline: float | None = None,
        decision_seed: int = 0,
    ) -> None:
        self.stats = stats or SolverStatistics()
        self.max_conflicts = max_conflicts
        self.max_propagations = max_propagations
        self.deadline = deadline
        # Perturbs only the *initial* decision phases (phase saving takes
        # over after the first assignment); seed 0 keeps the historical
        # all-False start so existing traces stay byte-identical.
        self.decision_seed = decision_seed

        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._values: list[int] = [_UNASSIGNED] * (num_vars + 1)
        self._levels: list[int] = [0] * (num_vars + 1)
        self._reasons: list[int] = [-1] * (num_vars + 1)
        self._phases: list[bool] = [
            seeded_phase(v, decision_seed) for v in range(num_vars + 1)
        ]
        self._activity: list[float] = [0.0] * (num_vars + 1)
        self._activity_inc = 1.0
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._queue_head = 0
        self._num_vars = num_vars
        self._conflicts_this_solve = 0
        self._propagations_this_solve = 0
        self._root_unsat = False
        self._assumption_floor = 0
        self._model: dict[int, bool] = {}
        # Learned-clause database management: low-activity learned clauses
        # are tombstoned once the database outgrows its (growing) cap.
        self._learned_indices: list[int] = []
        self._clause_activity: dict[int, float] = {}
        self._clause_activity_inc = 1.0
        self._max_learned = 4000
        # Optional clausal proof log (attach before adding clauses).  Input
        # clauses are recorded pre-pruning so the log stands on its own;
        # learned clauses, theory lemmas, and deletions follow in database
        # order.  See repro.solver.proof.
        self.proof: ProofLog | None = None

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow internal arrays so variables up to ``num_vars`` exist."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._values.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(-1)
            self._phases.append(seeded_phase(self._num_vars, self.decision_seed))
            self._activity.append(0.0)

    def add_clause(
        self,
        lits: tuple[int, ...] | list[int],
        *,
        theory_premise: tuple[tuple[str, bool], ...] | None = None,
    ) -> bool:
        """Add a clause; returns False when it makes the problem trivially unsat.

        Must be called at decision level 0 (between solves).
        ``theory_premise`` marks the clause as a theory lemma and records
        the T-inconsistent assignment it excludes in the proof log.
        """
        if self._trail_limits:
            raise SolverError("add_clause called mid-solve")
        unique = sorted(set(lits), key=abs)
        for lit in unique:
            if -lit in unique:
                return True  # tautology
        if self.proof is not None:
            # Log the clause before level-0 pruning: the checker re-derives
            # the pruning by unit propagation, so the log needs the original.
            if theory_premise is not None:
                self.proof.log_theory(unique, theory_premise)
            else:
                self.proof.log_input(unique)
        self.ensure_vars(max((abs(l) for l in unique), default=0))
        # Remove literals already false at level 0; detect satisfied clauses.
        pruned: list[int] = []
        for lit in unique:
            val = self._value(lit)
            if val == _TRUE and self._levels[abs(lit)] == 0:
                return True
            if val == _FALSE and self._levels[abs(lit)] == 0:
                continue
            pruned.append(lit)
        if not pruned:
            self._root_unsat = True
            return False
        if len(pruned) == 1:
            ok = self._assign_root(pruned[0])
            if not ok:
                self._root_unsat = True
            return ok
        index = len(self._clauses)
        self._clauses.append(pruned)
        self._watch(pruned[0], index)
        self._watch(pruned[1], index)
        self.stats.clauses += 1
        return True

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(lit, []).append(clause_index)

    def _assign_root(self, lit: int) -> bool:
        val = self._value(lit)
        if val == _TRUE:
            return True
        if val == _FALSE:
            return False
        self._enqueue(lit, reason=-1)
        return True

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        val = self._values[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else -val

    @property
    def _level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, lit: int, reason: int) -> None:
        var = abs(lit)
        self._values[var] = _TRUE if lit > 0 else _FALSE
        self._levels[var] = self._level
        self._reasons[var] = reason
        self._phases[var] = lit > 0
        self._trail.append(lit)

    def _propagate(self) -> int:
        """Unit propagation; returns the index of a conflicting clause or -1."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self._propagations_this_solve += 1
            self.stats.propagations += 1
            if (
                self.max_propagations is not None
                and self._propagations_this_solve > self.max_propagations
            ):
                raise BudgetExceededError("propagation budget exhausted")
            # The deadline also has to be honoured *inside* a propagation
            # pass: a single implication chain can run arbitrarily long
            # before control returns to _check_budgets in the outer loop.
            if (
                self.deadline is not None
                and self._propagations_this_solve % 1024 == 0
                and time.monotonic() > self.deadline
            ):
                raise BudgetExceededError("wall-clock timeout")
            false_lit = -lit
            watching = self._watches.get(false_lit)
            if not watching:
                continue
            kept: list[int] = []
            conflict = -1
            i = 0
            while i < len(watching):
                ci = watching[i]
                i += 1
                clause = self._clauses[ci]
                if clause is None:
                    continue  # tombstoned learned clause: drop the watch
                # Ensure false_lit sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    kept.append(ci)
                    continue
                # Find a new watch.
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != _FALSE:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._value(first) == _FALSE:
                    conflict = ci
                    kept.extend(watching[i:])
                    break
                self._enqueue(first, reason=ci)
            self._watches[false_lit] = kept
            if conflict >= 0:
                return conflict
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self._activity_inc *= 1.0 / _ACTIVITY_RESCALE

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """1UIP analysis: learned clause and backjump level."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause = self._clauses[conflict_index]
        while True:
            for q in clause:
                var = abs(q)
                if q != lit and not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._levels[var] >= self._level:
                        counter += 1
                    else:
                        learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reasons[var]
            # The reason clause contains ``lit`` itself; the q != lit guard
            # in the loop above skips it so the variable is not re-marked.
            clause = self._clauses[reason] if reason >= 0 else []
            if reason >= 0 and reason in self._clause_activity:
                self._bump_clause(reason)
        learned[0] = -lit
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        back_level = max(self._levels[abs(q)] for q in learned[1:])
        # Put a literal of back_level at position 1 for watching.
        for j in range(1, len(learned)):
            if self._levels[abs(learned[j])] == back_level:
                learned[1], learned[j] = learned[j], learned[1]
                break
        return learned, back_level

    def _bump_clause(self, index: int) -> None:
        self._clause_activity[index] = (
            self._clause_activity.get(index, 0.0) + self._clause_activity_inc
        )
        if self._clause_activity[index] > _ACTIVITY_RESCALE:
            for ci in self._clause_activity:
                self._clause_activity[ci] *= 1.0 / _ACTIVITY_RESCALE
            self._clause_activity_inc *= 1.0 / _ACTIVITY_RESCALE

    def _reduce_learned_db(self) -> None:
        """Tombstone the less active half of the learned-clause database.

        Clauses currently serving as reasons for assigned variables and
        short (binary) clauses are kept; the cap grows geometrically so the
        database still scales with genuinely hard instances.
        """
        protected = {r for r in self._reasons if r >= 0}
        candidates = [
            ci
            for ci in self._learned_indices
            if self._clauses[ci] is not None
            and ci not in protected
            and len(self._clauses[ci]) > 2
        ]
        if len(candidates) < self._max_learned // 2:
            self._max_learned = int(self._max_learned * 1.3)
            return
        candidates.sort(key=lambda ci: self._clause_activity.get(ci, 0.0))
        for ci in candidates[: len(candidates) // 2]:
            if self.proof is not None:
                self.proof.log_delete(self._clauses[ci])
            self._clauses[ci] = None
            self._clause_activity.pop(ci, None)
        self._learned_indices = [
            ci for ci in self._learned_indices if self._clauses[ci] is not None
        ]
        self._max_learned = int(self._max_learned * 1.1)

    def _backtrack(self, level: int) -> None:
        if self._level <= level:
            return
        limit = self._trail_limits[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._values[var] = _UNASSIGNED
            self._reasons[var] = -1
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._queue_head = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> int:
        """Pick the unassigned variable with the highest activity, or 0."""
        best_var = 0
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if self._values[var] == _UNASSIGNED and self._activity[var] > best_act:
                best_var = var
                best_act = self._activity[var]
        if best_var == 0:
            return 0
        return best_var if self._phases[best_var] else -best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: tuple[int, ...] = ()) -> SatResult:
        """CDCL search under ``assumptions``; leaves the trail at level 0.

        Raises :class:`BudgetExceededError` when a budget is exhausted; the
        caller converts that into an UNKNOWN result.
        """
        if self._root_unsat:
            return SatResult.UNSAT
        self._conflicts_this_solve = 0
        self._propagations_this_solve = 0
        self._backtrack(0)
        self._assumption_floor = 0
        try:
            return self._search(assumptions)
        finally:
            self._backtrack(0)

    def model(self) -> dict[int, bool]:
        """Assignment of the last SAT answer (valid right after solve)."""
        return dict(self._model)

    def _check_budgets(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceededError("wall-clock timeout")
        if (
            self.max_conflicts is not None
            and self._conflicts_this_solve > self.max_conflicts
        ):
            raise BudgetExceededError("conflict budget exhausted")

    def _place_assumptions(self, assumptions: tuple[int, ...]) -> SatResult | None:
        """Propagate at level 0, then stack assumptions as pseudo-decisions.

        Returns UNSAT when the assumptions are already contradicted, None
        when search should proceed.
        """
        if self._propagate() >= 0:
            return SatResult.UNSAT
        for lit in assumptions:
            self.ensure_vars(abs(lit))
            val = self._value(lit)
            if val == _FALSE:
                return SatResult.UNSAT
            if val == _UNASSIGNED:
                self._trail_limits.append(len(self._trail))
                self._enqueue(lit, reason=-1)
                if self._propagate() >= 0:
                    return SatResult.UNSAT
        self._assumption_floor = self._level
        return None

    def _search(self, assumptions: tuple[int, ...]) -> SatResult:
        self._model: dict[int, bool] = {}
        restarts = 0
        conflicts_until_restart = _RESTART_BASE * luby(restarts + 1)
        conflict_count_local = 0

        early = self._place_assumptions(assumptions)
        if early is not None:
            return early

        while True:
            self._check_budgets()
            conflict = self._propagate()
            if conflict >= 0:
                self._conflicts_this_solve += 1
                self.stats.conflicts += 1
                conflict_count_local += 1
                if self._level <= self._assumption_floor:
                    # Conflict at or below the assumption levels: the clause
                    # set (under these assumptions) is unsatisfiable.
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                learned = _faults.mutate("cdcl.learned_clause", learned)
                if self.proof is not None:
                    # Log after the mutation seam: the proof must describe
                    # the clause the search actually uses, or a corrupted
                    # clause could pass the replay.
                    self.proof.log_learn(learned)
                back_level = max(back_level, self._assumption_floor)
                self._backtrack(back_level)
                if len(learned) == 1 and back_level == 0:
                    self._enqueue(learned[0], reason=-1)
                elif len(learned) == 1:
                    self._enqueue(learned[0], reason=-1)
                else:
                    index = len(self._clauses)
                    self._clauses.append(learned)
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    self.stats.learned_clauses += 1
                    self._learned_indices.append(index)
                    self._bump_clause(index)
                    self._enqueue(learned[0], reason=index)
                self._activity_inc /= _ACTIVITY_DECAY
                self._clause_activity_inc /= _ACTIVITY_DECAY
                continue

            if conflict_count_local >= conflicts_until_restart:
                conflict_count_local = 0
                restarts += 1
                self.stats.restarts += 1
                conflicts_until_restart = _RESTART_BASE * luby(restarts + 1)
                self._backtrack(self._assumption_floor)
                if len(self._learned_indices) > self._max_learned:
                    self._reduce_learned_db()
                    self.stats.db_reductions += 1
                continue

            decision = self._decide()
            if decision == 0:
                self._model = _faults.mutate(
                    "cdcl.model",
                    {
                        v: self._values[v] == _TRUE
                        for v in range(1, self._num_vars + 1)
                    },
                )
                return SatResult.SAT
            self.stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            self._enqueue(decision, reason=-1)
