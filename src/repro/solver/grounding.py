"""Finite-domain quantifier grounding.

The policy encodings quantify over entities and data types, all of which
are named constants extracted from the policy itself.  Grounding therefore
instantiates each quantifier over the declared constants of its sort
(Herbrand expansion).  Nested quantifiers multiply — this is precisely the
clause explosion that makes full-policy formulas overwhelm the solver in
the paper, so the expansion carries an instantiation budget that converts
blow-ups into UNKNOWN results rather than memory exhaustion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, SolverError
from repro.solver import faults as _faults
from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    TrueFormula,
)
from repro.fol.terms import Constant, Sort
from repro.fol.visitor import substitute


@dataclass(slots=True)
class Universe:
    """Declared constants per sort."""

    _constants: dict[Sort, list[Constant]] = field(default_factory=dict)

    def declare(self, constant: Constant) -> None:
        """Add ``constant`` to its sort's domain (idempotent)."""
        domain = self._constants.setdefault(constant.sort, [])
        if constant not in domain:
            domain.append(constant)

    def declare_all(self, constants: list[Constant] | set[Constant]) -> None:
        for c in sorted(constants, key=lambda c: c.name):
            self.declare(c)

    def domain(self, sort: Sort) -> list[Constant]:
        """The constants of ``sort``, in declaration order."""
        return list(self._constants.get(sort, []))

    def size(self, sort: Sort) -> int:
        return len(self._constants.get(sort, []))

    def sorts(self) -> list[Sort]:
        return list(self._constants)

    def total_constants(self) -> int:
        return sum(len(v) for v in self._constants.values())

    def snapshot(self) -> dict[Sort, tuple[Constant, ...]]:
        """Immutable copy of every domain, in declaration order.

        The certification layer records this alongside each grounded
        assertion so its independent re-expansion sees exactly the
        universe the production grounder saw, even if constants are
        declared later (incremental asserts).
        """
        return {sort: tuple(domain) for sort, domain in self._constants.items()}


class GroundingCounter:
    """Shared instantiation counter with a hard cap and optional deadline.

    ``deadline`` (a ``time.monotonic`` instant) makes grounding honour the
    solver's wall-clock budget: nested quantifier expansion can burn
    arbitrary time before the SAT loop ever runs its first budget check,
    so the timeout has to be enforced here as well.
    """

    def __init__(self, budget: int | None, *, deadline: float | None = None) -> None:
        self.budget = budget
        self.count = 0
        self.deadline = deadline

    def spend(self, n: int = 1) -> None:
        self.count += n
        if self.budget is not None and self.count > self.budget:
            raise BudgetExceededError(
                f"grounding budget exhausted ({self.count} > {self.budget} instances)"
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceededError("wall-clock timeout")


def ground(
    formula: Formula,
    universe: Universe,
    *,
    counter: GroundingCounter | None = None,
) -> Formula:
    """Eliminate quantifiers by expansion over ``universe``.

    ``Forall x. phi`` becomes the conjunction of ``phi[x := c]`` over the
    domain of x's sort; ``Exists`` becomes the disjunction.  An empty domain
    makes a universal vacuously true and an existential false, matching
    standard semantics over an empty sort.
    """
    if counter is None:
        counter = GroundingCounter(None)

    def walk(node: Formula) -> Formula:
        if isinstance(node, (Predicate, TrueFormula, FalseFormula)):
            return node
        if isinstance(node, Not):
            return Not(walk(node.operand))
        if isinstance(node, And):
            return And(tuple(walk(op) for op in node.operands))
        if isinstance(node, Or):
            return Or(tuple(walk(op) for op in node.operands))
        if isinstance(node, Implies):
            return Implies(walk(node.antecedent), walk(node.consequent))
        if isinstance(node, Iff):
            return Iff(walk(node.left), walk(node.right))
        if isinstance(node, (Forall, Exists)):
            domain = universe.domain(node.variable.sort)
            counter.spend(max(len(domain), 1))
            instances = _faults.mutate(
                "ground.instances",
                [
                    walk(substitute(node.body, {node.variable: const}))
                    for const in domain
                ],
            )
            if isinstance(node, Forall):
                if not instances:
                    return TrueFormula()
                return _faults.mutate("ground.quantifier", And(tuple(instances)))
            if not instances:
                return FalseFormula()
            return _faults.mutate("ground.quantifier", Or(tuple(instances)))
        raise SolverError(f"cannot ground formula node {node!r}")

    return walk(formula)
