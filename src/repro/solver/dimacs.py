"""DIMACS CNF import/export.

The standard interchange format for SAT instances.  Export lets the
propositional skeleton of any policy encoding be handed to an external SAT
solver for cross-checking; import lets the bundled CDCL core run standard
benchmark files.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import SolverError
from repro.solver.literals import AtomPool, Clause


def to_dimacs(
    clauses: list[Clause],
    *,
    num_vars: int | None = None,
    pool: AtomPool | None = None,
) -> str:
    """Serialize ``clauses`` to DIMACS CNF text.

    When ``pool`` is given, named atoms are emitted as ``c varname`` comment
    lines so the mapping survives the round trip for human readers.
    """
    if num_vars is None:
        num_vars = max((abs(l) for c in clauses for l in c), default=0)
    lines = []
    if pool is not None:
        for key, var in sorted(pool.named_atoms().items(), key=lambda kv: kv[1]):
            lines.append(f"c var {var} = {key}")
    lines.append(f"p cnf {num_vars} {len(clauses)}")
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> tuple[int, list[Clause]]:
    """Parse DIMACS CNF text into (num_vars, clauses).

    Accepts comments, the problem line, and clauses possibly spanning
    multiple lines (terminated by 0, per the spec).
    """
    num_vars: int | None = None
    declared_clauses: int | None = None
    clauses: list[Clause] = []
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            value = int(token)
            if value == 0:
                if current:
                    clauses.append(tuple(current))
                    current = []
            else:
                current.append(value)
    if current:
        clauses.append(tuple(current))
    if num_vars is None:
        raise SolverError("missing 'p cnf' problem line")
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerated (many published files are off by a few) but validated
        # enough to catch wholesale truncation.
        if abs(declared_clauses - len(clauses)) > max(2, declared_clauses // 10):
            raise SolverError(
                f"clause count mismatch: declared {declared_clauses}, found {len(clauses)}"
            )
    return num_vars, clauses


def solve_dimacs_file(path: str | Path, **solver_kwargs) -> tuple[str, dict[int, bool]]:
    """Solve a DIMACS file with the bundled CDCL core.

    Returns (verdict, model); the model is empty for unsat instances.
    """
    from repro.solver.result import SatResult
    from repro.solver.sat import CDCLSolver

    num_vars, clauses = from_dimacs(Path(path).read_text("utf-8"))
    solver = CDCLSolver(num_vars, **solver_kwargs)
    for clause in clauses:
        solver.add_clause(clause)
    verdict = solver.solve()
    model = solver.model() if verdict is SatResult.SAT else {}
    return verdict.value, model
