"""Deterministic soundness-mutation seams for the SMT substrate.

Test infrastructure, not production code — the solver-side counterpart of
:mod:`repro.store.faults`.  Production modules route a handful of
soundness-critical values (the learned clause leaving conflict analysis,
the SAT model, the theory conflict and its blocking clause, the quantifier
instance list and grounded connective) through :func:`mutate`.  With no
mutator installed the call is a near-free identity; the certification
test harness installs a :class:`Mutation` at exactly one site and asserts
that the certification layer demotes the corrupted verdict to UNKNOWN
instead of surfacing a wrong answer.

Every mutator is deterministic (no randomness, no clocks): the same
formula under the same mutation always corrupts the same way, so a caught
alarm reproduces.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.fol.formula import And, Or

#: The seams production code exposes.  Keep in sync with the `mutate`
#: call sites in sat.py / theory.py / grounding.py.
MUTATION_SITES = (
    "cdcl.learned_clause",  # clause leaving 1UIP conflict analysis
    "cdcl.model",  # full assignment reported for a SAT answer
    "theory.conflict",  # EUF conflict returned by check_euf
    "theory.blocking_clause",  # lemma excluding a T-inconsistent model
    "ground.instances",  # quantifier instance list
    "ground.quantifier",  # grounded connective (And for forall, Or for exists)
)


@dataclass(slots=True)
class Mutation:
    """One deterministic corruption applied at one seam."""

    site: str
    name: str
    fn: Callable[[object], object]
    fires: int = 0

    def __post_init__(self) -> None:
        if self.site not in MUTATION_SITES:
            raise ValueError(f"unknown mutation site {self.site!r}")


_active: dict[str, Mutation] = {}


def mutate(site: str, value):
    """Production seam: pass ``value`` through the installed mutator, if any."""
    if not _active:
        return value
    mutation = _active.get(site)
    if mutation is None:
        return value
    mutated = mutation.fn(value)
    if mutated is not value:
        mutation.fires += 1
    return mutated


def install(mutation: Mutation) -> None:
    _active[mutation.site] = mutation


def clear() -> None:
    _active.clear()


@contextmanager
def installed(*mutations: Mutation) -> Iterator[None]:
    """Install mutations for the duration of a with-block, then clear."""
    for m in mutations:
        install(m)
    try:
        yield
    finally:
        clear()


# ----------------------------------------------------------------------
# The soundness-mutation catalog the acceptance harness iterates over.
# Each mutator leaves the solver mechanically runnable (no crashes) but
# logically wrong, which is exactly what certification must catch.
# ----------------------------------------------------------------------


def _drop_learned_literal(value):
    # Weakening-in-disguise: dropping a literal STRENGTHENS the clause,
    # potentially pruning models the formula allows.
    if isinstance(value, list) and len(value) >= 2:
        return value[:-1]
    return value


def _flip_learned_literal(value):
    if isinstance(value, list) and value:
        return [-value[0]] + value[1:]
    return value


def _flip_model_bit(value):
    if isinstance(value, dict) and value:
        var = min(value)
        flipped = dict(value)
        flipped[var] = not flipped[var]
        return flipped
    return value


def _suppress_theory_conflict(value):
    # check_euf found an inconsistency; pretend it did not — the classic
    # "theory solver returns SAT on a T-inconsistent model" bug.
    if value is not None:
        return None
    return value


def _drop_theory_literal(value):
    if isinstance(value, tuple) and len(value) >= 2:
        return value[:-1]
    return value


def _drop_ground_instance(value):
    if isinstance(value, list) and len(value) >= 2:
        return value[:-1]
    return value


def _swap_ground_connective(value):
    if isinstance(value, And):
        return Or(value.operands)
    if isinstance(value, Or):
        return And(value.operands)
    return value


def soundness_mutations() -> list[Mutation]:
    """Fresh instances of the full catalog (fires counters zeroed)."""
    return [
        Mutation("cdcl.learned_clause", "drop-learned-literal", _drop_learned_literal),
        Mutation("cdcl.learned_clause", "flip-learned-literal", _flip_learned_literal),
        Mutation("cdcl.model", "flip-model-bit", _flip_model_bit),
        Mutation("theory.conflict", "suppress-theory-conflict", _suppress_theory_conflict),
        Mutation("theory.blocking_clause", "drop-lemma-literal", _drop_theory_literal),
        Mutation("ground.instances", "drop-ground-instance", _drop_ground_instance),
        Mutation("ground.quantifier", "swap-ground-connective", _swap_ground_connective),
    ]
