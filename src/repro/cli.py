"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-policy process POLICY.txt [--artifacts DIR]
    repro-policy query POLICY.txt "TikTak collects the email address." [--smtlib]
    repro-policy audit POLICY.txt
    repro-policy diff OLD.txt NEW.txt
    repro-policy corpus {tiktak,metabook,meditrack} [--out FILE]

Every command runs fully offline on the bundled substrates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import PolicyPipeline
from repro.analysis import (
    coverage_report,
    diff_policies,
    find_contradictions,
    render_contradictions,
    render_coverage,
    render_diff,
)
from repro.core.extraction import extract_policy
from repro.errors import ReproError


def _read_policy(path: str) -> str:
    text = Path(path).read_text("utf-8")
    if not text.strip():
        raise ReproError(f"policy file {path} is empty")
    return text


def _cmd_process(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    print(f"company: {model.company}")
    print(f"segments: {len(model.extraction.segments)}")
    print(f"practices: {model.extraction.num_practices}")
    for key, value in model.statistics.as_dict().items():
        print(f"{key}: {value}")
    print(f"data taxonomy: {len(model.data_taxonomy)} nodes, depth {model.data_taxonomy.max_depth()}")
    print(f"entity taxonomy: {len(model.entity_taxonomy)} nodes")
    usage = pipeline.llm.stats
    print(f"llm calls: {usage.calls} ({usage.cache_hits} cache hits)")
    if args.artifacts:
        pipeline.save_artifacts(model, args.artifacts)
        print(f"artifacts written to {args.artifacts}")
    return 0


def _resilient_pipeline(args: argparse.Namespace) -> PolicyPipeline:
    """A pipeline with the LLM boundary wrapped and the ladder armed."""
    from repro.core.pipeline import PipelineConfig
    from repro.llm.client import CachedLLM, UsageStats
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience import BudgetLadder, CircuitBreaker, RetryingLLM, RetryPolicy

    stats = UsageStats()
    llm = CachedLLM(
        CircuitBreaker(
            RetryingLLM(
                SimulatedLLM(),
                RetryPolicy(max_retries=args.max_retries),
                stats=stats,
            ),
            stats=stats,
        )
    )
    try:
        multipliers = tuple(
            float(m) for m in args.ladder.split(",") if m.strip()
        )
    except ValueError:
        raise ReproError(f"invalid --ladder value: {args.ladder!r}") from None
    try:
        ladder = BudgetLadder(
            multipliers=multipliers, decompose=not args.no_decompose
        )
    except ValueError as exc:
        raise ReproError(f"invalid --ladder value: {exc}") from None
    return PolicyPipeline(llm=llm, config=PipelineConfig(budget_ladder=ladder))


def _cmd_query(args: argparse.Namespace) -> int:
    pipeline = (
        _resilient_pipeline(args) if args.resilient else PolicyPipeline()
    )
    model = pipeline.process(_read_policy(args.policy))
    outcome = pipeline.query(model, args.question)
    print(outcome.summary())
    if args.smtlib:
        print("\n--- SMT-LIB script ---")
        print(outcome.verification.smtlib_text)
    if args.stats:
        print("\n--- pipeline metrics ---")
        print(outcome.metrics.render())
    # Exit code communicates the verdict for scripting: 0 valid, 1 invalid,
    # 2 unknown (3 is reserved for errors, matching ErrorOutcome batches).
    return {"VALID": 0, "INVALID": 1, "UNKNOWN": 2, "ERROR": 3}[
        outcome.verdict.value
    ]


def _cmd_audit(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    report = find_contradictions(
        model.extraction.practices, data_taxonomy=model.data_taxonomy
    )
    print(render_contradictions(report))
    print()
    print(render_coverage(coverage_report(model.graph)))
    return 0 if not report.genuine else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    old = extract_policy(pipeline.runner, _read_policy(args.old))
    new = extract_policy(pipeline.runner, _read_policy(args.new), company=old.company)
    diff = diff_policies(old, new)
    print(render_diff(diff))
    return 0 if diff.is_empty else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import load_scenarios, run_scenarios

    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    scenarios = load_scenarios(args.suite)
    report = run_scenarios(pipeline, model, scenarios)
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import meditrack_policy, metabook_policy, tiktak_policy

    doc = {
        "tiktak": tiktak_policy,
        "metabook": metabook_policy,
        "meditrack": meditrack_policy,
    }[args.name]()
    if args.out:
        Path(args.out).write_text(doc.text, "utf-8")
        print(f"wrote {doc.word_count:,} words to {args.out}")
    else:
        print(doc.text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-policy",
        description="Privacy-policy extraction and verification (HotNets '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("process", help="run Phases 1+2 and print statistics")
    p.add_argument("policy", help="path to a policy text file")
    p.add_argument("--artifacts", help="directory for JSON pipeline artifacts")
    p.set_defaults(func=_cmd_process)

    p = sub.add_parser("query", help="verify a data-practice question")
    p.add_argument("policy", help="path to a policy text file")
    p.add_argument("question", help='declarative query, e.g. "Acme collects the email."')
    p.add_argument("--smtlib", action="store_true", help="print the generated SMT-LIB")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage wall times, cache counters, and solver totals",
    )
    p.add_argument(
        "--resilient",
        action="store_true",
        help="wrap the LLM in retry + circuit-breaker layers and escalate "
        "budget-limited UNKNOWN verdicts through the degradation ladder",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per LLM completion with --resilient (default: 2)",
    )
    p.add_argument(
        "--ladder",
        default="4,16",
        help="comma-separated budget-escalation multipliers for the "
        "degradation ladder with --resilient (default: 4,16)",
    )
    p.add_argument(
        "--no-decompose",
        action="store_true",
        help="disable the per-data-branch decomposition rung of the ladder",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("audit", help="contradiction and coverage report")
    p.add_argument("policy", help="path to a policy text file")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("diff", help="compare two policy versions")
    p.add_argument("old", help="path to the old version")
    p.add_argument("new", help="path to the new version")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "scenarios", help="run a JSON compliance-scenario suite against a policy"
    )
    p.add_argument("policy", help="path to a policy text file")
    p.add_argument("suite", help="path to a JSON scenario suite")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("corpus", help="emit a bundled synthetic policy")
    p.add_argument("name", choices=["tiktak", "metabook", "meditrack"])
    p.add_argument("--out", help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_corpus)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
