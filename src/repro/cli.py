"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro-policy process POLICY.txt [--artifacts DIR]
    repro-policy query POLICY.txt "TikTak collects the email address." [--smtlib]
    repro-policy query --from-snapshot DIR "TikTak collects the email address."
    repro-policy audit POLICY.txt
    repro-policy diff OLD.txt NEW.txt
    repro-policy corpus {tiktak,metabook,meditrack} [--out FILE]
    repro-policy snapshot save POLICY.txt --store DIR
    repro-policy snapshot load --store DIR
    repro-policy snapshot audit --store DIR [--policy POLICY.txt] [--heal]
    repro-policy batch run POLICY.txt QUERIES.txt --checkpoint DIR \\
        [--max-pending N] [--stall-after S] [--timeout S]
    repro-policy batch resume POLICY.txt --checkpoint DIR
    repro-policy registry mint --root DIR --count 100 [--seed S]
    repro-policy registry list --root DIR
    repro-policy registry query --root DIR "QUESTION" [--companies A,B] \\
        [--checkpoint DIR] [--resume]
    repro-policy serve --root DIR [--port P] [--shed-above N] \\
        [--deadline S] [--warm N] [--scrub-interval S]
    repro-policy fsck PATH [--repair] [--json FILE]

Every command runs fully offline on the bundled substrates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import PipelineMetrics, PolicyPipeline
from repro.analysis import (
    coverage_report,
    diff_policies,
    find_contradictions,
    render_contradictions,
    render_coverage,
    render_diff,
)
from repro.core.extraction import extract_policy
from repro.errors import ProviderError, ReproError, SnapshotError

EXIT_CODES_EPILOG = """\
exit codes:
  0  success; for `query`: verdict VALID; for `audit`/`diff`: nothing found
  1  for `query`: verdict INVALID; for `audit`/`diff`/`snapshot audit`: findings
  2  for `query`: verdict UNKNOWN (solver budget or vague terms)
  3  error (bad input, missing file, isolated query failure)
  4  snapshot corruption: no hash-valid snapshot could be loaded
     (corrupt snapshots are quarantined with a structured report)
  5  certification failure: the solver produced an answer its independent
     checker could not reproduce (soundness alarm; verdict demoted to
     UNKNOWN, offending formula quarantined with --quarantine)
  6  job aborted with a partial checkpoint: a `batch` run drained on
     SIGINT/SIGTERM before finishing; completed verdicts are committed to
     the checkpoint journal and `batch resume` picks up the rest
  7  server failed to bind or become ready: `serve` could not take its
     address, or the registry root has no companies to serve
  8  provider/cassette failure: `--provider http` without REPRO_LLM_URL,
     a permanent provider rejection (4xx other than 408/429), or a strict
     `--cassette replay` asked for a prompt the cassette never recorded
  9  integrity findings: `fsck` found damage in a durable artifact (or,
     with --repair, damage remained after the repair pass — unrepairable
     evidence is quarantined with provenance, never silently served)
"""


def _read_policy(path: str) -> str:
    text = Path(path).read_text("utf-8")
    if not text.strip():
        raise ReproError(f"policy file {path} is empty")
    return text


def _cmd_process(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    print(f"company: {model.company}")
    print(f"segments: {len(model.extraction.segments)}")
    print(f"practices: {model.extraction.num_practices}")
    for key, value in model.statistics.as_dict().items():
        print(f"{key}: {value}")
    print(f"data taxonomy: {len(model.data_taxonomy)} nodes, depth {model.data_taxonomy.max_depth()}")
    print(f"entity taxonomy: {len(model.entity_taxonomy)} nodes")
    usage = pipeline.llm.stats
    print(f"llm calls: {usage.calls} ({usage.cache_hits} cache hits)")
    if args.artifacts:
        pipeline.save_artifacts(model, args.artifacts)
        print(f"artifacts written to {args.artifacts}")
    return 0


def _add_provider_options(sp) -> None:
    """LLM provider/cassette flags shared by query, batch, registry, serve."""
    sp.add_argument(
        "--llm-provider",
        choices=("simulated", "http"),
        default="simulated",
        dest="provider",
        help="completion backend: 'simulated' is the offline default; "
        "'http' posts to the endpoint configured by REPRO_LLM_URL (plus "
        "REPRO_LLM_MODEL / REPRO_LLM_API_KEY / REPRO_LLM_TIMEOUT / "
        "REPRO_LLM_RPS) and exits 8 when unconfigured (default: simulated)",
    )
    sp.add_argument(
        "--cassette",
        choices=("record", "replay"),
        help="record prompt->completion pairs to the cassette at "
        "--cassette-path, or replay them deterministically with no "
        "backend; strict replay exits 8 on an unrecorded prompt",
    )
    sp.add_argument(
        "--cassette-path",
        metavar="FILE",
        help="cassette JSONL file for --cassette record|replay",
    )
    sp.add_argument(
        "--profile",
        metavar="NAME",
        help="wrap the backend in a deterministic stress profile "
        "(flaky-429, brownout, flapping) exercising the retry/breaker "
        "stack with content-keyed faults and latency",
    )


def _build_provider_stack(args: argparse.Namespace):
    """Compose the LLM stack the provider/cassette flags describe.

    Returns ``None`` when no provider flag is active, so callers fall
    through to the pipeline's default backend.  The composed stack is
    ``CachedLLM(CircuitBreaker(RetryingLLM(RecordingLLM?(ProfiledLLM?(
    backend)))))`` — retries above the recorder so only completions that
    actually succeeded are captured, the profile injector at the bottom
    where a real unreliable provider would sit.
    """
    provider = getattr(args, "provider", "simulated")
    cassette_mode = getattr(args, "cassette", None)
    cassette_path = getattr(args, "cassette_path", None)
    profile_name = getattr(args, "profile", None)
    if cassette_mode and not cassette_path:
        raise ReproError("--cassette requires --cassette-path FILE")
    if cassette_path and not cassette_mode:
        raise ReproError("--cassette-path requires --cassette record|replay")
    if provider == "simulated" and not cassette_mode and not profile_name:
        return None

    from repro.llm.client import CachedLLM, UsageStats
    from repro.llm.simulated import SimulatedLLM
    from repro.providers import (
        HTTPProvider,
        ProfiledLLM,
        RecordingLLM,
        ReplayLLM,
        get_profile,
    )
    from repro.resilience import CircuitBreaker, RetryingLLM, RetryPolicy

    if cassette_mode == "replay":
        # Replay needs no backend at all; --llm-provider is ignored.
        backend = ReplayLLM(cassette_path, strict=True)
    elif provider == "http":
        backend = HTTPProvider.from_env()
    else:
        backend = SimulatedLLM()
    if profile_name:
        try:
            profile = get_profile(profile_name)
        except ValueError as exc:
            raise ReproError(str(exc)) from None
        backend = ProfiledLLM(backend, profile)
    if cassette_mode == "record":
        backend = RecordingLLM(backend, cassette_path)
    stats = UsageStats()
    return CachedLLM(
        CircuitBreaker(
            RetryingLLM(
                backend,
                RetryPolicy(max_retries=getattr(args, "max_retries", 2)),
                stats=stats,
            ),
            stats=stats,
        )
    )


def _resilient_pipeline(args: argparse.Namespace, llm=None) -> PolicyPipeline:
    """A pipeline with the LLM boundary wrapped and the ladder armed."""
    from repro.core.pipeline import PipelineConfig
    from repro.llm.client import CachedLLM, UsageStats
    from repro.llm.simulated import SimulatedLLM
    from repro.resilience import BudgetLadder, CircuitBreaker, RetryingLLM, RetryPolicy

    if llm is None:
        stats = UsageStats()
        llm = CachedLLM(
            CircuitBreaker(
                RetryingLLM(
                    SimulatedLLM(),
                    RetryPolicy(max_retries=args.max_retries),
                    stats=stats,
                ),
                stats=stats,
            )
        )
    try:
        multipliers = tuple(
            float(m) for m in args.ladder.split(",") if m.strip()
        )
    except ValueError:
        raise ReproError(f"invalid --ladder value: {args.ladder!r}") from None
    try:
        ladder = BudgetLadder(
            multipliers=multipliers, decompose=not args.no_decompose
        )
    except ValueError as exc:
        raise ReproError(f"invalid --ladder value: {exc}") from None
    return PolicyPipeline(llm=llm, config=PipelineConfig(budget_ladder=ladder))


def _apply_query_timeout(pipeline: PolicyPipeline, timeout: float | None) -> None:
    """Compose a per-query wall-clock ceiling onto the solver budget.

    The effective deadline is ``min(configured, --timeout)`` — tightening
    only, so the paper-calibrated default never silently grows; without
    ``--timeout`` the budget is untouched.
    """
    if timeout is None:
        return
    if timeout <= 0:
        raise ReproError(f"--timeout must be > 0, got {timeout}")
    from dataclasses import replace

    base = pipeline.config.solver_budget
    effective = (
        timeout
        if base.timeout_seconds is None
        else min(base.timeout_seconds, timeout)
    )
    pipeline.config.solver_budget = replace(base, timeout_seconds=effective)


def _add_backend_options(sp) -> None:
    """Execution-backend flags shared by query, batch, registry, serve."""
    sp.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="solver execution backend: 'thread' solves in-process, "
        "'process' ships each solve to a supervised worker process with "
        "hard kills on deadline/stall/RSS and crash retry (default: thread)",
    )
    sp.add_argument(
        "--portfolio",
        type=int,
        default=0,
        metavar="N",
        help="with --backend process: rescue budget-exhausted UNKNOWN "
        "verdicts by racing N VSIDS-seeded solver variants and keeping "
        "the first certified decisive answer (0 disables; default: 0)",
    )


def _apply_backend(pipeline: PolicyPipeline, args: argparse.Namespace) -> None:
    """Map --backend/--portfolio onto the pipeline config."""
    backend = getattr(args, "backend", "thread")
    portfolio = getattr(args, "portfolio", 0)
    if portfolio < 0:
        raise ReproError(f"--portfolio must be >= 0, got {portfolio}")
    if portfolio and backend != "process":
        raise ReproError("--portfolio requires --backend process")
    pipeline.config.execution_backend = backend
    if portfolio:
        from repro.procpool import PortfolioConfig

        pipeline.config.portfolio = PortfolioConfig(
            seeds=tuple(range(1, portfolio + 1))
        )


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.verify import is_certification_failure

    llm = _build_provider_stack(args)
    pipeline = (
        _resilient_pipeline(args, llm=llm)
        if args.resilient
        else PolicyPipeline(llm=llm)
    )
    if args.certify is not None:
        pipeline.config.certify = args.certify
    if args.quarantine:
        pipeline.config.certification_quarantine_dir = args.quarantine
    _apply_query_timeout(pipeline, args.timeout)
    _apply_backend(pipeline, args)
    if args.from_snapshot:
        model = pipeline.load_model(args.from_snapshot)
    else:
        model = pipeline.process(_read_policy(args.policy))
    outcome = pipeline.query(model, args.question)
    pipeline.shutdown()  # reap --backend process workers (thread: no-op)
    print(outcome.summary())
    if args.smtlib:
        print("\n--- SMT-LIB script ---")
        print(outcome.verification.smtlib_text)
    if args.stats:
        # Fold the LLM stack's live resilience state (breaker, retries,
        # provider/cassette counters) into the lifetime metrics, then
        # merge with the per-query stage accounting for one report.
        pipeline.sync_resilience_metrics()
        stats = PipelineMetrics(queries=0)
        stats.merge(outcome.metrics)
        stats.merge(pipeline.metrics)
        print("\n--- pipeline metrics ---")
        print(stats.render())
    # Exit code communicates the verdict for scripting: 0 valid, 1 invalid,
    # 2 unknown (3 is reserved for errors, matching ErrorOutcome batches;
    # 5 flags the certification soundness alarm, a special UNKNOWN).
    if is_certification_failure(outcome.verification):
        return 5
    return {"VALID": 0, "INVALID": 1, "UNKNOWN": 2, "ERROR": 3}[
        outcome.verdict.value
    ]


def _cmd_audit(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    report = find_contradictions(
        model.extraction.practices, data_taxonomy=model.data_taxonomy
    )
    print(render_contradictions(report))
    print()
    print(render_coverage(coverage_report(model.graph)))
    return 0 if not report.genuine else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    old = extract_policy(pipeline.runner, _read_policy(args.old))
    new = extract_policy(pipeline.runner, _read_policy(args.new), company=old.company)
    diff = diff_policies(old, new)
    print(render_diff(diff))
    return 0 if diff.is_empty else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import load_scenarios, run_scenarios

    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    scenarios = load_scenarios(args.suite)
    report = run_scenarios(pipeline, model, scenarios)
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import meditrack_policy, metabook_policy, tiktak_policy

    doc = {
        "tiktak": tiktak_policy,
        "metabook": metabook_policy,
        "meditrack": meditrack_policy,
    }[args.name]()
    if args.out:
        Path(args.out).write_text(doc.text, "utf-8")
        print(f"wrote {doc.word_count:,} words to {args.out}")
    else:
        print(doc.text)
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    pipeline = PolicyPipeline()
    model = pipeline.process(_read_policy(args.policy))
    info = pipeline.save_model(model, args.store, journaled=args.journaled)
    print(
        f"committed {info.snapshot_id} (revision {info.revision}, "
        f"company {info.company}) to {args.store}"
    )
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    from repro.store import SnapshotStore

    store = SnapshotStore(args.store)
    result = store.load()
    model = result.model
    if result.journal_recovery:
        print(f"journal recovery: {result.journal_recovery}")
    for report in result.quarantined:
        print(report.summary(), file=sys.stderr)
    if result.fallback_from:
        print(
            f"fell back from corrupt {result.fallback_from} to {result.snapshot_id}",
            file=sys.stderr,
        )
    print(f"loaded {result.snapshot_id} in {result.seconds:.3f}s")
    print(f"company: {model.company} (revision {model.revision})")
    print(f"segments: {len(model.extraction.segments)}")
    print(f"practices: {model.extraction.num_practices}")
    print(f"graph edges: {len(model.graph.edges())}")
    print(f"vocabulary: {len(model.node_vocabulary)} terms")
    return 0


def _cmd_snapshot_audit(args: argparse.Namespace) -> int:
    from repro.store import SnapshotStore, audit_parity, audit_structure, heal_model

    store = SnapshotStore(args.store)
    result = store.load()
    model = result.model
    report = audit_structure(model)
    print(report.summary())
    failed = not report.passed
    if args.policy:
        pipeline = PolicyPipeline()
        rebuilt = pipeline.process(_read_policy(args.policy), company=model.company)
        rebuilt.revision = model.revision
        parity = audit_parity(model, rebuilt)
        print(parity.summary())
        if not parity.passed:
            failed = True
            if args.heal:
                heal_model(model, rebuilt)
                info = store.commit_update(model)
                print(f"healed and recommitted as {info.snapshot_id}")
    elif args.heal:
        raise ReproError("--heal requires --policy (the rebuild source)")
    return 1 if failed else 0


def _read_questions(path: str) -> list[str]:
    """One question per line; blank lines and ``#`` comments are skipped."""
    questions = [
        line.strip()
        for line in Path(path).read_text("utf-8").splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not questions:
        raise ReproError(f"queries file {path} contains no questions")
    return questions


def _add_batch_options(sp, *, checkpoint_required: bool = False) -> None:
    """Job-supervision flags shared by `batch run/resume` and
    `registry query` — one JobRunner stands behind all three."""
    sp.add_argument(
        "--checkpoint",
        metavar="DIR",
        required=checkpoint_required,
        help="checkpoint journal directory (append-only, fsync'd); "
        "enables crash/Ctrl-C resume",
    )
    sp.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker threads (default: min(8, pending queries))",
    )
    sp.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="admission-queue bound: at most N queries in flight or "
        "queued; feeding blocks above it (default: 64)",
    )
    sp.add_argument(
        "--shed-above",
        type=int,
        metavar="N",
        help="load-shed instead of queueing once N queries are pending "
        "(each shed query answers UNKNOWN immediately; must be <= "
        "--max-pending; default: off, pure backpressure)",
    )
    sp.add_argument(
        "--stall-after",
        type=float,
        metavar="S",
        help="watchdog threshold: a query running S seconds without a "
        "heartbeat is cancelled, its worker replaced, and its slot "
        "answered UNKNOWN with a stall report (default: off)",
    )
    sp.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-query wall-clock ceiling composed onto the solver "
        "deadline as min(configured, S); default unchanged",
    )
    sp.add_argument(
        "--stats",
        action="store_true",
        help="print merged pipeline metrics for the job",
    )
    sp.add_argument(
        "--json",
        metavar="FILE",
        help="write the full structured result to FILE",
    )
    _add_backend_options(sp)
    _add_provider_options(sp)


def _job_config(args: argparse.Namespace):
    from repro.jobs import JobConfig

    try:
        return JobConfig(
            max_workers=args.workers,
            max_pending=args.max_pending,
            shed_above=args.shed_above,
            stall_after=args.stall_after,
            checkpoint_dir=args.checkpoint,
            query_timeout=args.timeout,
        )
    except ValueError as exc:
        raise ReproError(f"invalid batch options: {exc}") from None


def _render_job_result(
    result, args: argparse.Namespace, pipeline: PolicyPipeline | None = None
) -> None:
    from repro.jobs import CheckpointedOutcome

    for index, outcome in enumerate(result.outcomes):
        if outcome is None:
            print(f"[{index}] PENDING  {result.questions[index]}")
            continue
        marker = (
            " (restored)" if isinstance(outcome, CheckpointedOutcome) else ""
        )
        print(f"[{index}] {outcome.verdict.value:8s} {result.questions[index]}{marker}")
    print(result.summary())
    for report in result.stalls:
        print(f"stall: {report.summary()}", file=sys.stderr)
    if result.aborted and result.checkpoint_dir:
        print(
            f"job aborted; resume with: batch resume --checkpoint "
            f"{result.checkpoint_dir}",
            file=sys.stderr,
        )
    if args.stats:
        stats = result.metrics
        if pipeline is not None:
            # Fold the LLM stack's resilience counters (retries, breaker
            # state, provider/cassette totals) into the report.
            pipeline.sync_resilience_metrics()
            stats = PipelineMetrics(queries=0)
            stats.merge(result.metrics)
            stats.merge(pipeline.metrics)
        print("\n--- pipeline metrics ---")
        print(stats.render())
    if args.json:
        from repro.store.atomic import atomic_write_json

        atomic_write_json(args.json, result.as_dict())
        print(f"wrote JSON results to {args.json}")


def _job_exit_code(result) -> int:
    # 6 = aborted with a partial checkpoint (resumable); 3 = completed but
    # some queries failed (isolated errors); 0 = every query answered.
    if result.aborted:
        return 6
    if result.errors:
        return 3
    return 0


def _cmd_registry_mint(args: argparse.Namespace) -> int:
    from repro.registry import MintSpec, PolicyRegistry

    spec_kwargs: dict = {"count": args.count, "seed": args.seed}
    if args.sectors:
        spec_kwargs["sectors"] = tuple(
            s.strip() for s in args.sectors.split(",") if s.strip()
        )
    if args.words:
        try:
            spec_kwargs["target_words"] = tuple(
                int(w) for w in args.words.split(",") if w.strip()
            )
        except ValueError:
            raise ReproError(f"invalid --words value: {args.words!r}") from None
    if args.exception_pairs is not None:
        spec_kwargs["exception_pairs"] = args.exception_pairs
    if args.incoherent_fraction is not None:
        spec_kwargs["incoherent_exception_fraction"] = args.incoherent_fraction
    registry = PolicyRegistry(args.root)
    report = registry.mint(MintSpec(**spec_kwargs))
    print(report.summary())
    print(f"registry: {len(registry)} companies at {args.root}")
    return 0


def _cmd_registry_list(args: argparse.Namespace) -> int:
    from repro.registry import PolicyRegistry

    registry = PolicyRegistry(args.root)
    for company in registry.companies():
        entry = registry.entry(company)
        print(
            f"{company:24s} shard {entry.shard}  revision {entry.revision}"
            + (f"  sector {entry.sector}" if entry.sector else "")
            + (f"  ~{entry.target_words}w" if entry.target_words else "")
        )
    print(f"{len(registry)} companies in {registry.num_shards} shards")
    return 0


def _cmd_registry_query(args: argparse.Namespace) -> int:
    from repro.registry import PolicyRegistry

    pipeline = PolicyPipeline(llm=_build_provider_stack(args))
    _apply_query_timeout(pipeline, args.timeout)
    _apply_backend(pipeline, args)
    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint DIR")
    registry = PolicyRegistry(
        args.root, pipeline=pipeline, max_warm=args.max_warm
    )
    companies = None
    if args.companies:
        companies = [c.strip() for c in args.companies.split(",") if c.strip()]
    config = _job_config(args)
    if args.resume:
        report = registry.resume_fleet(args.question, companies, config=config)
    else:
        report = registry.query_fleet(args.question, companies, config=config)
    from repro.jobs import CheckpointedOutcome

    for company, outcome in report.per_company():
        if outcome is None:
            print(f"{company:24s} PENDING")
            continue
        marker = (
            " (restored)" if isinstance(outcome, CheckpointedOutcome) else ""
        )
        print(f"{company:24s} {outcome.verdict.value}{marker}")
    print(report.summary())
    if report.aborted and config.checkpoint_dir:
        print(
            f"fleet aborted; resume with: registry query --root {args.root} "
            f"--resume --checkpoint {config.checkpoint_dir} "
            f"{args.question!r}",
            file=sys.stderr,
        )
    if args.stats:
        # Job counters plus the pipeline-lifetime registry/store counters
        # (hits, shard loads, evictions) — disjoint by construction.
        pipeline.sync_resilience_metrics()
        stats = PipelineMetrics(queries=0)
        stats.merge(report.job.metrics)
        stats.merge(pipeline.metrics)
        print("\n--- pipeline metrics ---")
        print(stats.render())
    if args.json:
        from repro.store.atomic import atomic_write_json

        atomic_write_json(args.json, report.as_dict())
        print(f"wrote JSON results to {args.json}")
    pipeline.shutdown()
    return _job_exit_code(report.job)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServerError
    from repro.server import PolicyServer, ServerConfig

    try:
        config = ServerConfig(
            root=args.root,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            shed_above=args.shed_above,
            default_deadline=args.deadline,
            max_warm=args.max_warm,
            warm_on_start=args.warm,
            drain_grace=args.drain_grace,
            scrub_interval=(
                args.scrub_interval
                if args.scrub_interval and args.scrub_interval > 0
                else None
            ),
        )
    except ValueError as exc:
        raise ReproError(f"invalid serve options: {exc}") from None
    pipeline = PolicyPipeline(llm=_build_provider_stack(args))
    _apply_backend(pipeline, args)
    server = PolicyServer(config, pipeline=pipeline)
    try:
        server.start()
    except ServerError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 7
    host, port = server.address
    print(f"serving {len(server.companies())} companies on http://{host}:{port}")
    print(
        "endpoints: /query /fleet /healthz /readyz /stats /reload /drain "
        "(SIGINT/SIGTERM drains gracefully)"
    )
    report = server.serve_until_drained()
    print(report.summary())
    if args.stats:
        print("\n--- pipeline metrics ---")
        server.pipeline.sync_resilience_metrics()
        stats = server.metrics
        stats.merge(server.pipeline.metrics)
        print(stats.render())
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.integrity import plan_repairs, run_fsck

    report = run_fsck(args.path)
    print(report.summary())
    plan = plan_repairs(report)
    if not args.repair:
        if not plan.empty:
            print()
            print(plan.summary())
            print("\nrun again with --repair to apply this plan")
        if args.json:
            from repro.store.atomic import atomic_write_json

            atomic_write_json(
                args.json, {"report": report.as_dict(), "plan": plan.as_dict()}
            )
            print(f"wrote JSON report to {args.json}")
        return 0 if report.clean else 9

    had_unrepairable = bool(plan.unrepairable)
    if not plan.empty:
        plan.apply()
        print()
        print(plan.summary())
    after = run_fsck(args.path)
    print()
    print("post-repair " + after.summary())
    if args.json:
        from repro.store.atomic import atomic_write_json

        atomic_write_json(
            args.json,
            {
                "report": report.as_dict(),
                "plan": plan.as_dict(),
                "post_repair": after.as_dict(),
            },
        )
        print(f"wrote JSON report to {args.json}")
    return 0 if after.clean and not had_unrepairable else 9


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from repro.jobs import JobRunner

    pipeline = PolicyPipeline(llm=_build_provider_stack(args))
    _apply_query_timeout(pipeline, args.timeout)
    _apply_backend(pipeline, args)
    model = pipeline.process(_read_policy(args.policy))
    questions = _read_questions(args.queries)
    runner = JobRunner(pipeline, model, _job_config(args))
    result = runner.run(questions)
    pipeline.shutdown()
    _render_job_result(result, args, pipeline=pipeline)
    return _job_exit_code(result)


def _cmd_batch_resume(args: argparse.Namespace) -> int:
    from repro.jobs import JobRunner

    pipeline = PolicyPipeline(llm=_build_provider_stack(args))
    _apply_query_timeout(pipeline, args.timeout)
    _apply_backend(pipeline, args)
    model = pipeline.process(_read_policy(args.policy))
    runner = JobRunner(pipeline, model, _job_config(args))
    result = runner.resume()
    pipeline.shutdown()
    _render_job_result(result, args, pipeline=pipeline)
    return _job_exit_code(result)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-policy",
        description="Privacy-policy extraction and verification (HotNets '25 reproduction)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("process", help="run Phases 1+2 and print statistics")
    p.add_argument("policy", help="path to a policy text file")
    p.add_argument("--artifacts", help="directory for JSON pipeline artifacts")
    p.set_defaults(func=_cmd_process)

    p = sub.add_parser(
        "query",
        help="verify a data-practice question",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "policy",
        nargs="?",
        help="path to a policy text file (omit with --from-snapshot)",
    )
    p.add_argument(
        "question",
        nargs="?",
        help='declarative query, e.g. "Acme collects the email."',
    )
    p.add_argument(
        "--from-snapshot",
        metavar="DIR",
        help="warm-start the model from a snapshot store instead of "
        "re-extracting from policy text",
    )
    p.add_argument("--smtlib", action="store_true", help="print the generated SMT-LIB")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage wall times, cache counters, and solver totals",
    )
    p.add_argument(
        "--resilient",
        action="store_true",
        help="wrap the LLM in retry + circuit-breaker layers and escalate "
        "budget-limited UNKNOWN verdicts through the degradation ladder",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per LLM completion with --resilient (default: 2)",
    )
    p.add_argument(
        "--ladder",
        default="4,16",
        help="comma-separated budget-escalation multipliers for the "
        "degradation ladder with --resilient (default: 4,16)",
    )
    p.add_argument(
        "--no-decompose",
        action="store_true",
        help="disable the per-data-branch decomposition rung of the ladder",
    )
    p.add_argument(
        "--certify",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="independently re-check the solver's verdict (model evaluation "
        "for SAT, proof replay for UNSAT); a failed certificate exits 5 "
        "(default: on)",
    )
    p.add_argument(
        "--quarantine",
        metavar="DIR",
        help="directory for formulas whose verdict failed certification "
        "(written as cert-<digest>/formula.smt2 + report.json)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="S",
        help="per-query wall-clock ceiling in seconds, composed onto the "
        "solver deadline as min(configured, S); default unchanged",
    )
    _add_backend_options(p)
    _add_provider_options(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("audit", help="contradiction and coverage report")
    p.add_argument("policy", help="path to a policy text file")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("diff", help="compare two policy versions")
    p.add_argument("old", help="path to the old version")
    p.add_argument("new", help="path to the new version")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "scenarios", help="run a JSON compliance-scenario suite against a policy"
    )
    p.add_argument("policy", help="path to a policy text file")
    p.add_argument("suite", help="path to a JSON scenario suite")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("corpus", help="emit a bundled synthetic policy")
    p.add_argument("name", choices=["tiktak", "metabook", "meditrack"])
    p.add_argument("--out", help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_corpus)

    p = sub.add_parser(
        "snapshot", help="crash-safe model persistence (save / load / audit)"
    )
    snap = p.add_subparsers(dest="snapshot_command", required=True)

    s = snap.add_parser(
        "save", help="process a policy and commit it as a verified snapshot"
    )
    s.add_argument("policy", help="path to a policy text file")
    s.add_argument("--store", required=True, help="snapshot store directory")
    s.add_argument(
        "--journaled",
        action="store_true",
        help="bracket the commit with the write-ahead update journal",
    )
    s.set_defaults(func=_cmd_snapshot_save)

    s = snap.add_parser(
        "load", help="load the newest hash-valid snapshot and print its stats"
    )
    s.add_argument("--store", required=True, help="snapshot store directory")
    s.set_defaults(func=_cmd_snapshot_load)

    s = snap.add_parser(
        "audit",
        help="verify structural invariants (and, with --policy, "
        "incremental-vs-rebuild parity)",
    )
    s.add_argument("--store", required=True, help="snapshot store directory")
    s.add_argument(
        "--policy",
        help="policy text to rebuild from for the parity audit",
    )
    s.add_argument(
        "--heal",
        action="store_true",
        help="on parity failure, overwrite derived state with the rebuild "
        "and recommit (requires --policy)",
    )
    s.set_defaults(func=_cmd_snapshot_audit)

    p = sub.add_parser(
        "registry",
        help="sharded multi-policy registry (mint / list / query a fleet)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    reg = p.add_subparsers(dest="registry_command", required=True)

    s = reg.add_parser(
        "mint",
        help="deterministically generate, process, and register a fleet "
        "of synthetic policies",
    )
    s.add_argument("--root", required=True, help="registry directory")
    s.add_argument(
        "--count", type=int, required=True, metavar="N", help="companies to mint"
    )
    s.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    s.add_argument(
        "--sectors",
        metavar="A,B,...",
        help="comma-separated sector rotation (default: all sectors)",
    )
    s.add_argument(
        "--words",
        metavar="N,N,...",
        help="comma-separated target word counts, rotated per company "
        "(default: 340,420,520)",
    )
    s.add_argument(
        "--exception-pairs",
        type=int,
        metavar="N",
        help="injected general-rule/exception pairs per policy (default: 3)",
    )
    s.add_argument(
        "--incoherent-fraction",
        type=float,
        metavar="F",
        help="fraction of exception pairs that genuinely contradict "
        "(default: 0.34)",
    )
    s.set_defaults(func=_cmd_registry_mint)

    s = reg.add_parser("list", help="list registered companies and shards")
    s.add_argument("--root", required=True, help="registry directory")
    s.set_defaults(func=_cmd_registry_list)

    s = reg.add_parser(
        "query",
        help="fan one question across the fleet under job supervision",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    s.add_argument("--root", required=True, help="registry directory")
    s.add_argument(
        "question",
        help='declarative query, e.g. "The company shares the email '
        'address with advertisers."',
    )
    s.add_argument(
        "--companies",
        metavar="A,B,...",
        help="comma-separated subset (default: every registered company)",
    )
    s.add_argument(
        "--max-warm",
        type=int,
        default=32,
        metavar="N",
        help="LRU bound on warm models (default: 32)",
    )
    s.add_argument(
        "--resume",
        action="store_true",
        help="resume a checkpointed fleet instead of starting fresh "
        "(requires --checkpoint)",
    )
    _add_batch_options(s)
    s.set_defaults(func=_cmd_registry_query)

    p = sub.add_parser(
        "serve",
        help="resident serving daemon: warm fleet queries over HTTP with "
        "graceful drain, hot reload, and load shedding",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--root", required=True, help="registry directory to serve")
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port; 0 picks an ephemeral port (default: 8321)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=8,
        metavar="N",
        help="admission bound: at most N requests executing at once; "
        "excess requests wait, bounded by their deadline (default: 8)",
    )
    p.add_argument(
        "--shed-above",
        type=int,
        metavar="N",
        help="load-shed watermark: an in-flight depth >= N sheds the "
        "request as a fast 503 instead of queueing it (must be <= "
        "--max-pending; default: off)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        metavar="S",
        help="per-request wall-clock deadline; clients may tighten it, "
        "never loosen it, and the remainder tightens the solver budget "
        "(default: 10)",
    )
    p.add_argument(
        "--max-warm",
        type=int,
        default=32,
        metavar="N",
        help="LRU bound on warm models per epoch (default: 32)",
    )
    p.add_argument(
        "--warm",
        type=int,
        default=-1,
        metavar="N",
        help="companies to pre-load before ready and before each reload "
        "swap: -1 all, 0 none, N first N (default: -1)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds a graceful drain waits for in-flight requests "
        "(default: 30)",
    )
    p.add_argument(
        "--scrub-interval",
        type=float,
        metavar="S",
        help="background-scrubber tick interval in seconds: one snapshot "
        "hash-verified per tick while the queue is idle, damage surfaced "
        "in /stats; <= 0 or omitted disables scrubbing (default: off)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print merged pipeline metrics after the drain",
    )
    _add_backend_options(p)
    _add_provider_options(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fsck",
        help="unified integrity check over every durable artifact: "
        "stores, registry, checkpoints, cassettes, cert quarantines "
        "(--repair heals what the formats' own recovery can heal)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "path",
        help="what to scan: a registry root, a snapshot store, a "
        "checkpoint directory, a cassette file, a cert-quarantine "
        "directory, or any directory containing a mix of them",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="apply the deterministic repair plan after scanning: "
        "quarantine corrupt snapshots, republish survivors, truncate "
        "torn journal tails, compact damaged cassettes, reconcile the "
        "registry; exits 0 only when the re-scan is clean and nothing "
        "was unrepairable",
    )
    p.add_argument(
        "--json",
        metavar="FILE",
        help="also write the scan report (and repair plan) as JSON",
    )
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser(
        "batch",
        help="supervised batch jobs (run / resume with checkpointing)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    batch = p.add_subparsers(dest="batch_command", required=True)

    s = batch.add_parser(
        "run",
        help="run a query suite under supervision (watchdog, admission "
        "control, graceful drain, checkpointing)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    s.add_argument("policy", help="path to a policy text file")
    s.add_argument(
        "queries",
        help="path to a queries file (one question per line, # comments)",
    )
    _add_batch_options(s, checkpoint_required=False)
    s.set_defaults(func=_cmd_batch_run)

    s = batch.add_parser(
        "resume",
        help="resume a checkpointed job: restore committed verdicts, "
        "re-execute only pending queries",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    s.add_argument("policy", help="path to the policy text file of the job")
    _add_batch_options(s, checkpoint_required=True)
    s.set_defaults(func=_cmd_batch_resume)

    return parser


def _normalize_query_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Resolve the optional ``policy`` positional for ``query``.

    With ``--from-snapshot`` the policy file is omitted, so a lone
    positional is the question: ``query --from-snapshot DIR "Q"``.
    """
    if getattr(args, "command", None) != "query":
        return
    if args.from_snapshot and args.question is None:
        args.policy, args.question = None, args.policy
    if args.question is None:
        parser.error("query requires a question")
    if args.from_snapshot and args.policy:
        parser.error("give either a policy file or --from-snapshot, not both")
    if not args.from_snapshot and not args.policy:
        parser.error("query requires a policy file (or --from-snapshot DIR)")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _normalize_query_args(parser, args)
    try:
        return args.func(args)
    except SnapshotError as exc:
        print(f"snapshot error: {exc}", file=sys.stderr)
        reports = getattr(exc, "reports", ())
        for report in reports:
            print(report.summary(), file=sys.stderr)
        return 4
    except ProviderError as exc:
        print(f"provider error: {exc}", file=sys.stderr)
        return 8
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
