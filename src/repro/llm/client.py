"""LLM client protocol, caching wrapper, and usage accounting.

The protocol is string-in/string-out, matching how the paper's pipeline
talks to GPT-4o-mini.  A production deployment would implement
:class:`LLMClient` with an HTTP API call; this repository ships
:class:`repro.llm.simulated.SimulatedLLM` as the offline backend.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable


@runtime_checkable
class LLMClient(Protocol):
    """Anything that can complete a rendered prompt."""

    def complete(self, prompt: str) -> str:
        """Return the model completion for ``prompt``."""
        ...


@dataclass(slots=True)
class UsageStats:
    """Token/call accounting, mirroring API usage reporting.

    Tokens are approximated as whitespace-separated words; the point is to
    expose the *relative* cost of pipeline stages (segment extraction
    dominates), not to bill anyone.
    """

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cache_hits: int = 0
    retries: int = 0  # failed attempts that were retried
    retry_giveups: int = 0  # completions abandoned after the retry budget
    retry_after_honored: int = 0  # retries that slept on a server-advised hint
    breaker_opens: int = 0  # closed/half-open -> open transitions
    breaker_short_circuits: int = 0  # calls rejected without reaching the backend
    provider_calls: int = 0  # completions served by a remote HTTP provider
    provider_rate_limited: int = 0  # 429 rejections the provider surfaced
    cassette_records: int = 0  # prompt->completion pairs appended to a cassette
    cassette_replays: int = 0  # completions served from a cassette
    cassette_misses: int = 0  # replay lookups the cassette could not serve
    faults_injected: int = 0  # deterministic faults raised by ProfiledLLM
    calls_by_task: dict[str, int] = field(default_factory=dict)

    def record(self, prompt: str, completion: str, task: str) -> None:
        self.calls += 1
        self.prompt_tokens += len(prompt.split())
        self.completion_tokens += len(completion.split())
        self.calls_by_task[task] = self.calls_by_task.get(task, 0) + 1

    def merge(self, other: "UsageStats") -> None:
        """Fold ``other``'s counters into this instance.

        Used by :func:`repro.providers.introspect.llm_stack_state` to
        aggregate the distinct :class:`UsageStats` objects a composed
        wrapper stack may hold into one operational view.
        """
        self.calls += other.calls
        self.prompt_tokens += other.prompt_tokens
        self.completion_tokens += other.completion_tokens
        self.cache_hits += other.cache_hits
        self.retries += other.retries
        self.retry_giveups += other.retry_giveups
        self.retry_after_honored += other.retry_after_honored
        self.breaker_opens += other.breaker_opens
        self.breaker_short_circuits += other.breaker_short_circuits
        self.provider_calls += other.provider_calls
        self.provider_rate_limited += other.provider_rate_limited
        self.cassette_records += other.cassette_records
        self.cassette_replays += other.cassette_replays
        self.cassette_misses += other.cassette_misses
        self.faults_injected += other.faults_injected
        for task, count in other.calls_by_task.items():
            self.calls_by_task[task] = self.calls_by_task.get(task, 0) + count

    def as_dict(self) -> dict[str, object]:
        return {
            "calls": self.calls,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "retry_giveups": self.retry_giveups,
            "retry_after_honored": self.retry_after_honored,
            "breaker_opens": self.breaker_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "provider_calls": self.provider_calls,
            "provider_rate_limited": self.provider_rate_limited,
            "cassette_records": self.cassette_records,
            "cassette_replays": self.cassette_replays,
            "cassette_misses": self.cassette_misses,
            "faults_injected": self.faults_injected,
            "calls_by_task": dict(self.calls_by_task),
        }


def prompt_fingerprint(prompt: str) -> str:
    """Stable content hash of a prompt, used as the cache key."""
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


class _InFlight:
    """A completion one thread owns and others wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: str | None = None
        self.error: BaseException | None = None


class CachedLLM:
    """Response cache around any :class:`LLMClient`.

    The paper caches extracted parameters per content-hashed segment so that
    policy updates only re-extract modified segments; this wrapper provides
    that behaviour at the completion level.  The cache can optionally be
    persisted to a JSON file for cross-run reuse.

    The wrapper is thread-safe: cache reads/writes and usage accounting are
    lock-guarded, and concurrent requests for the *same* prompt are
    deduplicated — one thread calls the inner client while the rest block on
    the in-flight entry and count as cache hits, so an identical prompt
    never reaches the backend twice.
    """

    def __init__(
        self,
        inner: LLMClient,
        *,
        cache_path: str | Path | None = None,
    ) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self._cache: dict[str, str] = {}
        self._in_flight: dict[str, _InFlight] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self.stats = UsageStats()
        if self._cache_path and self._cache_path.exists():
            self._cache = self._load_persisted(self._cache_path)

    @staticmethod
    def _load_persisted(path: Path) -> dict[str, str]:
        """Load a persisted cache, tolerating corrupt or truncated files.

        A cache is an optimization: a file that cannot be parsed (killed
        mid-write by a pre-atomic-flush crash, disk corruption, concurrent
        clobbering) must degrade to a cold start, never fail construction.
        """
        try:
            loaded = json.loads(path.read_text("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"ignoring unreadable LLM cache {path}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return {}
        if not isinstance(loaded, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in loaded.items()
        ):
            warnings.warn(
                f"ignoring malformed LLM cache {path}: expected a JSON object "
                "of string completions",
                RuntimeWarning,
                stacklevel=3,
            )
            return {}
        return loaded

    def complete(self, prompt: str) -> str:
        key = prompt_fingerprint(prompt)
        with self._lock:
            if key in self._cache:
                self.stats.cache_hits += 1
                return self._cache[key]
            pending = self._in_flight.get(key)
            if pending is None:
                pending = self._in_flight[key] = _InFlight()
                owner = True
            else:
                owner = False
        if not owner:
            pending.event.wait()
            if pending.error is not None:
                raise pending.error
            with self._lock:
                self.stats.cache_hits += 1
            return pending.value  # type: ignore[return-value]

        try:
            completion = self._inner.complete(prompt)
        except BaseException as exc:
            pending.error = exc
            with self._lock:
                self._in_flight.pop(key, None)
            pending.event.set()
            raise

        from repro.llm.prompts import task_name  # avoid import cycle at load

        try:
            task = task_name(prompt)
        except Exception:  # noqa: BLE001 - accounting must never fail a call
            task = "unknown"
        pending.value = completion
        with self._lock:
            self.stats.record(prompt, completion, task)
            self._cache[key] = completion
            self._in_flight.pop(key, None)
        pending.event.set()
        return completion

    def flush(self) -> None:
        """Persist the cache if a path was configured.

        The write is atomic: the payload goes to a temporary file in the
        destination directory and is moved into place with ``os.replace``,
        so a crash mid-flush leaves either the old cache or the new one,
        never a truncated hybrid.
        """
        if not self._cache_path:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            payload = json.dumps(self._cache, indent=0, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=self._cache_path.name + ".", dir=self._cache_path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._cache_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)
