"""Deterministic rule-based backend implementing the LLM protocol.

``SimulatedLLM.complete`` receives exactly the prompt strings a real model
would receive (rendered by :mod:`repro.llm.prompts`), dispatches on the
machine-readable task header, runs a rule-based handler built on
:mod:`repro.nlp` plus the world-knowledge tables in
:mod:`repro.llm.knowledge`, and returns a JSON completion of the documented
shape.  Swapping in a live API client requires no pipeline changes.
"""

from __future__ import annotations

import json
import re

from repro.errors import LLMError
from repro.llm import knowledge
from repro.llm.prompts import extract_payload, task_name
from repro.nlp.chunker import expand_coordination, is_data_phrase
from repro.nlp.lexicon import (
    COLLECTION_VERBS,
    ENTITY_TERMS,
    SHARING_VERBS,
)
from repro.nlp.morphology import singularize_noun, singularize_phrase
from repro.nlp.patterns import find_main_verbs, split_conditions
from repro.nlp.tokenizer import sentences, tokenize

_MAX_ITEMS_PER_VERB = 10

_NEGATION_RE = re.compile(
    r"\b(?:do(?:es)? not|will not|won'?t|never|shall not|don'?t)\b", re.IGNORECASE
)
# "not limited to" is boilerplate, not a denial.
_FALSE_NEGATION_RE = re.compile(r"\bnot limited to\b", re.IGNORECASE)

_LEADING_PARTICLES = frozenset(
    {
        "to",
        "that",
        "which",
        "who",
        "also",
        "then",
        "otherwise",
        "may",
        "will",
        "and",
        "or",
        "of",
        "the",
        "a",
        "an",
        "some",
        "all",
        "following",
        "your",
        "my",
        "their",
        "his",
        "her",
        "its",
        "our",
        "certain",
        "such",
        "other",
        "any",
        "as",
        "through",
        "via",
        "within",
        "using",
        "including",
    }
)

_COMPANY_PATTERNS = (
    re.compile(r"([A-Z][A-Za-z0-9&]+(?:\s+[A-Z][A-Za-z0-9&]+)*)\s+Privacy Policy"),
    re.compile(r'([A-Z][A-Za-z0-9&]+)\s*\(\s*[\"“](?:we|us|our)[\"”]'),
    re.compile(r"(?:Welcome to|provided by|operated by|offered by)\s+([A-Z][A-Za-z0-9&]+)"),
    re.compile(r"([A-Z][A-Za-z0-9&]+)(?:,)?\s+(?:Inc|Ltd|LLC|Corp)\b"),
)

_GENERIC_CAPITALS = frozenset(
    {
        "This",
        "The",
        "We",
        "Our",
        "Privacy",
        "Policy",
        "Last",
        "Updated",
        "Effective",
        "Date",
        "Welcome",
        "Please",
        "If",
        "When",
        "You",
        "Your",
    }
)


class SimulatedLLM:
    """Offline completion engine for the tasks in :mod:`repro.llm.prompts`."""

    def __init__(self) -> None:
        self._handlers = {
            "extract_company_name": self._handle_company_name,
            "resolve_coreferences": self._handle_coreferences,
            "extract_parameters": self._handle_extract_parameters,
            "taxonomy_layer": self._handle_taxonomy_layer,
            "semantic_equivalence": self._handle_equivalence,
        }

    def complete(self, prompt: str) -> str:
        task = task_name(prompt)
        handler = self._handlers.get(task)
        if handler is None:
            raise LLMError(f"simulated backend has no handler for task {task!r}")
        return handler(prompt)

    # ------------------------------------------------------------------
    # Company name
    # ------------------------------------------------------------------

    def _handle_company_name(self, prompt: str) -> str:
        text = extract_payload(prompt, "TEXT")
        for pattern in _COMPANY_PATTERNS:
            match = pattern.search(text)
            if match:
                return json.dumps({"company": match.group(1).strip()})
        # Fallback: first distinctive capitalized token.
        for token in tokenize(text):
            if (
                token.is_word
                and token.text[0].isupper()
                and token.text not in _GENERIC_CAPITALS
                and len(token.text) > 2
            ):
                return json.dumps({"company": token.text})
        return json.dumps({"company": "the company"})

    # ------------------------------------------------------------------
    # Coreference resolution
    # ------------------------------------------------------------------

    def _handle_coreferences(self, prompt: str) -> str:
        company = _header_value(prompt, "Company name: ")
        text = extract_payload(prompt, "TEXT")
        resolved = resolve_first_person(text, company)
        return json.dumps({"resolved": resolved})

    # ------------------------------------------------------------------
    # Semantic parameter extraction
    # ------------------------------------------------------------------

    def _handle_extract_parameters(self, prompt: str) -> str:
        company = _header_value(prompt, "The policy belongs to the company: ")
        statement = extract_payload(prompt, "STATEMENT")
        practices = extract_practices(statement, company)
        return json.dumps({"practices": practices})

    # ------------------------------------------------------------------
    # Chain-of-Layer taxonomy induction
    # ------------------------------------------------------------------

    def _handle_taxonomy_layer(self, prompt: str) -> str:
        root = _header_value(prompt, "Root concept: ")
        existing = [
            line.strip()
            for line in extract_payload(prompt, "EXISTING").splitlines()
            if line.strip()
        ]
        remaining = [
            line.strip()
            for line in extract_payload(prompt, "REMAINING").splitlines()
            if line.strip()
        ]
        assignments = _taxonomy_assignments(root, existing, remaining)
        return json.dumps(
            {"assignments": [{"term": t, "parent": p} for t, p in assignments]}
        )

    # ------------------------------------------------------------------
    # Semantic equivalence
    # ------------------------------------------------------------------

    def _handle_equivalence(self, prompt: str) -> str:
        term_a = extract_payload(prompt, "TERM_A")
        term_b = extract_payload(prompt, "TERM_B")
        return json.dumps({"equivalent": terms_equivalent(term_a, term_b)})


# ---------------------------------------------------------------------------
# Handler implementations (module-level so they are independently testable)
# ---------------------------------------------------------------------------


def _header_value(prompt: str, prefix: str) -> str:
    for line in prompt.splitlines():
        if line.startswith(prefix):
            return line[len(prefix) :].strip()
    raise LLMError(f"prompt is missing header {prefix!r}")


def resolve_first_person(text: str, company: str) -> str:
    """Replace we/us/our (case-sensitively lower/title) with the company."""
    possessive = company + "'s"
    text = re.sub(r"\b[Oo]urs\b", possessive, text)
    text = re.sub(r"\b[Oo]ur\b", possessive, text)
    text = re.sub(r"\b[Ww]e\b", company, text)
    text = re.sub(r"\b[Uu]s\b", company, text)
    return text


def _strip_leading_particles(text: str) -> str:
    words = text.split()
    while words and words[0].lower() in _LEADING_PARTICLES:
        words = words[1:]
    return " ".join(words)


def _sender_from_region(region: str, company: str) -> str | None:
    """Resolve the acting subject named in ``region``.

    When several candidates appear ("... your photos, and MetaBook
    collects ..."), the one closest to the verb — i.e. the last mention —
    is the grammatical subject.
    """
    lowered = region.lower()
    candidates: list[tuple[int, str]] = []
    for match in re.finditer(r"\b(?:you|your|users?)\b", lowered):
        candidates.append((match.start(), "user"))
    for match in re.finditer(re.escape(company.lower()), lowered):
        candidates.append((match.start(), company))
    for entity in ENTITY_TERMS:
        for match in re.finditer(r"\b" + re.escape(entity) + r"\b", lowered):
            candidates.append((match.start() + len(entity) - 1, entity))
    if not candidates:
        return None
    # Last mention wins; at the same end position the longer phrase wins
    # ("content moderators" over "moderators"), with an alphabetical
    # tiebreak so the result never depends on set iteration order.
    return max(candidates, key=lambda c: (c[0], len(c[1]), c[1]))[1]


_RECEIVER_SPLIT_RE = re.compile(r"\b(?:with|to)\s+", re.IGNORECASE)
_FROM_SOURCE_RE = re.compile(r"\bfrom\s+((?:[\w'’-]+\s*){1,5})", re.IGNORECASE)

# Trailing adverbials that modify the clause, not the object noun phrase.
_TRAILING_ADVERBIAL_RE = re.compile(
    r"\s+(?:directly\b.*|each time\b.*|whenever\b.*|at any time\b.*"
    r"|using encryption\b.*|on servers\b.*|through your account settings\b.*"
    r"|by contacting\b.*|in transit\b.*)$",
    re.IGNORECASE,
)

# Purpose infinitives after non-sharing verbs: "use X to personalize ...".
_PURPOSE_INFINITIVE_RE = re.compile(
    r"\s+to\s+(?!us\b|you\b|them\b|the\b|your\b)[a-z][\w'’-]*\b.*$",
    re.IGNORECASE,
)


def _receiver_in_region(region: str, company: str) -> tuple[str | None, str]:
    """Receiver named in a verb's own object region.

    Returns (receiver, data_region): the entity found in the with/to
    complement, and the region truncated so data items are taken only from
    before the complement.
    """
    split = _RECEIVER_SPLIT_RE.split(region, maxsplit=1)
    if len(split) != 2:
        return None, region
    data_region, complement = split
    lowered = complement.lower()
    # Longest first, ties broken alphabetically: ENTITY_TERMS is a set, so
    # a bare key=len would leave equal-length ties to hash-randomized
    # iteration order and extraction would differ across processes.
    for entity in sorted(ENTITY_TERMS, key=lambda e: (-len(e), e)):
        if re.search(r"\b" + re.escape(entity) + r"\b", lowered):
            return entity, data_region
    if re.search(r"\b(?:you|your|users?)\b", lowered):
        return "user", data_region
    if company.lower() in lowered:
        return company, data_region
    # Unknown receiver phrase: keep the first noun phrase of the complement.
    candidate = _strip_leading_particles(complement.strip(" ,"))
    first_np = candidate.split(",")[0].strip()
    if first_np and len(first_np.split()) <= 5:
        return first_np.lower(), data_region
    return None, region


def _object_items(region: str, company: str) -> list[str]:
    """Coordinated object noun phrases, cleaned and singularized."""
    region = _strip_leading_particles(region.strip(" ,"))
    if not region:
        return []
    items = expand_coordination(region)
    cleaned: list[str] = []
    for item in items:
        item = _strip_leading_particles(item)
        if not item:
            continue
        if len(item.split()) > 8:
            # Over-long captures are clause fragments, not noun phrases;
            # keep the trailing NP which carries the head noun.
            item = _strip_leading_particles(" ".join(item.split()[-4:]))
            if not item:
                continue
        cleaned.append(item)
        if len(cleaned) >= _MAX_ITEMS_PER_VERB:
            break
    return cleaned


def _practice(
    sender: str,
    receiver: str | None,
    data_type: str,
    action: str,
    condition: str | None,
    permission: bool,
) -> dict[str, object]:
    return {
        "sender": sender,
        "receiver": receiver,
        "subject": "user",
        "data_type": singularize_phrase(data_type),
        "action": action,
        "condition": condition,
        "permission": permission,
    }


def _extract_from_clause(
    clause: str, company: str, condition: str | None, permission: bool
) -> list[dict[str, object]]:
    """Extract one practice per (verb, object item) from a single clause."""
    verbs = find_main_verbs(clause)
    if not verbs:
        return _enumeration_fallback(clause, condition)
    tokens = tokenize(clause)

    # Character spans delimited by verb token positions.
    boundaries = [i for i, _ in verbs]
    practices: list[dict[str, object]] = []
    sender_carry: str | None = None
    object_regions: list[str] = []
    for pos, (tok_index, _base) in enumerate(verbs):
        start_char = tokens[tok_index].end
        if pos + 1 < len(verbs):
            end_char = tokens[verbs[pos + 1][0]].start
        else:
            end_char = len(clause)
        object_regions.append(clause[start_char:end_char])

    # Coordinated verbs share the next non-empty object region.
    for pos in range(len(object_regions) - 1, -1, -1):
        stripped = object_regions[pos].strip(" ,")
        if stripped.lower() in {"", "and", "or", "and collect", ","}:
            if stripped.lower() in {"", "and", "or", ","} and pos + 1 < len(
                object_regions
            ):
                object_regions[pos] = object_regions[pos + 1]

    for pos, (tok_index, base) in enumerate(verbs):
        prev_end = tokens[boundaries[pos - 1]].end if pos > 0 else 0
        subject_region = clause[prev_end : tokens[tok_index].start]
        # A region that trails off in a coordinator ("..., or otherwise")
        # belongs to the previous verb's object; the verbs share a subject.
        coordinated = pos > 0 and subject_region.rstrip().lower().endswith(
            ("or", "and", "otherwise", ",")
        )
        if coordinated and sender_carry is not None:
            sender = sender_carry
        else:
            sender = _sender_from_region(subject_region, company) or sender_carry
        if sender is None:
            sender = company
        sender_carry = sender

        region = object_regions[pos]
        # "request that <clause>": the complement is an embedded clause, not
        # an object noun phrase — extract from it recursively.
        embedded = region.strip(" ,")
        if embedded.lower().startswith("that ") and pos == len(verbs) - 1:
            practices.extend(
                _extract_from_clause(embedded[5:], company, condition, permission)
            )
            continue
        receiver: str | None = None
        if base in SHARING_VERBS:
            # Receiver complement first ("... directly to us"), then drop
            # clause-level adverbials from the data region.
            receiver, region = _receiver_in_region(region, company)
            region = _TRAILING_ADVERBIAL_RE.sub("", region)
        else:
            region = _TRAILING_ADVERBIAL_RE.sub("", region)
            region = _PURPOSE_INFINITIVE_RE.sub("", region)
        if base == "receive":
            source = _FROM_SOURCE_RE.search(region)
            if source:
                source_entity = _sender_from_region(source.group(1), company)
                if source_entity:
                    receiver = sender
                    sender = source_entity
                region = region[: source.start()]
        elif base in COLLECTION_VERBS:
            # "collect X from your device / from partners": the from-phrase
            # names the source, not the data.
            source = _FROM_SOURCE_RE.search(region)
            if source:
                region = region[: source.start()]

        for item in _object_items(region, company):
            practices.append(
                _practice(sender, receiver, item, base, condition, permission)
            )
    return _dedupe(practices)


def _enumeration_fallback(
    clause: str, condition: str | None
) -> list[dict[str, object]]:
    """Verbless enumeration segments become user-provide practices.

    Policies list data types under a heading ("Account and profile
    information, such as name, age, ...").  The paper expands these into one
    [user]-provide->[item] edge per item.
    """
    items = expand_coordination(clause)
    practices = []
    for item in items:
        if is_data_phrase(item):
            practices.append(_practice("user", None, item, "provide", condition, True))
    return practices


def extract_practices(statement: str, company: str) -> list[dict[str, object]]:
    """Full extraction: every data practice in ``statement``.

    Conditional lead-in clauses that themselves describe user actions ("When
    you create an account, ...") contribute practices of their own, exactly
    as the paper's Table 2 shows.
    """
    all_practices: list[dict[str, object]] = []
    for sentence in sentences(statement):
        split = split_conditions(sentence)
        negated = bool(_NEGATION_RE.search(split.main)) and not _FALSE_NEGATION_RE.search(
            split.main
        )
        condition_parts = [c for c in split.conditions + split.purposes if c]
        condition = " AND ".join(condition_parts) if condition_parts else None
        all_practices.extend(
            _extract_from_clause(split.main, company, condition, not negated)
        )
        for clause in split.conditions:
            clause_body = re.sub(
                r"^(?:if|when|whenever|where|unless|once|after|before|upon)\s+",
                "",
                clause,
                flags=re.IGNORECASE,
            )
            all_practices.extend(
                _extract_from_clause(clause_body, company, None, True)
            )
    return _dedupe(all_practices)


def _dedupe(practices: list[dict[str, object]]) -> list[dict[str, object]]:
    seen: set[tuple[object, ...]] = set()
    unique = []
    for p in practices:
        key = (p["sender"], p["receiver"], p["data_type"], p["action"], p["condition"], p["permission"])
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


# ---------------------------------------------------------------------------
# Taxonomy induction
# ---------------------------------------------------------------------------


def _head_of(term: str) -> str:
    words = term.lower().split()
    if not words:
        return term
    if "of" in words and words.index("of") > 0:
        return singularize_noun(words[words.index("of") - 1])
    return singularize_noun(words[-1])


def _seed_category(term: str, root: str) -> str | None:
    """Which seed category (for the given root domain) contains ``term``?

    Exact and two-word-tail matches take priority over bare head-noun
    matches so that "ip address" lands under technical data even though
    "address" alone is a personal-data member.
    """
    tables = (
        knowledge.SEED_ENTITY_SUBSUMPTION
        if "entity" in root.lower()
        else knowledge.SEED_SUBSUMPTION
    )
    lowered = singularize_phrase(term.lower())
    head = _head_of(term)
    tail2 = " ".join(lowered.split()[-2:])
    for category, members in tables.items():
        if lowered in members or tail2 in members:
            return category
    for category, members in tables.items():
        if head in members:
            return category
    return None


def _suffix_parent(term: str, candidates: set[str]) -> str | None:
    """Most specific candidate that ``term`` lexically specializes.

    Three specialization patterns count: a strict suffix ("gps location
    data" under "location data"), added modifiers with the same head
    ("precise location information" under "location information"), and a
    neutral head suffix ("email address" under "email").
    """
    lowered = term.lower()
    words = lowered.split()
    stripped = _strip_neutral_suffix(lowered)
    best: str | None = None
    for cand in candidates:
        if cand == lowered:
            continue
        cwords = cand.split()
        if not cwords or len(cwords) >= len(words):
            continue
        same_head = _head_of(cand) == _head_of(lowered)
        if (
            lowered.endswith(" " + cand)
            or (same_head and set(cwords) < set(words))
            or (stripped != lowered and stripped == cand)
        ):
            # Longest candidate wins; alphabetical tiebreak keeps the
            # choice independent of set iteration (hash) order.
            if best is None or (len(cand), cand) > (len(best), best):
                best = cand
    return best


def _taxonomy_assignments(
    root: str, existing: list[str], remaining: list[str]
) -> list[tuple[str, str]]:
    """One Chain-of-Layer step: assign direct children of existing nodes.

    Terms whose natural parent is itself still unassigned are deferred to a
    later layer, which is what makes the construction layer-by-layer.
    """
    existing_set = {e.lower() for e in existing}
    remaining_set = {r.lower() for r in remaining}
    assignments: list[tuple[str, str]] = []
    for term in remaining:
        lowered = term.lower()
        parent_in_remaining = _suffix_parent(lowered, remaining_set)
        if parent_in_remaining:
            # Defer: the more specific parent must enter the taxonomy first.
            continue
        parent = _suffix_parent(lowered, existing_set)
        if parent is None:
            parent = _seed_category(term, root)
        if parent is None:
            parent = root
        assignments.append((term, parent))
    return assignments


# ---------------------------------------------------------------------------
# Equivalence
# ---------------------------------------------------------------------------


def _strip_neutral_suffix(term: str) -> str:
    words = term.split()
    while len(words) > 1 and singularize_noun(words[-1]) in {
        singularize_noun(s) for s in knowledge.NEUTRAL_SUFFIXES
    }:
        words = words[:-1]
    return " ".join(words)


def terms_equivalent(term_a: str, term_b: str) -> bool:
    """Privacy-context equivalence as an LLM judge would answer it."""
    a = singularize_phrase(term_a.lower().strip())
    b = singularize_phrase(term_b.lower().strip())
    if a == b:
        return True
    group_a = knowledge.synonym_set_of(a)
    if group_a and b in group_a:
        return True
    stripped_a = _strip_neutral_suffix(a)
    stripped_b = _strip_neutral_suffix(b)
    if stripped_a == stripped_b:
        return True
    group_sa = knowledge.synonym_set_of(stripped_a)
    if group_sa and stripped_b in group_sa:
        return True
    # Lenient subsumption-as-equivalence: same head noun and one modifier
    # set contains the other ("location information" ~ "precise location
    # information").  The paper's verification step is deliberately lenient
    # because false negatives hide policy statements from queries.  Bare
    # category nouns ("information", "data") are excluded: everything is a
    # kind of information, so the rule would otherwise collapse the space.
    if a in knowledge.NEUTRAL_SUFFIXES or b in knowledge.NEUTRAL_SUFFIXES:
        return False
    # Compare modulo neutral suffixes so "location information" matches
    # "precise location" the way "location" would.
    words_a, words_b = set(stripped_a.split()), set(stripped_b.split())
    if _head_of(stripped_a) == _head_of(stripped_b) and (
        words_a <= words_b or words_b <= words_a
    ):
        return True
    return False
