"""World knowledge tables for the simulated LLM.

A real LLM carries privacy-domain knowledge in its weights; the simulated
backend carries the equivalent in these curated tables: which broad category
a data/entity term belongs under (seeded from the OPP-115 category scheme
the paper references), and which terms are privacy-context synonyms.
"""

from __future__ import annotations

#: Category -> head nouns / phrases whose presence puts a term under it.
#: Mirrors the OPP-115 data-type scheme plus the dynamic categories the
#: paper's Chain-of-Layer runs discover (personal vs technical data, etc.).
SEED_SUBSUMPTION: dict[str, frozenset[str]] = {
    "personal data": frozenset(
        {
            "name",
            "age",
            "birthday",
            "birthdate",
            "gender",
            "username",
            "password",
            "email",
            "email address",
            "phone number",
            "address",
            "profile image",
            "profile",
            "biography",
            "photo",
            "image",
            "language",
            "contact",
            "contact information",
            "identity document",
            "government id",
            "credentials",
            "resume",
            "signature",
        }
    ),
    "technical data": frozenset(
        {
            "ip address",
            "device",
            "device model",
            "device identifier",
            "operating system",
            "browser",
            "browser type",
            "screen resolution",
            "time zone",
            "battery",
            "battery level",
            "network",
            "mobile carrier",
            "crash report",
            "diagnostic data",
            "performance data",
            "log",
            "log data",
            "cookie",
            "pixel",
            "beacon",
            "sdk",
            "user agent",
            "app version",
            "keystroke patterns",
            "sensor data",
            "metadata",
            "timestamp",
        }
    ),
    "financial data": frozenset(
        {
            "payment",
            "payment information",
            "card",
            "credit card",
            "credit card information",
            "truncated credit card information",
            "transaction",
            "purchase",
            "billing address",
            "bank account",
            "financial information",
            "financial transaction data",
            "order",
            "invoice",
        }
    ),
    "location data": frozenset(
        {
            "location",
            "location information",
            "gps",
            "gps location",
            "precise location",
            "approximate location",
            "coordinates",
            "geolocation",
            "region",
            "city",
            "country",
            "postal code",
            "zip code",
        }
    ),
    "biometric data": frozenset(
        {
            "faceprint",
            "voiceprint",
            "fingerprint",
            "biometric identifier",
            "biometric template",
            "facial recognition data",
            "face geometry",
            "voice recording",
            "iris scan",
            "neural network embedding",
            "embedding",
        }
    ),
    "usage data": frozenset(
        {
            "browsing history",
            "search history",
            "watch history",
            "viewing history",
            "interaction",
            "interaction data",
            "engagement",
            "engagement data",
            "clickstream",
            "usage information",
            "activity",
            "session",
            "preferences",
            "settings",
            "interests",
            "behavioral data",
        }
    ),
    "content data": frozenset(
        {
            "content",
            "video",
            "videos",
            "audio",
            "message",
            "messages",
            "comment",
            "comments",
            "post",
            "livestream",
            "attachment",
            "document",
            "clipboard content",
            "camera feature content",
            "voice-enabled features content",
            "photos and videos",
            "feedback",
            "survey responses",
        }
    ),
    "health data": frozenset(
        {
            "diagnosis",
            "diagnoses",
            "medication",
            "medications",
            "allergy",
            "allergies",
            "immunization record",
            "lab result",
            "insurance member id",
            "heart rate",
            "step count",
            "sleep pattern",
            "blood pressure reading",
            "appointment history",
            "prescription refill request",
            "telehealth session recording",
            "health information",
            "fitness data",
            "medical information",
        }
    ),
    "social data": frozenset(
        {
            "contacts",
            "contact list",
            "phone contacts",
            "friends",
            "followers",
            "connections",
            "social graph",
            "social media account information",
            "group membership",
            "invitation",
        }
    ),
}

#: Entity category -> member entity phrases; used when CoL builds the entity
#: hierarchy.
SEED_ENTITY_SUBSUMPTION: dict[str, frozenset[str]] = {
    "company": frozenset({"platform", "corporate group", "affiliates", "subsidiaries"}),
    "commercial partner": frozenset(
        {
            "advertisers",
            "advertiser",
            "advertising partners",
            "measurement partners",
            "marketing partners",
            "analytics providers",
            "analytics provider",
            "business partners",
            "trusted partners",
            "partners",
            "merchants",
            "sellers",
            "data brokers",
            "integrated partners",
            "api partners",
            "app developers",
            "developers",
            "social media platforms",
            "search engines",
        }
    ),
    "service provider": frozenset(
        {
            "service providers",
            "service provider",
            "vendors",
            "contractors",
            "payment processors",
            "payment service providers",
            "cloud providers",
            "hosting providers",
            "security vendors",
            "customer support providers",
            "delivery partners",
            "shipping providers",
            "content moderators",
            "moderators",
            "fraud prevention services",
            "identity verification services",
            "device manufacturers",
            "operating system providers",
            "mobile carriers",
            "internet service providers",
        }
    ),
    "legal authority": frozenset(
        {
            "law enforcement",
            "law enforcement agencies",
            "government authorities",
            "public authorities",
            "regulators",
            "courts",
            "tax authorities",
            "emergency services",
        }
    ),
    "professional advisor": frozenset(
        {
            "auditors",
            "legal advisors",
            "professional advisors",
            "insurers",
            "financial institutions",
            "banks",
        }
    ),
    "corporate transaction party": frozenset(
        {"successors", "acquirers", "prospective buyers"}
    ),
    "user community": frozenset(
        {"other users", "other members", "the public", "researchers", "academic researchers"}
    ),
}

#: Sets of mutually equivalent terms in a privacy context.
SYNONYM_SETS: tuple[frozenset[str], ...] = (
    frozenset({"share", "disclose", "provide to"}),
    frozenset({"collect", "gather", "obtain"}),
    frozenset({"delete", "erase", "remove"}),
    frozenset({"store", "retain", "keep", "preserve"}),
    frozenset({"email", "email address", "e-mail", "e-mail address"}),
    frozenset({"phone number", "telephone number", "mobile number"}),
    frozenset(
        {"location", "location information", "location data", "gps location", "geolocation"}
    ),
    frozenset({"ip address", "internet protocol address"}),
    frozenset({"third parties", "third party", "third-party partners"}),
    frozenset({"advertisers", "advertiser", "advertising partners", "ad partners"}),
    frozenset({"service providers", "service provider", "vendors"}),
    frozenset({"contact information", "contact details", "contact data"}),
    frozenset({"device identifier", "device id", "hardware identifier"}),
    frozenset({"browsing history", "web history"}),
    frozenset({"user", "users", "you", "account holder", "data subject"}),
    frozenset({"purchase", "transaction", "order"}),
)

#: Suffix nouns whose addition does not change meaning ("email" vs
#: "email address", "location" vs "location information").
NEUTRAL_SUFFIXES: frozenset[str] = frozenset(
    {"information", "data", "details", "address"}
)


def synonym_set_of(term: str) -> frozenset[str] | None:
    """Return the synonym set containing ``term``, if any."""
    lowered = term.lower()
    for group in SYNONYM_SETS:
        if lowered in group:
            return group
    return None
