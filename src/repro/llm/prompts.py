"""Prompt templates for every LLM task the pipeline issues.

Each template renders to a single prompt string with three parts:

1. a machine-readable header line ``### TASK: <name>`` that lets any backend
   (real or simulated) dispatch without guessing;
2. task instructions, including the normalization rules the paper describes
   (base-form verbs, singularized data types, "user" standardization) and
   few-shot examples;
3. the payload, delimited by ``<<<BEGIN ...>>>`` / ``<<<END ...>>>`` markers.

Responses are always JSON, so parsing is uniform across backends.
"""

from __future__ import annotations

from repro.errors import PromptError

TASK_HEADER_PREFIX = "### TASK: "
PAYLOAD_BEGIN = "<<<BEGIN {name}>>>"
PAYLOAD_END = "<<<END {name}>>>"


def _payload(name: str, text: str) -> str:
    return (
        PAYLOAD_BEGIN.format(name=name)
        + "\n"
        + text
        + "\n"
        + PAYLOAD_END.format(name=name)
    )


def extract_payload(prompt: str, name: str) -> str:
    """Recover a named payload section from a rendered prompt."""
    begin = PAYLOAD_BEGIN.format(name=name)
    end = PAYLOAD_END.format(name=name)
    start = prompt.find(begin)
    stop = prompt.find(end)
    if start < 0 or stop < 0 or stop < start:
        raise PromptError(f"prompt is missing payload section {name!r}")
    return prompt[start + len(begin) : stop].strip("\n")


def task_name(prompt: str) -> str:
    """Read the task name from a rendered prompt's header line."""
    for line in prompt.splitlines():
        if line.startswith(TASK_HEADER_PREFIX):
            return line[len(TASK_HEADER_PREFIX) :].strip()
    raise PromptError("prompt has no task header")


# ---------------------------------------------------------------------------
# Phase 1 prompts
# ---------------------------------------------------------------------------

COMPANY_NAME_INSTRUCTIONS = """\
You are analyzing the opening of a privacy policy.  Identify the name of the
organization that publishes this policy.  Respond with JSON:
{"company": "<name>"}

Example:
Text: "TikTok Privacy Policy. Last updated May 2024. We are committed..."
Response: {"company": "TikTok"}
"""


def render_extract_company_name(opening_text: str) -> str:
    """Prompt asking for the organization name in the first 1000 chars."""
    return "\n".join(
        [
            TASK_HEADER_PREFIX + "extract_company_name",
            COMPANY_NAME_INSTRUCTIONS,
            _payload("TEXT", opening_text[:1000]),
        ]
    )


EXTRACT_PARAMETERS_INSTRUCTIONS = """\
Extract every data practice from the policy statement below.  For each
practice report seven fields:
  sender    - who initiates the flow (use "user" for the data subject,
              the company name for first-person references)
  receiver  - who receives the data, or null if none is stated
  subject   - whose data it is (normally "user")
  data_type - the data involved, singular form ("email addresses" -> "email
              address")
  action    - the verb in base form ("collects" -> "collect")
  condition - the circumstance under which the action occurs, verbatim, or
              null; preserve vague terms such as "legitimate business
              purposes" exactly as written and keep AND/OR operators
  permission- true if the practice is performed/permitted, false if the
              statement denies it ("we do not sell ...")

Compound statements yield multiple practices: enumerated data types produce
one practice per item, and coordinated verbs ("access and collect") produce
one practice per verb.

Example:
Statement: "If you choose to find other users through your phone contacts,
TikTok will access and collect information such as names, phone numbers,
and email addresses."
Response: {"practices": [
 {"sender": "user", "receiver": null, "subject": "user",
  "data_type": "phone contacts", "action": "access",
  "condition": "if you choose to find other users through your phone contacts",
  "permission": true},
 {"sender": "TikTok", "receiver": null, "subject": "user",
  "data_type": "name", "action": "collect",
  "condition": "if you choose to find other users through your phone contacts",
  "permission": true},
 {"sender": "TikTok", "receiver": null, "subject": "user",
  "data_type": "phone number", "action": "collect",
  "condition": "if you choose to find other users through your phone contacts",
  "permission": true},
 {"sender": "TikTok", "receiver": null, "subject": "user",
  "data_type": "email address", "action": "collect",
  "condition": "if you choose to find other users through your phone contacts",
  "permission": true}]}

Respond with JSON of the same shape.
"""


def render_extract_parameters(segment_text: str, company: str) -> str:
    """Prompt asking for the seven-field semantic parameters of a segment."""
    return "\n".join(
        [
            TASK_HEADER_PREFIX + "extract_parameters",
            f"The policy belongs to the company: {company}",
            EXTRACT_PARAMETERS_INSTRUCTIONS,
            _payload("STATEMENT", segment_text),
        ]
    )


COREFERENCE_INSTRUCTIONS = """\
Rewrite the text replacing first-person references ("we", "us", "our") with
the company name given above, adjusting possessives ("our" -> "<Company>'s").
Respond with JSON: {"resolved": "<rewritten text>"}
"""


def render_resolve_coreferences(text: str, company: str) -> str:
    """Prompt asking for first-person coreference resolution."""
    return "\n".join(
        [
            TASK_HEADER_PREFIX + "resolve_coreferences",
            f"Company name: {company}",
            COREFERENCE_INSTRUCTIONS,
            _payload("TEXT", text),
        ]
    )


# ---------------------------------------------------------------------------
# Phase 2 prompts (Chain-of-Layer)
# ---------------------------------------------------------------------------

TAXONOMY_LAYER_INSTRUCTIONS = """\
You are building a taxonomy layer by layer (Chain-of-Layer).  Given the
current taxonomy nodes and a set of remaining terms, assign each term that is
a DIRECT subcategory of an existing node to that parent.  A term is a direct
subcategory when it is a more specific kind of the parent concept.  Leave
terms that belong deeper (under a term you are assigning now) unassigned for
a later layer.  Respond with JSON:
{"assignments": [{"term": "<term>", "parent": "<existing node>"}, ...]}

Example (root "data", existing nodes ["data", "personal data", "technical data"]):
Remaining: ["email", "device model", "contact information"]
Response: {"assignments": [
 {"term": "contact information", "parent": "personal data"},
 {"term": "device model", "parent": "technical data"}]}
("email" waits: its parent "contact information" was only just assigned.)
"""


def render_taxonomy_layer(
    root: str, existing_nodes: list[str], remaining_terms: list[str]
) -> str:
    """Prompt asking for the next Chain-of-Layer parent assignments."""
    return "\n".join(
        [
            TASK_HEADER_PREFIX + "taxonomy_layer",
            f"Root concept: {root}",
            TAXONOMY_LAYER_INSTRUCTIONS,
            _payload("EXISTING", "\n".join(existing_nodes)),
            _payload("REMAINING", "\n".join(remaining_terms)),
        ]
    )


# ---------------------------------------------------------------------------
# Phase 3 prompts
# ---------------------------------------------------------------------------

EQUIVALENCE_INSTRUCTIONS = """\
Do the two terms below mean the same thing in a privacy-policy context?
Consider singular/plural and common privacy synonyms ("share"/"disclose").
Respond with JSON: {"equivalent": true|false}
"""


def render_semantic_equivalence(term_a: str, term_b: str) -> str:
    """Prompt asking whether two terms are privacy-context synonyms."""
    return "\n".join(
        [
            TASK_HEADER_PREFIX + "semantic_equivalence",
            EQUIVALENCE_INSTRUCTIONS,
            _payload("TERM_A", term_a),
            _payload("TERM_B", term_b),
        ]
    )
