"""LLM client abstraction and the deterministic simulated backend.

The paper drives every Phase 1/2/3 step that needs language understanding
through GPT-4o-mini prompts.  This subpackage reproduces that architecture
with a clean seam:

* :class:`~repro.llm.client.LLMClient` — the string-in/string-out protocol a
  real API client would implement.
* :mod:`~repro.llm.prompts` — the prompt templates (with few-shot examples)
  that the pipeline renders; these embed a machine-readable task header so
  both real and simulated backends can respond.
* :class:`~repro.llm.simulated.SimulatedLLM` — the offline backend: it parses
  the rendered prompt, runs the corresponding rule-based handler built on
  :mod:`repro.nlp`, and returns a JSON completion, exactly the shape a real
  model is instructed to produce.
* :class:`~repro.llm.client.CachedLLM` — response cache keyed by prompt hash,
  mirroring the paper's caching of per-segment extractions.
"""

from repro.llm.client import CachedLLM, LLMClient, UsageStats
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import (
    EquivalenceResponse,
    ExtractedParameters,
    TaskRunner,
    TaxonomyLayerResponse,
)

__all__ = [
    "LLMClient",
    "CachedLLM",
    "UsageStats",
    "SimulatedLLM",
    "TaskRunner",
    "ExtractedParameters",
    "TaxonomyLayerResponse",
    "EquivalenceResponse",
]
