"""Typed task layer over the raw string prompt channel.

``TaskRunner`` renders a prompt via :mod:`repro.llm.prompts`, sends it
through any :class:`~repro.llm.client.LLMClient`, and parses the JSON
completion into a typed response object.  Malformed completions raise
:class:`repro.errors.LLMError` so pipeline code never silently consumes
garbage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import LLMError
from repro.llm import prompts
from repro.llm.client import LLMClient


@dataclass(frozen=True, slots=True)
class ExtractedParameters:
    """One data practice: the paper's seven extraction fields."""

    sender: str
    receiver: str | None
    subject: str
    data_type: str
    action: str
    condition: str | None
    permission: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "sender": self.sender,
            "receiver": self.receiver,
            "subject": self.subject,
            "data_type": self.data_type,
            "action": self.action,
            "condition": self.condition,
            "permission": self.permission,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "ExtractedParameters":
        try:
            return cls(
                sender=str(raw["sender"]),
                receiver=None if raw.get("receiver") is None else str(raw["receiver"]),
                subject=str(raw.get("subject", "user")),
                data_type=str(raw["data_type"]),
                action=str(raw["action"]),
                condition=None if raw.get("condition") is None else str(raw["condition"]),
                permission=bool(raw.get("permission", True)),
            )
        except KeyError as exc:
            raise LLMError(f"practice object missing field {exc}") from exc


@dataclass(frozen=True, slots=True)
class TaxonomyLayerResponse:
    """Parent assignments produced by one Chain-of-Layer iteration."""

    assignments: tuple[tuple[str, str], ...]  # (term, parent)


@dataclass(frozen=True, slots=True)
class EquivalenceResponse:
    """Whether two terms are privacy-context synonyms."""

    equivalent: bool


@dataclass(slots=True)
class TaskRunner:
    """High-level interface the pipeline uses for every LLM task."""

    client: LLMClient
    history: list[str] = field(default_factory=list)

    def _complete_json(self, prompt: str) -> dict[str, object]:
        completion = self.client.complete(prompt)
        self.history.append(prompt)
        try:
            parsed = json.loads(completion)
        except json.JSONDecodeError as exc:
            raise LLMError(
                f"completion is not valid JSON: {completion[:200]!r}"
            ) from exc
        if not isinstance(parsed, dict):
            raise LLMError(f"completion is not a JSON object: {completion[:200]!r}")
        return parsed

    def extract_company_name(self, opening_text: str) -> str:
        """Identify the policy's organization from its opening text."""
        prompt = prompts.render_extract_company_name(opening_text)
        parsed = self._complete_json(prompt)
        company = parsed.get("company")
        if not company or not isinstance(company, str):
            raise LLMError("company-name task returned no company")
        return company

    def resolve_coreferences(self, text: str, company: str) -> str:
        """Replace first-person references with the company name."""
        prompt = prompts.render_resolve_coreferences(text, company)
        parsed = self._complete_json(prompt)
        resolved = parsed.get("resolved")
        if not isinstance(resolved, str):
            raise LLMError("coreference task returned no resolved text")
        return resolved

    def extract_parameters(
        self, segment_text: str, company: str
    ) -> list[ExtractedParameters]:
        """Extract all data practices from one policy segment."""
        prompt = prompts.render_extract_parameters(segment_text, company)
        parsed = self._complete_json(prompt)
        practices = parsed.get("practices")
        if not isinstance(practices, list):
            raise LLMError("extraction task returned no practices list")
        return [
            ExtractedParameters.from_dict(item)
            for item in practices
            if isinstance(item, dict)
        ]

    def taxonomy_layer(
        self, root: str, existing_nodes: list[str], remaining_terms: list[str]
    ) -> TaxonomyLayerResponse:
        """Run one Chain-of-Layer iteration."""
        prompt = prompts.render_taxonomy_layer(root, existing_nodes, remaining_terms)
        parsed = self._complete_json(prompt)
        raw = parsed.get("assignments")
        if not isinstance(raw, list):
            raise LLMError("taxonomy task returned no assignments list")
        assignments = []
        for item in raw:
            if (
                isinstance(item, dict)
                and isinstance(item.get("term"), str)
                and isinstance(item.get("parent"), str)
            ):
                assignments.append((item["term"], item["parent"]))
        return TaxonomyLayerResponse(assignments=tuple(assignments))

    def semantic_equivalence(self, term_a: str, term_b: str) -> bool:
        """Ask whether two terms mean the same in a privacy context."""
        prompt = prompts.render_semantic_equivalence(term_a, term_b)
        parsed = self._complete_json(prompt)
        return bool(parsed.get("equivalent", False))
