"""Incomplete-disclaimer detection.

The paper's structured representation "enables detection of policy
conflicts and incomplete disclaimers" (§2).  Conflicts live in
:mod:`repro.analysis.contradictions`; this module covers the disclaimer
side — practices whose disclosure chain is missing a link:

* **shared-but-never-collected** data: the policy discloses sharing a data
  type whose collection is never disclosed;
* **sensitive data without consent**: practices on sensitive categories
  (biometric, health, financial, precise location) that carry no
  consent/choice condition;
* **external dependencies** (Challenge 4): conditions that reference
  context outside the policy — account settings, features, or applicable
  law — which cannot be evaluated from the text alone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.graphs import PolicyGraph
from repro.nlp.lexicon import SHARING_VERBS

_COLLECTION_ACTIONS = frozenset(
    {"collect", "gather", "obtain", "access", "record", "log", "receive", "provide"}
)

#: Signal words marking a data type as sensitive.
_SENSITIVE_MARKERS = (
    "biometric",
    "faceprint",
    "voiceprint",
    "fingerprint",
    "health",
    "medical",
    "diagnos",
    "medication",
    "financial",
    "credit card",
    "precise location",
    "government identification",
)

#: Conditions that count as a consent/choice gate.
_CONSENT_MARKERS = (
    "consent",
    "opt out",
    "opt in",
    "opt-out",
    "opt-in",
    "you enable",
    "you choose",
    "your settings",
)

#: Conditions that reference context external to the policy text.
_EXTERNAL_PATTERNS = (
    (re.compile(r"\b(?:required|permitted)\s+by\b|\bapplicable law\b|\blegal\b", re.I), "law"),
    (re.compile(r"\bsettings?\b", re.I), "application settings"),
    (re.compile(r"\bfeature\b", re.I), "application feature"),
    (re.compile(r"\bjurisdiction\b", re.I), "jurisdiction"),
    (re.compile(r"\bcorporate transaction\b", re.I), "corporate event"),
)


def is_sensitive(data_type: str) -> bool:
    """Heuristic sensitivity classification of a data-type term."""
    lowered = data_type.lower()
    return any(marker in lowered for marker in _SENSITIVE_MARKERS)


@dataclass(slots=True)
class DisclaimerReport:
    """Disclosure gaps found in one policy graph."""

    shared_but_not_collected: set[str] = field(default_factory=set)
    sensitive_without_consent: list[str] = field(default_factory=list)  # edge descriptions
    external_dependencies: dict[str, list[str]] = field(default_factory=dict)  # kind -> conditions

    @property
    def total_findings(self) -> int:
        return (
            len(self.shared_but_not_collected)
            + len(self.sensitive_without_consent)
            + sum(len(v) for v in self.external_dependencies.values())
        )

    def summary(self) -> dict[str, int]:
        return {
            "shared_but_not_collected": len(self.shared_but_not_collected),
            "sensitive_without_consent": len(self.sensitive_without_consent),
            "external_dependency_kinds": len(self.external_dependencies),
            "external_dependency_conditions": sum(
                len(v) for v in self.external_dependencies.values()
            ),
        }


def find_incomplete_disclaimers(graph: PolicyGraph) -> DisclaimerReport:
    """Scan a policy graph for disclosure gaps."""
    report = DisclaimerReport()
    company = graph.company.lower()
    collected: set[str] = set()
    shared: set[str] = set()

    edges = graph.edges()
    for edge in edges:
        if not edge.permission:
            continue
        action = edge.action.lower()
        # Collection disclosure comes from the company or the user's own
        # provision — not from derived receiver-side edges.
        if (
            action in _COLLECTION_ACTIONS
            and not edge.derived
            and edge.source in (company, "user")
        ):
            collected.add(edge.target)
        if edge.source == company and action in SHARING_VERBS:
            shared.add(edge.target)
            if is_sensitive(edge.target) and not _has_consent_gate(edge.condition):
                report.sensitive_without_consent.append(edge.describe())
        if edge.condition:
            for pattern, kind in _EXTERNAL_PATTERNS:
                if pattern.search(edge.condition):
                    bucket = report.external_dependencies.setdefault(kind, [])
                    if edge.condition not in bucket:
                        bucket.append(edge.condition)
                    break

    # A shared data type counts as collected if the exact term or a
    # hierarchy relative was disclosed as collected.
    for term in shared:
        closure = graph.data_closure(term)
        if not (closure & collected):
            report.shared_but_not_collected.add(term)
    return report


def _has_consent_gate(condition: str | None) -> bool:
    if condition is None:
        return False
    lowered = condition.lower()
    return any(marker in lowered for marker in _CONSENT_MARKERS)


def render_disclaimers(report: DisclaimerReport, *, limit: int = 10) -> str:
    """Human-readable incomplete-disclaimer report."""
    lines = ["incomplete disclaimers:"]
    for key, value in report.summary().items():
        lines.append(f"  {key}: {value}")
    if report.shared_but_not_collected:
        lines.append("shared but never disclosed as collected:")
        lines.extend(f"  - {t}" for t in sorted(report.shared_but_not_collected)[:limit])
    if report.sensitive_without_consent:
        lines.append("sensitive data practices lacking a consent gate:")
        lines.extend(f"  - {d}" for d in report.sensitive_without_consent[:limit])
    if report.external_dependencies:
        lines.append("conditions depending on external context (Challenge 4):")
        for kind, conditions in sorted(report.external_dependencies.items()):
            lines.append(f"  [{kind}] e.g. {conditions[0]!r} (+{len(conditions) - 1} more)")
    return "\n".join(lines)
