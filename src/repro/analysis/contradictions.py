"""Apparent-contradiction detection (PolicyLint-style).

Scans the extracted practices for (denial, permission) pairs on the same or
hierarchically related data, then classifies each pair with
:func:`repro.analysis.exceptions.classify_exception`.  The headline
statistic mirrors PolicyLint's finding: what fraction of apparent
contradictions are actually coherent exception patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.exceptions import ExceptionPattern, classify_exception
from repro.core.hierarchy import Taxonomy
from repro.core.parameters import AnnotatedPractice
from repro.nlp.lexicon import SHARING_VERBS

#: Actions comparable for contradiction purposes: denying one of these
#: conflicts with permitting another ("do not share" vs "disclose").
_CONFLICT_GROUPS: tuple[frozenset[str], ...] = (
    frozenset(SHARING_VERBS),
    frozenset({"collect", "gather", "obtain", "access", "record", "log"}),
    frozenset({"store", "retain", "keep", "preserve"}),
    frozenset({"track", "monitor"}),
)


def _conflict_group(action: str) -> int | None:
    for i, group in enumerate(_CONFLICT_GROUPS):
        if action in group:
            return i
    return None


@dataclass(frozen=True, slots=True)
class ApparentContradiction:
    """A denial/permission pair on related data with comparable actions."""

    denial: AnnotatedPractice
    permission: AnnotatedPractice
    pattern: ExceptionPattern

    @property
    def is_coherent(self) -> bool:
        return self.pattern.is_coherent

    def describe(self) -> str:
        return (
            f"[{self.pattern.value}] "
            f"denies: {self.denial.sender} {self.denial.action} "
            f"{self.denial.data_type}"
            + (f" to {self.denial.receiver}" if self.denial.receiver else "")
            + f"  vs permits: {self.permission.sender} {self.permission.action} "
            f"{self.permission.data_type}"
            + (f" to {self.permission.receiver}" if self.permission.receiver else "")
            + (f" when {self.permission.condition}" if self.permission.condition else "")
        )


@dataclass(slots=True)
class ContradictionReport:
    """All apparent contradictions found in one policy."""

    contradictions: list[ApparentContradiction] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.contradictions)

    @property
    def coherent(self) -> list[ApparentContradiction]:
        return [c for c in self.contradictions if c.is_coherent]

    @property
    def genuine(self) -> list[ApparentContradiction]:
        return [c for c in self.contradictions if not c.is_coherent]

    @property
    def coherent_fraction(self) -> float:
        if not self.contradictions:
            return 1.0
        return len(self.coherent) / self.total

    def by_pattern(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.contradictions:
            counts[c.pattern.value] = counts.get(c.pattern.value, 0) + 1
        return counts


def _data_related(
    denial_data: str, permission_data: str, taxonomy: Taxonomy | None
) -> tuple[bool, bool]:
    """(related, permission_is_narrower) for two data terms."""
    if denial_data == permission_data:
        return True, False
    if taxonomy is None:
        return False, False
    if denial_data in taxonomy and permission_data in taxonomy:
        if taxonomy.is_ancestor(denial_data, permission_data):
            return True, True
        if taxonomy.is_ancestor(permission_data, denial_data):
            return True, False
    return False, False


def find_contradictions(
    practices: list[AnnotatedPractice],
    *,
    data_taxonomy: Taxonomy | None = None,
    same_sender_only: bool = True,
) -> ContradictionReport:
    """Scan practices for apparent contradictions.

    Args:
        practices: Phase 1 output for one policy.
        data_taxonomy: when given, hierarchically related data types are
            also compared ("location data" vs "gps location").
        same_sender_only: restrict comparisons to the same sender, which is
            the PolicyLint setting (a first-party denial is not contradicted
            by a user action).
    """
    report = ContradictionReport()
    denials = [p for p in practices if not p.permission]
    permissions = [p for p in practices if p.permission]
    permissions_by_group: dict[int, list[AnnotatedPractice]] = {}
    for p in permissions:
        group = _conflict_group(p.action.lower())
        if group is not None:
            permissions_by_group.setdefault(group, []).append(p)

    seen: set[tuple[str, str]] = set()
    for denial in denials:
        group = _conflict_group(denial.action.lower())
        if group is None:
            continue
        for permission in permissions_by_group.get(group, []):
            if same_sender_only and (
                permission.sender.lower() != denial.sender.lower()
            ):
                continue
            related, narrower = _data_related(
                denial.data_type.lower(),
                permission.data_type.lower(),
                data_taxonomy,
            )
            if not related:
                continue
            key = (denial.segment_id + denial.data_type, permission.segment_id + permission.data_type)
            if key in seen:
                continue
            seen.add(key)
            pattern = classify_exception(
                denial, permission, data_is_narrower=narrower
            )
            report.contradictions.append(
                ApparentContradiction(
                    denial=denial, permission=permission, pattern=pattern
                )
            )
    return report
