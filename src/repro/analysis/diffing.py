"""Cross-version policy diffing for policy authors.

Segment-level diffs come for free from content hashing; practice-level
diffs show what actually changed about data handling: which practices were
introduced, which were dropped, and which data types gained or lost
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extraction import ExtractionResult
from repro.core.parameters import AnnotatedPractice
from repro.core.segmenter import SegmentDiff, diff_segments


def _practice_key(p: AnnotatedPractice) -> tuple[str, str, str, str, bool]:
    return (
        p.sender.lower(),
        p.action.lower(),
        p.data_type.lower(),
        (p.receiver or "").lower(),
        p.permission,
    )


@dataclass(slots=True)
class PolicyDiff:
    """What changed between two policy versions."""

    segments: SegmentDiff
    added_practices: list[AnnotatedPractice] = field(default_factory=list)
    removed_practices: list[AnnotatedPractice] = field(default_factory=list)
    condition_changes: list[tuple[AnnotatedPractice, AnnotatedPractice]] = field(
        default_factory=list
    )  # (old, new) same practice, different condition

    @property
    def is_empty(self) -> bool:
        return (
            not self.segments.added
            and not self.segments.removed
            and not self.added_practices
            and not self.removed_practices
            and not self.condition_changes
        )

    def summary(self) -> dict[str, int]:
        return {
            "segments_added": len(self.segments.added),
            "segments_removed": len(self.segments.removed),
            "segments_unchanged": len(self.segments.unchanged),
            "practices_added": len(self.added_practices),
            "practices_removed": len(self.removed_practices),
            "condition_changes": len(self.condition_changes),
        }


def diff_policies(old: ExtractionResult, new: ExtractionResult) -> PolicyDiff:
    """Compare two extraction results at segment and practice level."""
    seg_diff = diff_segments(old.segments, new.segments)
    old_by_key: dict[tuple, list[AnnotatedPractice]] = {}
    for p in old.practices:
        old_by_key.setdefault(_practice_key(p), []).append(p)
    new_by_key: dict[tuple, list[AnnotatedPractice]] = {}
    for p in new.practices:
        new_by_key.setdefault(_practice_key(p), []).append(p)

    diff = PolicyDiff(segments=seg_diff)
    for key, new_items in new_by_key.items():
        old_items = old_by_key.get(key)
        if old_items is None:
            diff.added_practices.extend(new_items)
            continue
        old_conditions = {p.condition for p in old_items}
        for item in new_items:
            if item.condition not in old_conditions:
                diff.condition_changes.append((old_items[0], item))
    for key, old_items in old_by_key.items():
        if key not in new_by_key:
            diff.removed_practices.extend(old_items)
    return diff
