"""User-rights audit: what can the data subject actually do?

The paper's user-facing story (§5): "Users query whether their data
handling actually complies with stated policies."  GDPR-style compliance
hinges on rights statements — access, deletion, correction, portability,
objection — and on whether those rights cover the data the policy
collects.  This module inventories the rights the policy grants and the
data types left without a deletion path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graphs import NODE_DATA, PolicyGraph
from repro.core.parameters import AnnotatedPractice

#: Right name -> action verbs that grant it when the user is the sender
#: (or the company acts on the user's request).
RIGHT_ACTIONS: dict[str, frozenset[str]] = {
    "access": frozenset({"access", "view", "download"}),
    "deletion": frozenset({"delete", "erase", "remove"}),
    "correction": frozenset({"correct", "update", "edit"}),
    "portability": frozenset({"download", "export"}),
    "objection": frozenset({"object", "opt", "restrict"}),
}

_COLLECTION_ACTIONS = frozenset(
    {"collect", "gather", "obtain", "access", "record", "log", "receive", "provide"}
)

#: Condition fragments indicating the right is exercised through the user.
_USER_CHANNEL_MARKERS = ("settings", "contacting", "request", "account")


@dataclass(slots=True)
class RightGrant:
    """One granted right with its scope and channel."""

    right: str
    data_type: str
    channel: str  # condition text or "unconditional"
    segment_id: str


@dataclass(slots=True)
class RightsReport:
    """Rights inventory for one policy."""

    grants: list[RightGrant] = field(default_factory=list)
    rights_present: set[str] = field(default_factory=set)
    rights_absent: set[str] = field(default_factory=set)
    collected_without_deletion: set[str] = field(default_factory=set)

    def summary(self) -> dict[str, object]:
        return {
            "grants": len(self.grants),
            "rights_present": sorted(self.rights_present),
            "rights_absent": sorted(self.rights_absent),
            "collected_without_deletion": len(self.collected_without_deletion),
        }

    def render(self, *, limit: int = 10) -> str:
        lines = ["user rights audit:"]
        for key, value in self.summary().items():
            lines.append(f"  {key}: {value}")
        if self.grants:
            lines.append("sample grants:")
            lines.extend(
                f"  - {g.right}: {g.data_type} (via {g.channel})"
                for g in self.grants[:limit]
            )
        if self.collected_without_deletion:
            gaps = sorted(self.collected_without_deletion)
            lines.append("collected data with no stated deletion path:")
            lines.extend(f"  - {g}" for g in gaps[:limit])
            if len(gaps) > limit:
                lines.append(f"  ... and {len(gaps) - limit} more")
        return "\n".join(lines)


def _right_for(practice: AnnotatedPractice) -> str | None:
    action = practice.action.lower()
    for right, verbs in RIGHT_ACTIONS.items():
        if action in verbs:
            return right
    return None


def rights_report(
    practices: list[AnnotatedPractice], graph: PolicyGraph
) -> RightsReport:
    """Inventory the rights granted by ``practices`` and find gaps.

    A practice counts as a rights grant when either the *user* performs a
    rights action ("you may delete your data"), or the company performs it
    through a user-facing channel ("we will delete ... if you request").
    """
    report = RightsReport()
    company = graph.company.lower()

    for practice in practices:
        if not practice.permission:
            continue
        right = _right_for(practice)
        if right is None:
            continue
        sender = practice.sender.lower()
        condition = (practice.condition or "").lower()
        user_channel = sender == "user" or any(
            marker in condition for marker in _USER_CHANNEL_MARKERS
        )
        if not user_channel:
            continue
        report.grants.append(
            RightGrant(
                right=right,
                data_type=practice.data_type.lower(),
                channel=practice.condition or "unconditional",
                segment_id=practice.segment_id,
            )
        )
        report.rights_present.add(right)

    report.rights_absent = set(RIGHT_ACTIONS) - report.rights_present

    # Deletion-coverage gap: collected data types with no deletion grant
    # covering them (directly or via a hierarchy relative).
    deletable: set[str] = set()
    for grant in report.grants:
        if grant.right == "deletion":
            deletable |= graph.data_closure(grant.data_type)
    # A blanket grant on generic terms covers everything.
    blanket = bool(
        deletable
        & {"data", "information", "personal information", "personal data", "account"}
    )
    data_nodes = set(graph.nodes_of_kind(NODE_DATA))
    for edge in graph.edges():
        if (
            edge.permission
            and edge.source in (company, "user")
            and not edge.derived
            and edge.action in _COLLECTION_ACTIONS
            and edge.target in data_nodes
        ):
            if blanket or graph.data_closure(edge.target) & deletable:
                continue
            report.collected_without_deletion.add(edge.target)
    return report
