"""Exception-pattern classification.

Given a general denial ("we do not share location data") and a later
permissive statement on the same data ("we share location data with mapping
services when you enable navigation"), decide whether the pair is a
*coherent exception* — the specific rule carves a scoped exception out of
the general one — or a genuine contradiction.  PolicyLint found that most
apparent contradictions in real policies are coherent exceptions; the
classifier encodes the cues a human reviewer uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.parameters import AnnotatedPractice


class ExceptionPattern(enum.Enum):
    """How an apparent contradiction resolves."""

    CONDITIONAL_EXCEPTION = "conditional_exception"  # carve-out has a condition
    RECEIVER_SCOPED = "receiver_scoped"  # carve-out names a specific receiver
    NARROWER_DATA = "narrower_data"  # carve-out concerns a subtype of the data
    CONTRADICTION = "contradiction"  # no scoping at all: genuinely conflicting

    @property
    def is_coherent(self) -> bool:
        return self is not ExceptionPattern.CONTRADICTION


_BROAD_RECEIVERS = frozenset(
    {"third parties", "third party", "anyone", "any party", "others", None}
)


def classify_exception(
    denial: AnnotatedPractice,
    permission: AnnotatedPractice,
    *,
    data_is_narrower: bool = False,
) -> ExceptionPattern:
    """Classify the relationship between a denial and a permission.

    Args:
        denial: the general negative statement (``permission == False``).
        permission: the permissive statement on the same (or related) data.
        data_is_narrower: True when the permissive statement's data type is
            a strict descendant of the denial's in the hierarchy.

    Scoping cues are checked in order of strength: an explicit condition, a
    named (non-generic) receiver, and a narrower data type.  A permissive
    statement with none of these contradicts the denial outright.
    """
    if permission.condition:
        return ExceptionPattern.CONDITIONAL_EXCEPTION
    receiver = permission.receiver.lower() if permission.receiver else None
    denial_receiver = denial.receiver.lower() if denial.receiver else None
    if receiver not in _BROAD_RECEIVERS and receiver != denial_receiver:
        return ExceptionPattern.RECEIVER_SCOPED
    if data_is_narrower:
        return ExceptionPattern.NARROWER_DATA
    return ExceptionPattern.CONTRADICTION
