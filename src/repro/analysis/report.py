"""Plain-text rendering of analysis results."""

from __future__ import annotations

from repro.analysis.contradictions import ContradictionReport
from repro.analysis.coverage import CoverageReport
from repro.analysis.diffing import PolicyDiff


def render_contradictions(report: ContradictionReport, *, limit: int = 15) -> str:
    """Human-readable apparent-contradiction report."""
    lines = [
        f"apparent contradictions: {report.total}",
        f"  coherent exception patterns: {len(report.coherent)} "
        f"({report.coherent_fraction:.1%})",
        f"  genuine contradictions:      {len(report.genuine)}",
        "by pattern: "
        + ", ".join(f"{k}={v}" for k, v in sorted(report.by_pattern().items())),
    ]
    if report.genuine:
        lines.append("genuine contradictions needing review:")
        lines.extend("  " + c.describe() for c in report.genuine[:limit])
    return "\n".join(lines)


def render_coverage(report: CoverageReport, *, limit: int = 10) -> str:
    """Human-readable coverage/gap report."""
    summary = report.summary()
    lines = ["coverage report:"]
    lines.extend(f"  {key}: {value}" for key, value in summary.items())
    if report.collection_without_retention:
        gaps = sorted(report.collection_without_retention)
        lines.append("collected but never covered by a retention statement:")
        lines.extend(f"  - {g}" for g in gaps[:limit])
        if len(gaps) > limit:
            lines.append(f"  ... and {len(gaps) - limit} more")
    if report.vague_term_counts:
        lines.append("most frequent vague terms:")
        ranked = sorted(report.vague_term_counts.items(), key=lambda kv: -kv[1])
        lines.extend(f"  {name}: {count}" for name, count in ranked[:limit])
    return "\n".join(lines)


def render_diff(diff: PolicyDiff, *, limit: int = 10) -> str:
    """Human-readable cross-version diff report."""
    summary = diff.summary()
    lines = ["policy diff:"]
    lines.extend(f"  {key}: {value}" for key, value in summary.items())
    if diff.added_practices:
        lines.append("new practices:")
        lines.extend(
            f"  + {p.sender} {p.action} {p.data_type}"
            + (f" -> {p.receiver}" if p.receiver else "")
            for p in diff.added_practices[:limit]
        )
    if diff.removed_practices:
        lines.append("removed practices:")
        lines.extend(
            f"  - {p.sender} {p.action} {p.data_type}"
            + (f" -> {p.receiver}" if p.receiver else "")
            for p in diff.removed_practices[:limit]
        )
    if diff.condition_changes:
        lines.append("condition changes:")
        lines.extend(
            f"  ~ {old.sender} {old.action} {old.data_type}: "
            f"{old.condition!r} -> {new.condition!r}"
            for old, new in diff.condition_changes[:limit]
        )
    return "\n".join(lines)
