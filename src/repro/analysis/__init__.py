"""Applications built on the extracted policy model.

The paper names four user groups; this subpackage serves them:

* **policy authors** — :mod:`diffing` tracks changes across versions;
* **legal teams** — :mod:`contradictions` and :mod:`exceptions` find
  apparent contradictions and classify which are coherent exception
  patterns (the PolicyLint 14.2% phenomenon);
* **companies/users** — :mod:`coverage` reports gaps (collection without
  retention, sharing without conditions, vague-term hot spots);
* **engineers** — :mod:`report` renders the concrete conditions and
  requirements extracted for implementation.
"""

from repro.analysis.contradictions import (
    ApparentContradiction,
    ContradictionReport,
    find_contradictions,
)
from repro.analysis.exceptions import ExceptionPattern, classify_exception
from repro.analysis.diffing import PolicyDiff, diff_policies
from repro.analysis.coverage import CoverageReport, coverage_report
from repro.analysis.disclaimers import (
    DisclaimerReport,
    find_incomplete_disclaimers,
    render_disclaimers,
)
from repro.analysis.report import render_contradictions, render_coverage, render_diff
from repro.analysis.rights import RightsReport, rights_report
from repro.analysis.scenarios import (
    Expectation,
    Scenario,
    ScenarioReport,
    load_scenarios,
    run_scenarios,
)

__all__ = [
    "ApparentContradiction",
    "ContradictionReport",
    "find_contradictions",
    "ExceptionPattern",
    "classify_exception",
    "PolicyDiff",
    "diff_policies",
    "CoverageReport",
    "coverage_report",
    "DisclaimerReport",
    "find_incomplete_disclaimers",
    "render_disclaimers",
    "render_contradictions",
    "render_coverage",
    "render_diff",
    "RightsReport",
    "rights_report",
    "Expectation",
    "Scenario",
    "ScenarioReport",
    "run_scenarios",
    "load_scenarios",
]
