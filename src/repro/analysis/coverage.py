"""Coverage and gap analysis over an extracted policy model.

Answers the questions a compliance review asks of the extraction: which
data types are collected but never covered by a retention statement, which
sharing happens without any condition, where the vague terms concentrate,
and how much of the policy is formally decidable versus dependent on
uninterpreted predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graphs import NODE_DATA, PolicyGraph
from repro.nlp.lexicon import SHARING_VERBS

_RETENTION_ACTIONS = frozenset({"retain", "store", "keep", "preserve", "delete", "erase", "remove"})
_COLLECTION_ACTIONS = frozenset({"collect", "gather", "obtain", "access", "record", "log", "receive"})


@dataclass(slots=True)
class CoverageReport:
    """Gap metrics for one policy model."""

    collected_data_types: set[str] = field(default_factory=set)
    retained_data_types: set[str] = field(default_factory=set)
    shared_data_types: set[str] = field(default_factory=set)
    collection_without_retention: set[str] = field(default_factory=set)
    unconditional_sharing: list[str] = field(default_factory=list)  # edge descriptions
    vague_term_counts: dict[str, int] = field(default_factory=dict)
    conditional_edge_fraction: float = 0.0
    vague_edge_fraction: float = 0.0

    def summary(self) -> dict[str, object]:
        return {
            "collected_data_types": len(self.collected_data_types),
            "retained_data_types": len(self.retained_data_types),
            "shared_data_types": len(self.shared_data_types),
            "collection_without_retention": len(self.collection_without_retention),
            "unconditional_sharing_edges": len(self.unconditional_sharing),
            "distinct_vague_terms": len(self.vague_term_counts),
            "conditional_edge_fraction": round(self.conditional_edge_fraction, 3),
            "vague_edge_fraction": round(self.vague_edge_fraction, 3),
        }


def coverage_report(graph: PolicyGraph) -> CoverageReport:
    """Compute gap metrics from a policy graph."""
    report = CoverageReport()
    data_nodes = set(graph.nodes_of_kind(NODE_DATA))
    edges = graph.edges()
    company = graph.company.lower()

    for edge in edges:
        if edge.target not in data_nodes:
            continue
        action = edge.action.lower()
        if edge.source == company and edge.permission:
            if action in _COLLECTION_ACTIONS:
                report.collected_data_types.add(edge.target)
            if action in _RETENTION_ACTIONS:
                report.retained_data_types.add(edge.target)
            if action in SHARING_VERBS:
                report.shared_data_types.add(edge.target)
                if edge.condition is None:
                    report.unconditional_sharing.append(edge.describe())
        for _phrase, predicate in edge.vague_terms:
            report.vague_term_counts[predicate] = (
                report.vague_term_counts.get(predicate, 0) + 1
            )

    report.collection_without_retention = (
        report.collected_data_types - report.retained_data_types
    )
    if edges:
        report.conditional_edge_fraction = sum(
            1 for e in edges if e.is_conditional
        ) / len(edges)
        report.vague_edge_fraction = sum(1 for e in edges if e.vague_terms) / len(
            edges
        )
    return report
