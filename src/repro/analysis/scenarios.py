"""Scenario testing: verify a policy against a compliance suite.

The paper's company-facing use case (§5): "Companies test their privacy
policies against specific scenarios to ensure consistency."  A scenario is
a data-practice question plus the outcome the company expects; running the
suite produces a pass/fail compliance report that is stable enough to run
in CI against every policy revision.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.verify import Verdict
from repro.errors import ReproError


class Expectation(enum.Enum):
    """What a scenario author expects of a query."""

    VALID = "valid"  # must follow unconditionally
    INVALID = "invalid"  # must not follow, even conditionally
    CONDITIONAL = "conditional"  # must follow only under vague conditions
    ANY = "any"  # informational: never fails

    @classmethod
    def parse(cls, raw: str) -> "Expectation":
        try:
            return cls(raw.strip().lower())
        except ValueError as exc:
            valid = ", ".join(e.value for e in cls)
            raise ReproError(
                f"unknown expectation {raw!r}; expected one of: {valid}"
            ) from exc


@dataclass(frozen=True, slots=True)
class Scenario:
    """One compliance check: a question plus its expected outcome."""

    question: str
    expectation: Expectation
    description: str = ""

    @classmethod
    def from_dict(cls, raw: dict) -> "Scenario":
        return cls(
            question=str(raw["question"]),
            expectation=Expectation.parse(str(raw.get("expectation", "any"))),
            description=str(raw.get("description", "")),
        )


@dataclass(slots=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    verdict: Verdict
    conditionally_valid: bool | None
    passed: bool
    detail: str = ""


@dataclass(slots=True)
class ScenarioReport:
    """Results of a full suite run."""

    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [f"scenario suite: {self.passed}/{self.total} passed"]
        for result in self.results:
            mark = "PASS" if result.passed else "FAIL"
            lines.append(
                f"  [{mark}] {result.scenario.question}"
                f" (expected {result.scenario.expectation.value},"
                f" got {result.verdict}"
                + (
                    f", conditionally valid={result.conditionally_valid}"
                    if result.conditionally_valid is not None
                    else ""
                )
                + ")"
            )
            if result.detail and not result.passed:
                lines.append(f"         {result.detail}")
        return "\n".join(lines)


def _judge(scenario: Scenario, verdict: Verdict, conditional: bool | None) -> tuple[bool, str]:
    expect = scenario.expectation
    if expect is Expectation.ANY:
        return True, ""
    if expect is Expectation.VALID:
        return verdict is Verdict.VALID, "practice is not unconditionally entailed"
    if expect is Expectation.INVALID:
        ok = verdict is Verdict.INVALID and conditional is not True
        return ok, "practice follows (at least conditionally) from the policy"
    # CONDITIONAL: not unconditionally valid, but valid when vague terms hold.
    ok = verdict is Verdict.INVALID and conditional is True
    return ok, "practice is not gated the way the scenario expects"


def run_scenarios(pipeline, model, scenarios: list[Scenario]) -> ScenarioReport:
    """Run every scenario through Phase 3 and judge against expectations."""
    report = ScenarioReport()
    for scenario in scenarios:
        outcome = pipeline.query(model, scenario.question)
        verdict = outcome.verdict
        conditional = outcome.verification.conditionally_valid
        passed, detail = _judge(scenario, verdict, conditional)
        report.results.append(
            ScenarioResult(
                scenario=scenario,
                verdict=verdict,
                conditionally_valid=conditional,
                passed=passed,
                detail="" if passed else detail,
            )
        )
    return report


def load_scenarios(path: str | Path) -> list[Scenario]:
    """Load a scenario suite from a JSON file (a list of objects)."""
    raw = json.loads(Path(path).read_text("utf-8"))
    if not isinstance(raw, list):
        raise ReproError("scenario file must contain a JSON list")
    return [Scenario.from_dict(item) for item in raw]
