"""Epoch-swapped registry handles: hot reload without dropping requests.

``/reload`` must atomically switch the daemon to a freshly-read registry
(new manifest, new revisions, cold warm-cache) while queries admitted
against the *old* registry keep running against it — swapping the object
out from under them would invalidate the warm models they already hold.

:class:`EpochSwitch` makes the swap a reference-counted handoff:

* every request does ``with epochs.acquire() as epoch:`` — the epoch it
  gets is **pinned** (refcounted) for the duration of the request;
* :meth:`reload` builds the replacement registry *before* taking the
  lock (slow disk reads never block in-flight acquires), then swaps the
  current pointer — an O(1) critical section;
* a superseded epoch retires only when its last pinned request releases
  it; until then it lives in the ``retiring`` list, visible to
  ``/stats`` as evidence the swap is draining.

New acquires always see the newest epoch, so a query arriving one
instant after the swap observes the reloaded revision while its
neighbour admitted one instant before finishes against the old one —
zero dropped or mixed requests either way.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, TypeVar

R = TypeVar("R")


@dataclass(eq=False)
class Epoch(Generic[R]):
    """One immutable registry generation plus its pin count."""

    number: int
    registry: R
    refs: int = 0
    retired: bool = field(default=False)  # superseded AND fully released


@dataclass(slots=True)
class ReloadReport:
    """What one :meth:`EpochSwitch.reload` did."""

    old_epoch: int
    new_epoch: int
    pinned: int  # requests still running against the old epoch at swap
    seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "old_epoch": self.old_epoch,
            "new_epoch": self.new_epoch,
            "pinned": self.pinned,
            "seconds": round(self.seconds, 6),
        }


class EpochSwitch(Generic[R]):
    """Reference-counted current-epoch pointer (see module doc)."""

    def __init__(self, factory: Callable[[], R]) -> None:
        self._factory = factory
        self._cv = threading.Condition()
        self._current: Epoch[R] = Epoch(number=0, registry=factory())
        self._retiring: list[Epoch[R]] = []
        self.reloads = 0

    @property
    def current_epoch(self) -> int:
        with self._cv:
            return self._current.number

    @property
    def current_registry(self) -> R:
        """Unpinned peek for introspection (``/stats``); request paths
        must use :meth:`acquire` instead."""
        with self._cv:
            return self._current.registry

    def retiring(self) -> list[tuple[int, int]]:
        """Superseded-but-still-pinned epochs as (number, refs)."""
        with self._cv:
            return [(e.number, e.refs) for e in self._retiring]

    @contextmanager
    def acquire(self) -> Iterator[Epoch[R]]:
        """Pin the newest epoch for the duration of the ``with`` body."""
        with self._cv:
            epoch = self._current
            epoch.refs += 1
        try:
            yield epoch
        finally:
            with self._cv:
                epoch.refs -= 1
                if epoch.refs == 0 and epoch in self._retiring:
                    self._retiring.remove(epoch)
                    epoch.retired = True
                    self._cv.notify_all()

    def reload(self, factory: Callable[[], R] | None = None) -> ReloadReport:
        """Swap in a fresh registry; in-flight pins keep the old one alive.

        The replacement is constructed *outside* the lock — a reload that
        takes seconds to re-read a large manifest never blocks admission
        or queries.  Concurrent reloads are each applied in full (last
        writer's registry wins the pointer; every superseded epoch drains
        via the retiring list).
        """
        replacement = (factory or self._factory)()
        with self._cv:
            old = self._current
            self._current = Epoch(number=old.number + 1, registry=replacement)
            self.reloads += 1
            if old.refs > 0:
                self._retiring.append(old)
                pinned = old.refs
            else:
                old.retired = True
                pinned = 0
            return ReloadReport(
                old_epoch=old.number,
                new_epoch=self._current.number,
                pinned=pinned,
            )

    def wait_quiesced(self, timeout: float | None = None) -> bool:
        """Block until no superseded epoch is pinned (tests, drain)."""
        with self._cv:
            return self._cv.wait_for(lambda: not self._retiring, timeout)
