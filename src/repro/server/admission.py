"""Bounded admission for the serving daemon.

:class:`AdmissionGate` transplants the
:class:`~repro.jobs.runner.AdmissionQueue` semantics — a pending bound
with backpressure below it and load shedding at a watermark — onto the
shape an HTTP server needs.  There is no queue of items to hand to
workers: each request *is* its own thread, so the gate is a counter with
the same invariants:

* ``depth`` counts requests admitted but not yet completed;
* with ``shed_above`` set (validated ``<= max_pending``), a depth at or
  above the watermark **sheds immediately** — the caller turns that into
  a fast 503 with a :class:`ShedDecision` body, never a stuck connection;
* below the watermark but at ``max_pending``, the request **waits** on
  the condition variable, bounded by its own deadline, until a slot
  frees, the deadline expires, or the server starts draining —
  :meth:`wake` (called by drain) is observed immediately, mirroring the
  PR 7 condition-variable wakeup in the job queue.

Counters (``admitted`` / ``shed`` / ``refused_draining`` /
``refused_deadline`` / ``high_water``) are maintained under the lock;
the daemon mirrors them into :class:`~repro.core.metrics.PipelineMetrics`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass(slots=True)
class ShedDecision:
    """Why a request was refused admission (the body of its 503)."""

    reason: str  # "shed" | "draining" | "deadline"
    pending_at_admission: int
    shed_above: int | None
    max_pending: int

    def as_dict(self) -> dict[str, object]:
        return {
            "error": self.reason,
            "verdict": "UNKNOWN",
            "shed": {
                "pending_at_admission": self.pending_at_admission,
                "shed_above": self.shed_above,
                "max_pending": self.max_pending,
            },
        }


class AdmissionGate:
    """Bounded in-flight counter with a shed watermark (see module doc)."""

    def __init__(self, max_pending: int, *, shed_above: int | None = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if shed_above is not None and not (1 <= shed_above <= max_pending):
            raise ValueError(
                "shed_above must be in [1, max_pending]: the shed "
                "watermark has to fire before the blocking bound"
            )
        self.max_pending = max_pending
        self.shed_above = shed_above
        self._cv = threading.Condition()
        self._depth = 0
        self._stopped = False
        self.high_water = 0
        self.admitted = 0
        self.shed = 0
        self.refused_draining = 0
        self.refused_deadline = 0

    @property
    def depth(self) -> int:
        with self._cv:
            return self._depth

    def enter(self, *, deadline_at: float | None = None) -> ShedDecision | None:
        """Try to take a slot; ``None`` on success, the refusal otherwise.

        ``deadline_at`` is an absolute ``time.monotonic()`` instant; a
        request never waits past its own deadline for a slot (the
        no-stuck-connection contract).  A gate that has been
        :meth:`stop`-ped refuses immediately with reason ``draining``.
        """
        with self._cv:
            while True:
                if self._stopped:
                    self.refused_draining += 1
                    return ShedDecision(
                        "draining", self._depth, self.shed_above, self.max_pending
                    )
                if (
                    self.shed_above is not None
                    and self._depth >= self.shed_above
                ):
                    self.shed += 1
                    return ShedDecision(
                        "shed", self._depth, self.shed_above, self.max_pending
                    )
                if self._depth < self.max_pending:
                    self._depth += 1
                    self.high_water = max(self.high_water, self._depth)
                    self.admitted += 1
                    return None
                timeout = None
                if deadline_at is not None:
                    timeout = deadline_at - time.monotonic()
                    if timeout <= 0:
                        self.refused_deadline += 1
                        return ShedDecision(
                            "deadline",
                            self._depth,
                            self.shed_above,
                            self.max_pending,
                        )
                self._cv.wait(timeout)

    def exit(self) -> None:
        """Release a slot taken by a successful :meth:`enter`."""
        with self._cv:
            self._depth = max(0, self._depth - 1)
            self._cv.notify_all()

    def stop(self) -> None:
        """Refuse all future admissions (drain); waiting requests are
        woken and refused immediately.  Idempotent."""
        with self._cv:
            self._stopped = True
            self._cv.notify_all()

    def wait_empty(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has exited (drain barrier)."""
        with self._cv:
            return self._cv.wait_for(lambda: self._depth == 0, timeout)

    def wake(self) -> None:
        """Nudge waiters to re-check deadlines and stop state."""
        with self._cv:
            self._cv.notify_all()
