"""Resident serving daemon: warm fleet queries with graceful drain,
hot snapshot reload, and overload shedding.

The long-lived layer the ROADMAP's serving item calls for: a threaded
stdlib HTTP daemon (:class:`PolicyServer`) holding warm
:class:`~repro.core.pipeline.PolicyModel`\\ s via the PR 6
:class:`~repro.registry.PolicyRegistry`, with bounded admission
(:class:`AdmissionGate`), per-request deadlines that only tighten the
solver budget, epoch-swapped hot reload (:class:`EpochSwitch`), and a
drain path that finishes in-flight work before exiting
(:class:`DrainReport`).  See DESIGN §11.
"""

from repro.server.admission import AdmissionGate, ShedDecision
from repro.server.client import ServingClient
from repro.server.config import ServerConfig
from repro.server.daemon import DrainReport, PolicyServer
from repro.server.epochs import Epoch, EpochSwitch, ReloadReport

__all__ = [
    "AdmissionGate",
    "DrainReport",
    "Epoch",
    "EpochSwitch",
    "PolicyServer",
    "ReloadReport",
    "ServerConfig",
    "ServingClient",
    "ShedDecision",
]
