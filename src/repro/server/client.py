"""A minimal stdlib HTTP client for the serving daemon.

Used by the chaos suites, the serving benchmark, and scripts; it speaks
exactly the JSON protocol :mod:`repro.server.daemon` serves.  One
:class:`ServingClient` holds one keep-alive connection (HTTP/1.1), so a
latency benchmark measures the daemon, not TCP handshakes; connections
are re-established transparently after a drop.
"""

from __future__ import annotations

import http.client
import json


class ServingClient:
    """Tiny JSON-over-HTTP client; not thread-safe (one per thread)."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One round-trip; returns ``(status, parsed JSON body)``.

        Retries exactly once on a dropped keep-alive connection (the
        server may have closed it between requests); connection errors on
        the fresh connection propagate to the caller.
        """
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            parsed = {"raw": raw.decode("utf-8", "replace")}
        return response.status, parsed

    # ------------------------------------------------------------------
    # Endpoint wrappers
    # ------------------------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")

    def readyz(self) -> tuple[int, dict]:
        return self.request("GET", "/readyz")

    def stats(self) -> dict:
        status, body = self.request("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned {status}: {body}")
        return body

    def companies(self) -> list[str]:
        status, body = self.request("GET", "/companies")
        if status != 200:
            raise RuntimeError(f"/companies returned {status}: {body}")
        return list(body["companies"])

    def query(
        self,
        company: str,
        question: str,
        *,
        deadline_seconds: float | None = None,
        trace: bool = False,
        certify: bool | None = None,
    ) -> tuple[int, dict]:
        body: dict[str, object] = {"company": company, "question": question}
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        if trace:
            body["trace"] = True
        if certify is not None:
            body["certify"] = certify
        return self.request("POST", "/query", body)

    def fleet(
        self,
        question: str,
        companies: list[str] | None = None,
        *,
        max_workers: int | None = None,
        deadline_seconds: float | None = None,
    ) -> tuple[int, dict]:
        body: dict[str, object] = {"question": question}
        if companies is not None:
            body["companies"] = companies
        if max_workers is not None:
            body["max_workers"] = max_workers
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        return self.request("POST", "/fleet", body)

    def reload(self) -> tuple[int, dict]:
        return self.request("POST", "/reload")

    def drain(self) -> tuple[int, dict]:
        return self.request("POST", "/drain")
