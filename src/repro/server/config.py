"""Tunables for the resident serving daemon.

Mirrors the :class:`~repro.jobs.config.JobConfig` philosophy: every
robustness bound is explicit, validated at construction, and the
cross-field invariants (``shed_above <= max_pending``) are enforced here
so the admission gate can treat them as invariants rather than runtime
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(slots=True)
class ServerConfig:
    """Knobs for one :class:`~repro.server.daemon.PolicyServer`.

    The defaults favour *refusing load fast* over queueing it: a small
    in-flight bound, a shed watermark below it, and a per-request
    deadline that only ever tightens the solver budget.
    """

    #: Registry directory (see :class:`~repro.registry.PolicyRegistry`);
    #: every query resolves its company through the current epoch's
    #: manifest.
    root: str | Path
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (the bound address is
    #: reported by :attr:`PolicyServer.address`).
    port: int = 0
    #: Admission bound: at most this many requests executing at once.
    #: Requests beyond it wait (bounded by their deadline) for a slot.
    max_pending: int = 8
    #: Load-shed watermark: an in-flight depth at or above this sheds the
    #: request immediately — a fast 503 with a structured body, never a
    #: stuck connection.  Must be <= max_pending; None disables shedding
    #: (requests then wait out their deadline for a slot).
    shed_above: int | None = None
    #: Per-request wall-clock deadline in seconds.  A request may pass
    #: ``deadline_seconds`` to tighten it further; it can never loosen
    #: it.  Whatever remains after admission tightens the solver budget
    #: the same way (min, never max).
    default_deadline: float = 10.0
    #: LRU bound on warm models per epoch.
    max_warm: int = 32
    #: Companies to pre-load before reporting ready (and after each
    #: reload, before the epoch swap): 0 = none, -1 = every registered
    #: company, n > 0 = the first n (sorted).
    warm_on_start: int = 0
    #: Seconds a graceful drain waits for in-flight requests before
    #: giving up and reporting them as abandoned.
    drain_grace: float = 30.0
    #: Per-connection socket timeout (read/write); a client that stops
    #: mid-request cannot pin a handler thread forever.
    socket_timeout: float = 30.0
    #: Override the pipeline's certification default for served queries;
    #: None leaves it as configured.
    certify: bool | None = None
    #: Install SIGINT/SIGTERM handlers (graceful drain) while serving in
    #: the foreground.  Tests drive :meth:`PolicyServer.begin_drain`
    #: directly instead.
    handle_signals: bool = True
    #: Seconds between background-scrubber ticks (one snapshot hash-
    #: verified per tick, skipped while queries are in flight); None
    #: disables scrubbing.  See
    #: :class:`~repro.integrity.scrub.BackgroundScrubber`.
    scrub_interval: float | None = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.shed_above is not None and not (
            1 <= self.shed_above <= self.max_pending
        ):
            raise ValueError(
                "shed_above must be in [1, max_pending]: the shed "
                "watermark has to fire before the blocking bound, or a "
                "depth between the two would wait instead of shedding"
            )
        if self.default_deadline <= 0:
            raise ValueError("default_deadline must be > 0")
        if self.drain_grace <= 0:
            raise ValueError("drain_grace must be > 0")
        if self.socket_timeout <= 0:
            raise ValueError("socket_timeout must be > 0")
        if self.max_warm < 1:
            raise ValueError("max_warm must be >= 1")
        if self.warm_on_start < -1:
            raise ValueError("warm_on_start must be -1, 0, or a positive count")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.scrub_interval is not None and self.scrub_interval <= 0:
            raise ValueError("scrub_interval must be > 0 seconds, or None")
