"""The resident serving daemon: warm fleet queries over HTTP.

Every CLI invocation cold-starts the whole pipeline; :class:`PolicyServer`
keeps it resident.  One process holds a
:class:`~repro.registry.PolicyRegistry` (warm LRU of loaded models) behind
a threaded stdlib HTTP server and answers privacy-practice questions in
milliseconds instead of seconds.  Robustness is the headline:

* **bounded admission** — an :class:`~repro.server.admission.AdmissionGate`
  with the :class:`~repro.jobs.runner.AdmissionQueue` invariants; above
  the ``shed_above`` watermark a request gets a fast 503 with a
  structured shed body, never a stuck connection;
* **deadlines that only tighten** — each request carries a wall-clock
  deadline (``min(server default, client ask)``); whatever remains after
  admission tightens the solver budget the same way, never loosens it;
* **graceful drain** — SIGINT/SIGTERM (or ``POST /drain``) stops
  admissions immediately, lets in-flight requests finish, and exits with
  a :class:`DrainReport`;
* **hot reload** — ``POST /reload`` swaps in a freshly-read registry via
  an epoch handle (:mod:`repro.server.epochs`); requests already running
  keep their pinned old epoch until they complete, so a reload under
  sustained load loses zero in-flight queries.

Endpoints (JSON in/out)::

    GET  /healthz    liveness (200 while the process runs, even draining)
    GET  /readyz     readiness (503 once draining or before ready)
    GET  /stats      queue depth, latency p50/p95/p99, epochs, metrics
    GET  /companies  the current epoch's roster
    POST /query      {"company", "question", ["deadline_seconds"], ["trace"]}
    POST /fleet      {"question", ["companies"], ["max_workers"]}
    POST /reload     swap to a freshly-read (and pre-warmed) registry
    POST /drain      begin a graceful drain over HTTP
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.metrics import LatencyReservoir, PipelineMetrics
from repro.core.pipeline import PolicyPipeline
from repro.errors import RegistryError, ReproError, ServerError, SnapshotError
from repro.jobs.config import JobConfig
from repro.registry.registry import PolicyRegistry
from repro.server.admission import AdmissionGate, ShedDecision
from repro.server.config import ServerConfig
from repro.server.epochs import EpochSwitch

#: Request bodies past this are refused with 413 (a client cannot make a
#: handler thread buffer unbounded input).
MAX_BODY_BYTES = 1 << 20


@dataclass(slots=True)
class DrainReport:
    """What a graceful drain observed (printed by the CLI on exit)."""

    reason: str
    in_flight_at_drain: int
    completed_during_drain: int
    refused_during_drain: int
    served_total: int
    drained_clean: bool  # every in-flight request finished within grace
    seconds: float

    def as_dict(self) -> dict[str, object]:
        return {
            "reason": self.reason,
            "in_flight_at_drain": self.in_flight_at_drain,
            "completed_during_drain": self.completed_during_drain,
            "refused_during_drain": self.refused_during_drain,
            "served_total": self.served_total,
            "drained_clean": self.drained_clean,
            "seconds": round(self.seconds, 6),
        }

    def summary(self) -> str:
        state = "clean" if self.drained_clean else "GRACE EXPIRED"
        return (
            f"drain ({self.reason}): {state}; "
            f"{self.in_flight_at_drain} in flight at drain, "
            f"{self.completed_during_drain} completed during drain, "
            f"{self.refused_during_drain} refused, "
            f"{self.served_total} served total, "
            f"{self.seconds:.2f}s"
        )


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    policy: "PolicyServer"

    def handle_error(self, request, client_address):  # noqa: ARG002
        # A client that vanished mid-response (kill-mid-request chaos)
        # must not spew tracebacks or take the daemon down.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionError, socket.timeout)):
            self.policy.count_connection_error()
            return
        self.policy.count_connection_error()


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.1 keep-alive lets the bench reuse connections; every
    # response carries an explicit Content-Length.  Nagle must be off:
    # headers and body go out as separate writes, and batching the first
    # behind the peer's delayed ACK would put a flat ~40 ms under every
    # keep-alive response — dwarfing the warm query it carries.
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True
    server: _HTTPServer

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def setup(self) -> None:
        # No client may pin a handler thread with a half-sent request.
        self.request.settimeout(self.server.policy.config.socket_timeout)
        super().setup()

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the caller's job, not stderr's

    def _send_json(self, status: int, payload: dict, *, retry_after: bool = False) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict | None:
        """Parse the JSON request body; sends the error response itself
        and returns ``None`` when the body is unusable."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad content-length"})
            return None
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "body too large"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        daemon = self.server.policy
        try:
            if self.path == "/healthz":
                self._send_json(200, {"status": "alive"})
            elif self.path == "/readyz":
                if daemon.ready and not daemon.draining:
                    self._send_json(200, {"ready": True})
                else:
                    self._send_json(
                        503, {"ready": False, "draining": daemon.draining}
                    )
            elif self.path == "/stats":
                self._send_json(200, daemon.stats())
            elif self.path == "/companies":
                companies = daemon.companies()
                self._send_json(
                    200, {"companies": companies, "count": len(companies)}
                )
            elif self.path == "/":
                self._send_json(200, {"endpoints": sorted(_ROUTES)})
            else:
                self._send_json(404, {"error": f"no route {self.path}"})
        except Exception as exc:  # noqa: BLE001 - handler isolation boundary
            self._crashed(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        daemon = self.server.policy
        try:
            if self.path == "/query":
                body = self._read_body()
                if body is not None:
                    status, payload, shed = daemon.handle_query(body)
                    self._send_json(status, payload, retry_after=shed)
            elif self.path == "/fleet":
                body = self._read_body()
                if body is not None:
                    status, payload, shed = daemon.handle_fleet(body)
                    self._send_json(status, payload, retry_after=shed)
            elif self.path == "/reload":
                self._send_json(*daemon.handle_reload())
            elif self.path == "/drain":
                first = daemon.begin_drain("http")
                self._send_json(202, {"draining": True, "initiated": first})
            else:
                self._send_json(404, {"error": f"no route {self.path}"})
        except Exception as exc:  # noqa: BLE001 - handler isolation boundary
            self._crashed(exc)

    def _crashed(self, exc: Exception) -> None:
        try:
            self._send_json(
                500, {"error": "internal", "type": type(exc).__name__,
                      "message": str(exc)}
            )
        except Exception:  # noqa: BLE001 - client already gone
            self.server.policy.count_connection_error()


_ROUTES = (
    "GET /healthz",
    "GET /readyz",
    "GET /stats",
    "GET /companies",
    "POST /query",
    "POST /fleet",
    "POST /reload",
    "POST /drain",
)


class PolicyServer:
    """A resident, drainable, hot-reloadable policy-query daemon.

    ``query_fn(model, question, budget, certify)`` is the execution seam
    (the default calls :meth:`PolicyPipeline.query`); chaos tests
    substitute blocking or failing functions to create deterministic
    overload without timing races — the same pattern
    :class:`~repro.jobs.runner.JobRunner` uses.
    """

    def __init__(
        self,
        config: ServerConfig,
        *,
        pipeline: PolicyPipeline | None = None,
        query_fn=None,
    ) -> None:
        self.config = config
        self.pipeline = pipeline if pipeline is not None else PolicyPipeline()
        if config.certify is not None:
            self.pipeline.config.certify = config.certify
        self._query_fn = query_fn if query_fn is not None else self._default_query
        self.gate = AdmissionGate(
            config.max_pending, shed_above=config.shed_above
        )
        self.metrics = PipelineMetrics(queries=0, latency=LatencyReservoir())
        self._metrics_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._drain_reason: str | None = None
        self._drain_requested = threading.Event()
        self._signal_reason: str | None = None
        self._served_at_drain = 0
        self._in_flight_at_drain = 0
        self._drain_started = 0.0
        self._connection_errors = 0
        self._epochs: EpochSwitch[PolicyRegistry] | None = None
        self._httpd: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self.scrubber = None  # BackgroundScrubber when scrub_interval is set
        self.ready = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _build_registry(self) -> PolicyRegistry:
        registry = PolicyRegistry(
            self.config.root,
            pipeline=self.pipeline,
            max_warm=self.config.max_warm,
        )
        warm = self.config.warm_on_start
        if warm:
            roster = registry.companies()
            registry.warm(roster if warm < 0 else roster[:warm])
        return registry

    def start(self) -> None:
        """Bind, load the registry, pre-warm, and begin serving.

        Raises :class:`ServerError` (CLI exit code 7) when the socket
        cannot be bound or the registry cannot serve — an empty root is
        refused rather than served as a wall of 404s.
        """
        if self._httpd is not None:
            raise ServerError("server already started")
        self._epochs = EpochSwitch(self._build_registry)
        if not len(self._epochs.current_registry):
            raise ServerError(
                f"registry at {self.config.root} has no companies; "
                "mint a fleet first (repro-policy registry mint)"
            )
        try:
            httpd = _HTTPServer(
                (self.config.host, self.config.port), _Handler
            )
        except OSError as exc:
            raise ServerError(
                f"failed to bind {self.config.host}:{self.config.port}: {exc}"
            ) from exc
        httpd.policy = self
        self._httpd = httpd
        self._serve_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="policy-server-accept",
            daemon=True,
        )
        self._serve_thread.start()
        if self.config.scrub_interval is not None:
            from repro.integrity.scrub import BackgroundScrubber

            self.scrubber = BackgroundScrubber(
                self.config.root,
                interval=self.config.scrub_interval,
                gate=self.gate,
                metrics=self.metrics,
                metrics_lock=self._metrics_lock,
            )
            self.scrubber.start()
        self.ready = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 to the real one."""
        if self._httpd is None:
            raise ServerError("server is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def draining(self) -> bool:
        return self._drain_reason is not None

    def begin_drain(self, reason: str) -> bool:
        """Stop admitting work; in-flight requests finish.  Idempotent —
        returns True only for the call that initiated the drain."""
        with self._drain_lock:
            if self._drain_reason is not None:
                return False
            self._drain_reason = reason
            self._served_at_drain = self.metrics.server_requests
            self._in_flight_at_drain = self.gate.depth
            self._drain_started = time.monotonic()
            with self._metrics_lock:
                self.metrics.server_drains += 1
        # Outside the drain lock: waiting admitters are woken and refused.
        self.gate.stop()
        self._drain_requested.set()
        return True

    def await_drained(self, timeout: float | None = None) -> DrainReport:
        """Block until in-flight requests finish (bounded by
        ``drain_grace`` unless overridden), then stop the listener and
        report.  Requires :meth:`begin_drain` to have been called."""
        if self._drain_reason is None:
            raise ServerError("await_drained before begin_drain")
        grace = self.config.drain_grace if timeout is None else timeout
        clean = self.gate.wait_empty(grace)
        if self._epochs is not None:
            self._epochs.wait_quiesced(0.5)
        self.stop()
        with self._metrics_lock:
            served = self.metrics.server_requests
        report = DrainReport(
            reason=self._drain_reason,
            in_flight_at_drain=self._in_flight_at_drain,
            completed_during_drain=served - self._served_at_drain,
            refused_during_drain=self.gate.refused_draining,
            served_total=served,
            drained_clean=clean,
            seconds=time.monotonic() - self._drain_started,
        )
        return report

    def stop(self) -> None:
        """Hard-stop the listener (no drain, no waiting); used by the
        kill-mid-request chaos suite and as the tail of a drain."""
        httpd, self._httpd = self._httpd, None
        self.ready = False
        if self.scrubber is not None:
            self.scrubber.stop()
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        # Reap the solver worker pool (no-op for the thread backend) so
        # no worker process ever outlives the server.
        self.pipeline.shutdown()

    def serve_until_drained(self) -> DrainReport:
        """Foreground loop for the CLI: serve until a signal or ``POST
        /drain`` begins a drain, then finish in-flight and report.

        The signal handlers only record the signal name (no locks are
        taken in handler context — the lesson the job runner's drain
        path encodes); this loop notices and runs the actual drain in
        normal context.
        """
        old_handlers = self._install_signal_handlers()
        try:
            while not self._drain_requested.is_set():
                if self._signal_reason is not None:
                    self.begin_drain(self._signal_reason)
                    break
                self._drain_requested.wait(0.05)
        finally:
            self._restore_signal_handlers(old_handlers)
        return self.await_drained()

    def _install_signal_handlers(self):
        if not self.config.handle_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        handlers = {}

        def on_signal(signum, frame):  # noqa: ARG001 - signal API
            self._signal_reason = signal.Signals(signum).name

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[signum] = signal.signal(signum, on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return handlers

    def _restore_signal_handlers(self, handlers) -> None:
        if not handlers:
            return
        for signum, handler in handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def count_connection_error(self) -> None:
        with self._metrics_lock:
            self._connection_errors += 1

    def companies(self) -> list[str]:
        if self._epochs is None:
            return []
        return self._epochs.current_registry.companies()

    def stats(self) -> dict[str, object]:
        epochs = self._epochs
        # Refresh provider/breaker counters from the wrapper stack before
        # merging, so /stats reports the boundary's live state.
        llm_state = self.pipeline.sync_resilience_metrics()
        with self._metrics_lock:
            self.metrics.queue_depth = self.gate.depth
            merged_metrics = PipelineMetrics(queries=0)
            merged_metrics.merge(self.metrics)
        merged_metrics.merge(self.pipeline.metrics)
        latency = self.metrics.latency
        return {
            "epoch": 0 if epochs is None else epochs.current_epoch,
            "reloads": 0 if epochs is None else epochs.reloads,
            "retiring": [] if epochs is None else epochs.retiring(),
            "companies": len(self.companies()),
            "draining": self.draining,
            "connection_errors": self._connection_errors,
            "queue": {
                "depth": self.gate.depth,
                "high_water": self.gate.high_water,
                "max_pending": self.gate.max_pending,
                "shed_above": self.gate.shed_above,
                "admitted": self.gate.admitted,
                "shed": self.gate.shed,
                "refused_draining": self.gate.refused_draining,
                "refused_deadline": self.gate.refused_deadline,
            },
            "latency": latency.as_dict() if latency is not None else None,
            "pool": self.pipeline.execution_stats(),
            "llm": llm_state,
            "integrity": {
                "findings": merged_metrics.integrity_findings,
                "repairs": merged_metrics.integrity_repairs,
                "unrepairable": merged_metrics.integrity_unrepairable,
                "recent": [
                    f.as_dict() for f in self.pipeline.integrity_log[-8:]
                ],
            },
            "scrub": None if self.scrubber is None else self.scrubber.stats(),
            "metrics": merged_metrics.as_dict(),
        }

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _deadline_for(self, body: dict) -> float | None:
        """Effective per-request deadline: the client may tighten the
        server default, never loosen it.  Returns None on a bad value
        (the caller 400s)."""
        requested = body.get("deadline_seconds")
        if requested is None:
            return self.config.default_deadline
        if not isinstance(requested, (int, float)) or requested <= 0:
            return None
        return min(float(requested), self.config.default_deadline)

    def _tightened_budget(self, remaining: float):
        base = self.pipeline.config.solver_budget
        effective = (
            remaining
            if base.timeout_seconds is None
            else min(base.timeout_seconds, remaining)
        )
        return replace(base, timeout_seconds=effective)

    def _default_query(self, model, question, budget, certify):
        return self.pipeline.query(
            model, question, budget=budget, certify=certify
        )

    def _record(self, seconds: float) -> None:
        with self._metrics_lock:
            self.metrics.server_requests += 1
            self.metrics.queue_high_water = max(
                self.metrics.queue_high_water, self.gate.high_water
            )
            if self.metrics.latency is not None:
                self.metrics.latency.record(seconds)

    def handle_query(self, body: dict) -> tuple[int, dict, bool]:
        """Execute one admission-gated, deadline-bounded query.

        Returns ``(status, payload, was_shed)``; never raises — every
        failure mode maps to a structured JSON body.
        """
        company = body.get("company")
        question = body.get("question")
        if not isinstance(company, str) or not isinstance(question, str):
            return 400, {"error": "body needs string 'company' and 'question'"}, False
        deadline = self._deadline_for(body)
        if deadline is None:
            return 400, {"error": "deadline_seconds must be a positive number"}, False
        deadline_at = time.monotonic() + deadline
        decision = self.gate.enter(deadline_at=deadline_at)
        if decision is not None:
            return 503, {**decision.as_dict(), "company": company}, True
        started = time.monotonic()
        try:
            with self._epochs.acquire() as epoch:
                try:
                    model = epoch.registry.get_model(company)
                except RegistryError as exc:
                    return 404, {"error": "unknown company", "message": str(exc)}, False
                except SnapshotError as exc:
                    # Corrupt shard: isolated to this company, like the
                    # fleet path's per-company ErrorOutcome.
                    return 500, {
                        "error": "snapshot",
                        "company": company,
                        "message": str(exc),
                    }, False
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    with self._metrics_lock:
                        self.metrics.deadline_refusals += 1
                    refusal = ShedDecision(
                        "deadline",
                        self.gate.depth,
                        self.gate.shed_above,
                        self.gate.max_pending,
                    )
                    return 503, {**refusal.as_dict(), "company": company}, True
                certify = body.get("certify")
                if certify is None:
                    certify = self.pipeline.config.certify
                try:
                    outcome = self._query_fn(
                        model,
                        question,
                        self._tightened_budget(remaining),
                        bool(certify),
                    )
                except ReproError as exc:
                    with self._metrics_lock:
                        self.metrics.query_errors += 1
                    return 500, {
                        "error": "query",
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "company": company,
                    }, False
                payload: dict[str, object] = {
                    "company": company,
                    "question": question,
                    "verdict": outcome.verdict.value,
                    "revision": model.revision,
                    "epoch": epoch.number,
                    "seconds": round(time.monotonic() - started, 6),
                }
                if body.get("trace"):
                    payload["trace"] = outcome.as_dict()
                return 200, payload, False
        finally:
            self.gate.exit()
            self._record(time.monotonic() - started)

    def handle_fleet(self, body: dict) -> tuple[int, dict, bool]:
        """Fan one question across the fleet through the job runner.

        Takes one admission slot (it is one request); the per-company
        solver budgets are tightened by the request deadline via
        ``JobConfig.query_timeout``.
        """
        question = body.get("question")
        if not isinstance(question, str):
            return 400, {"error": "body needs string 'question'"}, False
        companies = body.get("companies")
        if companies is not None and (
            not isinstance(companies, list)
            or not all(isinstance(c, str) for c in companies)
        ):
            return 400, {"error": "'companies' must be a list of strings"}, False
        max_workers = body.get("max_workers")
        if max_workers is not None and (
            not isinstance(max_workers, int) or max_workers < 1
        ):
            return 400, {"error": "'max_workers' must be a positive integer"}, False
        deadline = self._deadline_for(body)
        if deadline is None:
            return 400, {"error": "deadline_seconds must be a positive number"}, False
        deadline_at = time.monotonic() + deadline
        decision = self.gate.enter(deadline_at=deadline_at)
        if decision is not None:
            return 503, {**decision.as_dict(), "question": question}, True
        started = time.monotonic()
        try:
            with self._epochs.acquire() as epoch:
                remaining = deadline_at - time.monotonic()
                try:
                    report = epoch.registry.query_fleet(
                        question,
                        companies,
                        config=JobConfig(
                            max_workers=max_workers,
                            handle_signals=False,
                            query_timeout=max(0.001, remaining),
                        ),
                    )
                except RegistryError as exc:
                    return 404, {"error": "registry", "message": str(exc)}, False
                verdicts = {
                    company: None if outcome is None else outcome.verdict.value
                    for company, outcome in report.per_company()
                }
                return 200, {
                    "question": question,
                    "epoch": epoch.number,
                    "companies": verdicts,
                    "counts": report.job.verdict_counts(),
                    "aborted": report.aborted,
                    "seconds": round(time.monotonic() - started, 6),
                }, False
        finally:
            self.gate.exit()
            self._record(time.monotonic() - started)

    def handle_reload(self) -> tuple[int, dict]:
        """Hot-swap to a freshly-read registry (serialized; in-flight
        requests keep their pinned epoch until they finish)."""
        with self._reload_lock:
            started = time.monotonic()
            report = self._epochs.reload()
            report.seconds = time.monotonic() - started
            with self._metrics_lock:
                self.metrics.server_reloads += 1
        return 200, {
            **report.as_dict(),
            "companies": len(self._epochs.current_registry),
        }
