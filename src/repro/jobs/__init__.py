"""Supervised batch jobs: watchdog, admission control, checkpoint/resume.

The operability layer over
:meth:`~repro.core.pipeline.PolicyPipeline.query_batch`: a
:class:`JobRunner` runs a question suite with per-query heartbeats and a
stall watchdog (hung workers are cooperatively cancelled and replaced,
their slots filled with structured UNKNOWNs), a bounded admission queue
(backpressure by default, load shedding above a configurable depth), and
an append-only fsync'd checkpoint journal so a killed job resumes from
its last committed record instead of starting over.

Typical use::

    from repro.jobs import JobConfig, JobRunner

    runner = JobRunner(pipeline, model, JobConfig(
        checkpoint_dir="audit.ckpt", stall_after=60.0,
    ))
    result = runner.run(questions)        # Ctrl-C drains gracefully
    if result.aborted:
        result = JobRunner(pipeline, model, runner.config).resume()

Deterministic fault injection for the supervision tests lives in
:mod:`repro.jobs.faults` (imported explicitly, not re-exported — test
infrastructure).
"""

from repro.jobs.checkpoint import (
    CheckpointJournal,
    CheckpointedOutcome,
    JournalRecovery,
    read_journal,
)
from repro.jobs.config import JobConfig
from repro.jobs.runner import (
    AdmissionQueue,
    JobResult,
    JobRunner,
    ShedOutcome,
    StallOutcome,
)
from repro.jobs.watchdog import MonotonicClock, StallReport, Watchdog

__all__ = [
    "AdmissionQueue",
    "CheckpointJournal",
    "CheckpointedOutcome",
    "JobConfig",
    "JobResult",
    "JobRunner",
    "JournalRecovery",
    "MonotonicClock",
    "ShedOutcome",
    "StallOutcome",
    "StallReport",
    "Watchdog",
    "read_journal",
]
