"""Tunables for supervised batch jobs.

Kept in its own module (rather than on :mod:`repro.jobs.runner`) so
:class:`~repro.core.pipeline.PipelineConfig` can carry a ``jobs`` field
without a circular import: the pipeline annotates the field lazily and the
runner imports the pipeline, never the reverse at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(slots=True)
class JobConfig:
    """Supervision knobs for one :class:`~repro.jobs.runner.JobRunner`.

    The defaults keep a job byte-identical to a plain
    :meth:`~repro.core.pipeline.PolicyPipeline.query_batch` run: no
    checkpointing, no watchdog, admission bounded generously with pure
    backpressure (nothing shed).
    """

    max_workers: int | None = None  # None: min(DEFAULT_BATCH_WORKERS, n)
    # Admission queue bound: at most this many queries admitted-but-not-
    # completed at once.  Batch feeding blocks (backpressure) at the
    # bound, unless shed_above converts the overflow to an answer first.
    max_pending: int = 64
    # Load shedding: once the pending depth reaches this, further queries
    # are refused and recorded as ShedOutcome UNKNOWNs instead of
    # blocking.  Must be <= max_pending (validated below), so a set
    # threshold always fires before the blocking bound — admission then
    # never blocks.  None disables shedding entirely: admission only
    # ever blocks (pure backpressure), nothing is shed.
    shed_above: int | None = None
    # Seconds an in-flight query may go without a heartbeat before the
    # watchdog declares it stalled, cancels it cooperatively, replaces
    # the worker, and records UNKNOWN + StallReport.  None disables the
    # watchdog entirely.
    stall_after: float | None = None
    # Watchdog scan period; None derives stall_after / 4.  Tests that
    # drive a fake clock call JobRunner.scan_stalls() directly and pass
    # watchdog_thread=False instead.
    watchdog_interval: float | None = None
    watchdog_thread: bool = True
    # Directory for the append-only checkpoint journal; None disables
    # checkpointing (and therefore resume).
    checkpoint_dir: str | Path | None = None
    checkpoint_fsync: bool = True
    # Per-query wall-clock ceiling composed onto the solver budget: the
    # effective solver deadline is min(budget.timeout_seconds, this).
    # None leaves the configured budget untouched (the default solver
    # deadline is unchanged).
    query_timeout: float | None = None
    # Install SIGINT/SIGTERM handlers for graceful drain while run() is
    # active (main thread only; nested runners leave handlers alone).
    handle_signals: bool = True

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.watchdog_interval is not None and self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be > 0")
        if self.shed_above is not None and self.shed_above < 1:
            raise ValueError("shed_above must be >= 1")
        if self.shed_above is not None and self.shed_above > self.max_pending:
            raise ValueError(
                "shed_above must be <= max_pending (the shed threshold "
                "must fire before the blocking bound, or a pending depth "
                "between the two would block instead of shedding)"
            )
        if self.stall_after is not None and self.stall_after <= 0:
            raise ValueError("stall_after must be > 0")
        if self.query_timeout is not None and self.query_timeout <= 0:
            raise ValueError("query_timeout must be > 0")
