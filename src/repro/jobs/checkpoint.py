"""Append-only, crash-resumable checkpoint journal for batch jobs.

One journal file (``journal.jsonl``) per job: a header record naming the
question list and model identity, then one record per completed query in
completion order.  Every line is a self-checking envelope —
``{"sha256": <hex>, "record": {...}}`` with the digest taken over the
canonical JSON of the record — appended through
:func:`repro.store.atomic.append_durable_line` (write + flush + fsync), so
a kill can lose at most the record being appended.

Recovery (:func:`read_journal`) tolerates exactly the corruptions an
append-only log can suffer:

* a **torn tail** — the final line was cut mid-write by a crash; it fails
  to parse (or fails its checksum) and the journal recovers to the last
  complete prefix.  :class:`CheckpointJournal` also *repairs* the tear on
  reopen (truncating back to the last newline) — otherwise the resumed
  run's first append would coalesce onto the torn fragment and every
  record committed after the crash would fall outside the trusted prefix
  of the *next* recovery;
* a **duplicated record** — an append replayed after an ill-timed crash;
  the first occurrence of an index wins and the duplicate is counted, not
  trusted.

Anything *before* the tail that fails its checksum is real corruption:
recovery stops at it (prefix semantics), reports it, and the resumed job
re-executes everything past that point — never trusts a damaged record.

Restored results come back as :class:`CheckpointedOutcome`: a verdict plus
the exact trace dict the original outcome serialized, so a resumed job's
final outcome list is byte-identical (``as_dict`` for ``as_dict``) to an
uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.core.metrics import PipelineMetrics
from repro.core.verify import Verdict
from repro.store.atomic import StepHook, append_durable_line, fsync_dir

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1

#: Record kinds a journal line may carry.
KIND_HEADER = "header"
KIND_OUTCOME = "outcome"  # QueryOutcome trace
KIND_ERROR = "error"  # ErrorOutcome trace (fault-isolated failure)
KIND_STALL = "stall"  # StallOutcome trace (watchdog replacement)
KIND_SHED = "shed"  # ShedOutcome trace (refused by admission control)


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def questions_digest(questions: list[str]) -> str:
    """The digest binding a journal header to its question suite."""
    return hashlib.sha256("\n".join(questions).encode("utf-8")).hexdigest()


def _truncate_torn_tail(path: Path) -> bool:
    """Truncate a torn (newline-less) final line left by a crash.

    Reopening in append mode without this would coalesce the next record
    onto the torn fragment, making that line unreadable — and, since
    recovery is prefix-based, silently untrusting every record appended
    after the reopen.  Returns True when a tear was repaired.
    """
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return False
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return False
        # Scan backwards for the last newline; everything after it is the
        # torn fragment a kill left mid-append.
        keep = 0
        pos = size
        chunk = 4096
        while pos > 0:
            start = max(0, pos - chunk)
            handle.seek(start)
            data = handle.read(pos - start)
            cut = data.rfind(b"\n")
            if cut != -1:
                keep = start + cut + 1
                break
            pos = start
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def repair_torn_tail(path: str | Path) -> bool:
    """Public seam for the integrity repair planner: truncate a torn
    final line in place (see :func:`_truncate_torn_tail`).  Returns True
    when a tear was found and repaired."""
    return _truncate_torn_tail(Path(path))


def journal_line(record: dict) -> str:
    """Envelope one record as a self-checking journal line."""
    payload = _canonical(record)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return json.dumps(
        {"sha256": digest, "record": record},
        sort_keys=True,
        separators=(",", ":"),
    )


def _decode_line(line: str) -> dict | None:
    """The record carried by ``line``, or None if torn/corrupt."""
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("record")
    digest = envelope.get("sha256")
    if not isinstance(record, dict) or not isinstance(digest, str):
        return None
    payload = _canonical(record)
    if hashlib.sha256(payload.encode("utf-8")).hexdigest() != digest:
        return None
    return record


def decode_journal_line(line: str) -> dict | None:
    """Public seam for the integrity walkers: the record carried by one
    journal line, or ``None`` when the line is torn or corrupt."""
    return _decode_line(line)


@dataclass(slots=True)
class JournalRecovery:
    """What :func:`read_journal` found (and refused to trust)."""

    header: dict | None = None
    completed: dict[int, dict] = field(default_factory=dict)
    records_read: int = 0
    torn_tail: bool = False  # final line incomplete or checksum-invalid
    duplicates: int = 0  # replayed appends dropped (first occurrence wins)

    def summary(self) -> str:
        parts = [f"{len(self.completed)} completed records"]
        if self.torn_tail:
            parts.append("torn tail dropped")
        if self.duplicates:
            parts.append(f"{self.duplicates} duplicate records ignored")
        return "journal recovery: " + ", ".join(parts)


def read_journal(path: str | Path) -> JournalRecovery:
    """Recover the last complete prefix of a checkpoint journal.

    Lines are consumed in order; the first line that fails to parse or
    fails its checksum ends the trusted prefix (everything after it is
    ignored — an append-only log has no way to vouch for records past a
    corruption).  Duplicate indices within the prefix are dropped.
    """
    recovery = JournalRecovery()
    path = Path(path)
    if not path.exists():
        return recovery
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            record = _decode_line(stripped)
            if record is None:
                recovery.torn_tail = True
                break
            recovery.records_read += 1
            kind = record.get("kind")
            if kind == KIND_HEADER:
                if recovery.header is None:
                    recovery.header = record
                continue
            index = record.get("index")
            if not isinstance(index, int):
                recovery.torn_tail = True
                break
            if index in recovery.completed:
                recovery.duplicates += 1
                continue
            recovery.completed[index] = record
    return recovery


@dataclass(slots=True)
class CheckpointedOutcome:
    """A finished result restored from the journal instead of re-executed.

    Holds the exact trace dict the original outcome serialized, so
    ``as_dict()`` — and therefore any serialized comparison of a resumed
    run against an uninterrupted one — is byte-identical.  Restored
    outcomes carry empty metrics (the work was paid for before the crash;
    ``JobResult.restored`` counts them).
    """

    question: str
    kind: str  # KIND_OUTCOME / KIND_ERROR / KIND_STALL
    verdict: Verdict
    trace: dict
    metrics: PipelineMetrics = field(
        default_factory=lambda: PipelineMetrics(queries=0)
    )

    @property
    def failed(self) -> bool:
        return self.kind == KIND_ERROR

    @property
    def restored(self) -> bool:
        return True

    def summary(self) -> str:
        return (
            f"query: {self.question}\n"
            f"verdict: {self.verdict} (restored from checkpoint)"
        )

    def as_dict(self, *, include_metrics: bool = False) -> dict[str, object]:
        return self.trace


class CheckpointJournal:
    """Writer half of the journal: fsync'd appends, one open handle.

    Opening an existing journal repairs a torn tail first (see
    :func:`_truncate_torn_tail`); :attr:`repaired_tail` records whether a
    tear was found.  Not thread-safe by itself — the :class:`~repro.jobs.runner.JobRunner`
    serializes appends under its commit lock, which also pins the record
    order for a single-worker run.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        step: StepHook | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.fsync = fsync
        self._step = step
        self.records_written = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        self.repaired_tail = existed and _truncate_torn_tail(self.path)
        self._handle: IO[str] = open(self.path, "a", encoding="utf-8")
        if not existed:
            # Make the (empty) journal itself durable before any record,
            # so a crash between creation and the first append cannot
            # resurrect an older unlinked file.
            fsync_dir(self.directory)

    def write_header(
        self,
        questions: list[str],
        *,
        company: str,
        revision: int,
    ) -> None:
        digest = questions_digest(list(questions))
        self._append(
            {
                "kind": KIND_HEADER,
                "version": JOURNAL_VERSION,
                "company": company,
                "revision": revision,
                "questions": list(questions),
                "questions_sha256": digest,
            },
            label="header",
        )

    def append_result(
        self, index: int, question: str, kind: str, verdict: Verdict, trace: dict
    ) -> None:
        self._append(
            {
                "kind": kind,
                "index": index,
                "question": question,
                "verdict": verdict.value,
                "trace": trace,
            },
            label=f"record:{index}",
        )

    def _append(self, record: dict, *, label: str) -> None:
        append_durable_line(
            self._handle,
            journal_line(record),
            fsync=self.fsync,
            step=self._step,
            label=label,
        )
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                try:
                    os.fsync(self._handle.fileno())
                except OSError:  # pragma: no cover - handle already gone
                    pass
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def restore_outcome(record: dict) -> CheckpointedOutcome:
    """A :class:`CheckpointedOutcome` for one recovered journal record."""
    return CheckpointedOutcome(
        question=str(record.get("question", "")),
        kind=str(record.get("kind", KIND_OUTCOME)),
        verdict=Verdict(record.get("verdict", Verdict.UNKNOWN.value)),
        trace=dict(record.get("trace", {})),
    )
