"""Deterministic fault injection for the job-supervision test suites.

Complements :mod:`repro.resilience.faults` (content-keyed LLM faults) and
:mod:`repro.store.faults` (crash-step injection, which the checkpoint
kill-matrix reuses directly) with the two primitives supervision tests
need:

* :class:`FakeClock` — a manually advanced monotonic clock, so watchdog
  stall detection is exercised with zero real waiting and no scheduler
  dependence;
* :class:`HangingQueryFn` — a ``query_fn`` seam for
  :class:`~repro.jobs.runner.JobRunner` that hangs *designated questions*
  (by exact text, never by call order) until cooperatively cancelled or
  explicitly released, modelling a wedged worker the watchdog must
  replace.

Test infrastructure, not production code: nothing in the jobs package
imports this module.
"""

from __future__ import annotations

import threading


class FakeClock:
    """Deterministic clock: time moves only when the test advances it.

    ``sleep`` advances time instead of waiting, so code paths that pace
    themselves off the clock run instantly under test.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += seconds
            return self._now


class HangingQueryFn:
    """A ``query_fn`` that hangs designated questions until cancelled.

    Non-designated questions delegate to ``pipeline.query`` with the same
    signature the runner's default uses.  A designated question sets
    ``hang_started`` (so the test knows the worker is wedged), then blocks
    until either the test calls :meth:`release` or the runner's watchdog
    cancels the worker — the cooperative-cancellation path a replaced
    worker takes to retire instead of leaking forever.
    """

    def __init__(
        self,
        pipeline,
        model,
        *,
        hang_questions: tuple[str, ...] = (),
        poll: float = 0.005,
    ) -> None:
        self.pipeline = pipeline
        self.model = model
        self._hang = {q.strip().lower() for q in hang_questions}
        self._poll = poll
        self.hang_started = threading.Event()
        self._release = threading.Event()
        self.hangs = 0
        self.cancelled_hangs = 0
        self._lock = threading.Lock()

    def is_designated(self, question: str) -> bool:
        return question.strip().lower() in self._hang

    def release(self) -> None:
        """Un-wedge every hanging (and future designated) call."""
        self._release.set()

    def __call__(self, index, question, certify, heartbeat):
        if self.is_designated(question) and not self._release.is_set():
            with self._lock:
                self.hangs += 1
            self.hang_started.set()
            # Real waiting (tiny poll), but bounded by cancel/release —
            # the hang models lost liveness, not lost CPU.
            while not self._release.is_set():
                if heartbeat.cancelled.is_set():
                    with self._lock:
                        self.cancelled_hangs += 1
                    # The runner discards any result from a cancelled
                    # worker; return value is irrelevant by construction.
                    return self.pipeline.query(
                        self.model, question, certify=certify
                    )
                heartbeat.cancelled.wait(self._poll)
        return self.pipeline.query(self.model, question, certify=certify)


class CountingQueryFn:
    """A ``query_fn`` that counts executions per question (thread-safe).

    The crash-resume suites use it to prove no query is executed twice
    past its committed checkpoint record.
    """

    def __init__(self, pipeline, model) -> None:
        self.pipeline = pipeline
        self.model = model
        self.executions: dict[str, int] = {}
        self.by_index: dict[int, int] = {}
        self._lock = threading.Lock()

    def __call__(self, index, question, certify, heartbeat):
        with self._lock:
            self.executions[question] = self.executions.get(question, 0) + 1
            self.by_index[index] = self.by_index.get(index, 0) + 1
        return self.pipeline.query(self.model, question, certify=certify)
