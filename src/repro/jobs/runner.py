"""Supervised batch jobs: the :class:`JobRunner` around ``query_batch``.

``PolicyPipeline.query_batch`` fans a question suite over worker threads
and isolates per-query *exceptions* — but a hung worker stalls the whole
batch forever, a process kill discards every finished verdict, and there
is no admission bound between a flooding caller and worker memory.  The
runner adds the three supervision layers a long-running audit needs:

* **liveness** — per-query heartbeats scanned by a
  :class:`~repro.jobs.watchdog.Watchdog`; a stalled query is cooperatively
  cancelled, its worker replaced, and its slot filled with a structured
  UNKNOWN (:class:`StallOutcome` carrying a
  :class:`~repro.jobs.watchdog.StallReport`) — never a silent hang;
* **admission** — a bounded queue (:class:`AdmissionQueue`): batch feeding
  blocks at ``max_pending`` (backpressure); with
  :attr:`~repro.jobs.config.JobConfig.shed_above` set, overflow queries
  are *shed* to an immediate UNKNOWN (:class:`ShedOutcome`) instead of
  queued without bound;
* **durability** — completed outcomes stream into the append-only
  checkpoint journal (:mod:`repro.jobs.checkpoint`); after a crash,
  :meth:`JobRunner.resume` restores every committed result and re-executes
  only the pending queries, byte-identical to an uninterrupted run.

SIGINT/SIGTERM trigger a graceful drain: no new queries start, in-flight
queries finish and are checkpointed, and the :class:`JobResult` comes back
``aborted`` with its pending set intact for a later ``resume``.
``KeyboardInterrupt``/``SystemExit`` raised *inside* a worker are never
converted into per-query errors — they abort the job and propagate.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.metrics import PipelineMetrics, merged
from repro.core.pipeline import (
    DEFAULT_BATCH_WORKERS,
    ErrorOutcome,
    PolicyModel,
    PolicyPipeline,
    QueryOutcome,
)
from repro.core.verify import Verdict
from repro.errors import JobError
from repro.jobs.checkpoint import (
    JOURNAL_NAME,
    KIND_ERROR,
    KIND_OUTCOME,
    KIND_SHED,
    KIND_STALL,
    CheckpointJournal,
    CheckpointedOutcome,
    JournalRecovery,
    questions_digest,
    read_journal,
    restore_outcome,
)
from repro.jobs.config import JobConfig
from repro.jobs.watchdog import (
    Clock,
    MonotonicClock,
    StallReport,
    Watchdog,
    WorkerHeartbeat,
)
from repro.store.atomic import StepHook


@dataclass(slots=True)
class StallOutcome:
    """UNKNOWN verdict for a query whose worker the watchdog replaced.

    Takes the hung query's slot so the batch completes with order
    preserved; the attached :class:`StallReport` says which worker hung,
    in which stage, and for how long.
    """

    question: str
    stall: StallReport
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)

    @property
    def verdict(self) -> Verdict:
        return Verdict.UNKNOWN

    @property
    def failed(self) -> bool:
        return False

    def summary(self) -> str:
        return (
            f"query: {self.question}\n"
            f"verdict: UNKNOWN (stalled)\n"
            f"{self.stall.summary()}"
        )

    def as_dict(self, *, include_metrics: bool = False) -> dict[str, object]:
        trace: dict[str, object] = {
            "question": self.question,
            "stall": self.stall.as_dict(),
        }
        if include_metrics:
            trace["metrics"] = self.metrics.as_dict()
        return trace


@dataclass(slots=True)
class ShedOutcome:
    """UNKNOWN verdict for a query refused by admission control.

    Load shedding is an explicit, recorded answer — the caller learns the
    system was saturated rather than waiting on an unbounded queue.
    """

    question: str
    pending_at_admission: int
    shed_above: int
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)

    @property
    def verdict(self) -> Verdict:
        return Verdict.UNKNOWN

    @property
    def failed(self) -> bool:
        return False

    def summary(self) -> str:
        return (
            f"query: {self.question}\n"
            f"verdict: UNKNOWN (shed: {self.pending_at_admission} queries "
            f"pending >= shed threshold {self.shed_above})"
        )

    def as_dict(self, *, include_metrics: bool = False) -> dict[str, object]:
        trace: dict[str, object] = {
            "question": self.question,
            "shed": {
                "pending_at_admission": self.pending_at_admission,
                "shed_above": self.shed_above,
            },
        }
        if include_metrics:
            trace["metrics"] = self.metrics.as_dict()
        return trace


#: Anything a job slot can hold once filled.
JobOutcome = (
    QueryOutcome | ErrorOutcome | StallOutcome | ShedOutcome | CheckpointedOutcome
)


class AdmissionQueue:
    """Bounded work queue with backpressure and optional load shedding.

    ``pending`` counts queries admitted but not yet *completed* (queued
    plus in-flight), so the bound limits live memory, not just queue
    length.  Blocked admits sleep on the condition variable until queue
    activity — or an explicit :meth:`wake` — lets them re-check; a stop
    flag flipped by :meth:`~JobRunner.request_drain` is therefore
    observed immediately, not on the next poll tick.

    The condition is backed by an ``RLock`` so :meth:`wake` is safe even
    from a signal handler that interrupts the owning (main) thread while
    it holds the lock inside :meth:`admit`: the re-entrant acquire
    succeeds where a plain lock would deadlock against itself.
    """

    def __init__(self, max_pending: int, *, shed_above: int | None = None) -> None:
        if shed_above is not None and not (1 <= shed_above <= max_pending):
            raise ValueError(
                "shed_above must be in [1, max_pending]: the shed "
                "threshold has to fire before the blocking bound"
            )
        self.max_pending = max_pending
        self.shed_above = shed_above
        self._cv = threading.Condition(threading.RLock())
        self._items: deque = deque()
        self._pending = 0
        self._closed = False
        self.high_water = 0

    @property
    def pending(self) -> int:
        with self._cv:
            return self._pending

    def admit(self, item, *, should_stop=None, poll: float | None = None) -> bool:
        """Admit ``item``, or return False (shed / stopped / closed).

        With ``shed_above`` set (constructor-validated to be at most
        ``max_pending``), admission never blocks: a pending depth at or
        above the threshold sheds the item immediately.  With it unset,
        admission only ever blocks (backpressure) — until depth drops
        below ``max_pending`` or ``should_stop()`` turns true — and
        never sheds.

        ``poll`` is a compatibility fallback: callers that flip a stop
        flag without calling :meth:`wake` can pass a timeout so the flag
        is still observed within one poll period.  ``None`` (the
        default) waits purely on condition-variable wakeups.
        """
        with self._cv:
            while True:
                if should_stop is not None and should_stop():
                    return False
                if self._closed:
                    return False
                if self.shed_above is not None and self._pending >= self.shed_above:
                    return False
                if self._pending < self.max_pending:
                    self._items.append(item)
                    self._pending += 1
                    self.high_water = max(self.high_water, self._pending)
                    self._cv.notify_all()
                    return True
                self._cv.wait(poll)

    def wake(self) -> None:
        """Nudge every blocked ``admit``/``get`` to re-check its exit
        conditions (stop flags, closure).  Notify-only, so it is safe
        from signal handlers and from threads that hold no other locks.
        """
        with self._cv:
            self._cv.notify_all()

    def get(self):
        """Next item, or ``None`` once the queue is closed and empty."""
        with self._cv:
            while True:
                if self._items:
                    return self._items.popleft()
                if self._closed:
                    return None
                self._cv.wait()

    def task_done(self) -> None:
        with self._cv:
            self._pending = max(0, self._pending - 1)
            self._cv.notify_all()

    def drain(self) -> list:
        """Remove (and return) every not-yet-started item."""
        with self._cv:
            dropped = list(self._items)
            self._items.clear()
            self._pending = max(0, self._pending - len(dropped))
            self._cv.notify_all()
            return dropped

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()


@dataclass(slots=True)
class JobResult:
    """Everything one supervised job produced (or salvaged).

    ``outcomes`` is index-aligned with ``questions``; a ``None`` slot is a
    query that never ran (graceful drain) and remains pending in the
    checkpoint — ``resume`` picks it up.
    """

    questions: list[str]
    outcomes: list[JobOutcome | None]
    metrics: PipelineMetrics
    seconds: float
    max_workers: int
    aborted: bool = False
    restored: int = 0
    stalls: list[StallReport] = field(default_factory=list)
    shed: int = 0
    recovery: JournalRecovery | None = None
    checkpoint_dir: str | None = None

    def __len__(self) -> int:
        return len(self.questions)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def completed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o is not None]

    @property
    def pending(self) -> list[int]:
        return [i for i, o in enumerate(self.outcomes) if o is None]

    @property
    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o is not None and o.failed]

    @property
    def verdicts(self) -> list[Verdict | None]:
        return [None if o is None else o.verdict for o in self.outcomes]

    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome is None:
                continue
            name = outcome.verdict.value
            counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> str:
        counts = ", ".join(
            f"{n} {v}" for v, n in sorted(self.verdict_counts().items())
        )
        line = (
            f"{len(self.completed)}/{len(self.questions)} queries in "
            f"{self.seconds:.2f}s ({self.max_workers} workers): "
            f"{counts or 'no verdicts'}"
        )
        if self.restored:
            line += f"; {self.restored} restored from checkpoint"
        if self.stalls:
            line += f"; {len(self.stalls)} stalled workers replaced"
        if self.shed:
            line += f"; {self.shed} queries shed"
        if self.aborted:
            line += f"; ABORTED with {len(self.pending)} queries pending"
        return line

    def as_dict(self) -> dict[str, object]:
        return {
            "questions": len(self.questions),
            "completed": len(self.completed),
            "pending": self.pending,
            "aborted": self.aborted,
            "restored": self.restored,
            "shed": self.shed,
            "seconds": round(self.seconds, 6),
            "max_workers": self.max_workers,
            "verdicts": self.verdict_counts(),
            "stalls": [s.as_dict() for s in self.stalls],
            "metrics": self.metrics.as_dict(),
            "outcomes": [
                None if o is None else o.as_dict() for o in self.outcomes
            ],
        }


class JobRunner:
    """Run one question suite under supervision; resumable via checkpoint.

    A runner is single-use per job run (``run``/``resume`` may be called
    again, each call is a fresh execution over the same pipeline/model).
    ``query_fn(index, question, certify, heartbeat)`` is the execution
    seam: the default calls :meth:`PolicyPipeline.query` with the same
    certification stride as ``query_batch``; tests substitute hanging or
    counting functions.  ``journal_step`` is the crash-injection hook
    threaded into every checkpoint append (see :mod:`repro.store.faults`).
    """

    def __init__(
        self,
        pipeline: PolicyPipeline,
        model: PolicyModel,
        config: JobConfig | None = None,
        *,
        clock: Clock | None = None,
        query_fn=None,
        journal_step: StepHook | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.model = model
        if config is None:
            config = getattr(pipeline.config, "jobs", None) or JobConfig()
        self.config = config
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._query_fn = query_fn if query_fn is not None else self._default_query
        self._journal_step = journal_step
        self.job_metrics = PipelineMetrics(queries=0)
        # Per-run state (reset by _execute)
        self._lock = threading.RLock()
        self._heartbeats: list[WorkerHeartbeat] = []
        self._queue: AdmissionQueue | None = None
        self._journal: CheckpointJournal | None = None
        self._watchdog: Watchdog | None = None
        self._outcomes: list[JobOutcome | None] = []
        self._stalls: list[StallReport] = []
        self._remaining = 0
        self._worker_seq = 0
        self._done = threading.Event()
        self._fatal: BaseException | None = None
        self._drain_flag = False
        self._drain_applied = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, questions) -> JobResult:
        """Execute the suite from scratch (writing a fresh journal header).

        Refuses a checkpoint directory whose journal already holds an
        intact header: recovery keeps the *first* header and the first
        occurrence of each index, so appending a second job's header and
        records would make a later ``resume`` silently restore the first
        job's verdicts.  Resume the existing job or pick a fresh
        directory instead.
        """
        questions = list(questions)
        if self.config.checkpoint_dir is not None:
            existing = read_journal(
                Path(self.config.checkpoint_dir) / JOURNAL_NAME
            )
            if existing.header is not None:
                raise JobError(
                    f"checkpoint directory {self.config.checkpoint_dir} "
                    "already holds a journal for "
                    f"{existing.header.get('company')!r} revision "
                    f"{existing.header.get('revision')} "
                    f"({len(existing.completed)} committed records); "
                    "resume it (`batch resume --checkpoint DIR`) or start "
                    "the new job in a fresh directory"
                )
        journal = self._open_journal()
        if journal is not None:
            journal.write_header(
                questions, company=self.model.company, revision=self.model.revision
            )
        return self._execute(questions, {}, journal, recovery=None)

    def resume(self, questions=None) -> JobResult:
        """Restore committed results from the checkpoint; run only the rest.

        ``questions`` is optional — the journal header is the source of
        truth; when given, it must match the header exactly (resuming a
        *different* suite against an old checkpoint would silently mix
        verdicts across jobs).  The header's model identity and question
        digest must likewise match this runner — restored verdicts were
        produced by the model the header names, and mixing them with
        fresh executions against a different model would corrupt the
        result the same way a mismatched suite would.
        """
        if self.config.checkpoint_dir is None:
            raise JobError("resume requires JobConfig.checkpoint_dir")
        recovery = read_journal(Path(self.config.checkpoint_dir) / JOURNAL_NAME)
        if recovery.header is None:
            if questions is None:
                raise JobError(
                    "checkpoint has no (intact) header; pass the question "
                    "suite to start the job from scratch"
                )
            return self.run(questions)
        header = recovery.header
        header_questions = [str(q) for q in header.get("questions", [])]
        if header.get("questions_sha256") != questions_digest(header_questions):
            raise JobError(
                "checkpoint header fails its question digest; refusing to "
                "resume from a tampered journal"
            )
        company = header.get("company")
        revision = header.get("revision")
        if company != self.model.company or revision != self.model.revision:
            raise JobError(
                f"checkpoint belongs to model {company!r} revision "
                f"{revision}, but this runner's model is "
                f"{self.model.company!r} revision {self.model.revision}; "
                "refusing to mix restored verdicts across models"
            )
        if questions is not None and list(questions) != header_questions:
            raise JobError(
                "question suite does not match the checkpoint header; "
                "refusing to resume a different job"
            )
        completed = {
            index: record
            for index, record in recovery.completed.items()
            if 0 <= index < len(header_questions)
        }
        journal = self._open_journal()
        return self._execute(header_questions, completed, journal, recovery)

    def request_drain(self) -> None:
        """Ask the job to stop admitting work and finish in-flight queries.

        Safe to call from any thread *and* from a signal handler: it
        flips a flag and nudges the admission queue's condition variable
        (notify-only on an RLock, so interrupting the feeding thread
        mid-``admit`` cannot self-deadlock); the run loop applies the
        drain in normal context.
        """
        self._drain_flag = True
        queue = self._queue
        if queue is not None:
            queue.wake()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _open_journal(self) -> CheckpointJournal | None:
        if self.config.checkpoint_dir is None:
            return None
        return CheckpointJournal(
            self.config.checkpoint_dir,
            fsync=self.config.checkpoint_fsync,
            step=self._journal_step,
        )

    def _execute(
        self,
        questions: list[str],
        completed: dict[int, dict],
        journal: CheckpointJournal | None,
        recovery: JournalRecovery | None,
    ) -> JobResult:
        n = len(questions)
        pending_indices = [i for i in range(n) if i not in completed]
        max_workers = self.config.max_workers
        if max_workers is None:
            max_workers = min(DEFAULT_BATCH_WORKERS, max(1, len(pending_indices)))
        if max_workers < 1:
            raise JobError("max_workers must be >= 1")

        with self._lock:
            self._outcomes = [None] * n
            for index, record in completed.items():
                self._outcomes[index] = restore_outcome(record)
            self._stalls = []
            self._remaining = len(pending_indices)
            self._journal = journal
            self._queue = AdmissionQueue(
                self.config.max_pending, shed_above=self.config.shed_above
            )
            self._heartbeats = []
            self._worker_seq = 0
            self._done = threading.Event()
            self._fatal = None
            self._drain_flag = False
            self._drain_applied = False
            # Per-run accounting: a runner reused for run() then resume()
            # reports each execution's counters, not their sum.
            self.job_metrics = PipelineMetrics(queries=0)
            self.job_metrics.checkpoint_restored += len(completed)
            if self._remaining == 0:
                self._done.set()

        self._watchdog = None
        if self.config.stall_after is not None:
            self._watchdog = Watchdog(
                stall_after=self.config.stall_after,
                clock=self.clock,
                interval=self.config.watchdog_interval,
            )

        shed_count = 0
        started = time.perf_counter()
        old_handlers = self._install_signal_handlers()
        try:
            with self._lock:
                for _ in range(min(max_workers, max(1, self._remaining))):
                    self._spawn_worker()
            if self._watchdog is not None and self.config.watchdog_thread:
                self._watchdog.start(self.scan_stalls)

            # Feed (main thread): backpressure-blocking, drain-aware.
            for index in pending_indices:
                if self._drain_flag or self._fatal is not None:
                    break
                admitted = self._queue.admit(
                    (index, questions[index]),
                    should_stop=lambda: self._drain_flag
                    or self._fatal is not None,
                )
                if not admitted:
                    if self._drain_flag or self._fatal is not None:
                        break
                    # Load shedding: answer immediately instead of queueing.
                    outcome = ShedOutcome(
                        question=questions[index],
                        pending_at_admission=self._queue.pending,
                        shed_above=self.config.shed_above,
                    )
                    shed_count += 1
                    with self._lock:
                        self.job_metrics.shed_queries += 1
                        self._commit(index, questions[index], outcome, KIND_SHED)

            # Wait for completion, drain, or a fatal worker exception.
            while not self._done.is_set():
                if self._fatal is not None:
                    break
                if self._drain_flag and not self._drain_applied:
                    self._apply_drain()
                if self._drain_applied:
                    with self._lock:
                        if not any(hb.busy for hb in self._heartbeats):
                            break
                self._done.wait(0.02)
        finally:
            self._restore_signal_handlers(old_handlers)
            if self._watchdog is not None:
                self._watchdog.stop()
            # Registered workers exit promptly on the closed queue;
            # abandoned (cancelled) workers are daemons already removed
            # from the heartbeat table at replacement time.
            self._queue.close()
            if journal is not None:
                journal.close()

        with self._lock:
            if self._fatal is not None:
                raise self._fatal
            self.job_metrics.queue_high_water = max(
                self.job_metrics.queue_high_water, self._queue.high_water
            )
            outcomes = list(self._outcomes)
            stalls = list(self._stalls)

        metrics = merged(
            [o.metrics for o in outcomes if o is not None]
        )
        metrics.merge(self.job_metrics)
        return JobResult(
            questions=questions,
            outcomes=outcomes,
            metrics=metrics,
            seconds=time.perf_counter() - started,
            max_workers=max_workers,
            aborted=any(o is None for o in outcomes),
            restored=len(completed),
            stalls=stalls,
            shed=shed_count,
            recovery=recovery,
            checkpoint_dir=(
                None
                if self.config.checkpoint_dir is None
                else str(self.config.checkpoint_dir)
            ),
        )

    def _default_query(self, index, question, certify, heartbeat):
        budget = None
        if self.config.query_timeout is not None:
            base = self.pipeline.config.solver_budget
            effective = (
                self.config.query_timeout
                if base.timeout_seconds is None
                else min(base.timeout_seconds, self.config.query_timeout)
            )
            budget = replace(base, timeout_seconds=effective)
        # Pass the stall-cancellation event down as the pipeline's abort
        # seam: under the process execution backend a stalled solve is
        # hard-killed when the watchdog cancels this worker, so the CPU
        # is actually reclaimed (the thread backend can only abandon the
        # thread — see repro.jobs.watchdog).
        return self.pipeline.query(
            self.model,
            question,
            budget=budget,
            certify=certify,
            cancel=heartbeat.cancelled,
        )

    def _spawn_worker(self) -> WorkerHeartbeat:
        # Caller holds self._lock.
        self._worker_seq += 1
        hb = WorkerHeartbeat(self._worker_seq)
        self._heartbeats.append(hb)
        thread = threading.Thread(
            target=self._worker,
            args=(hb,),
            name=f"job-worker-{self._worker_seq}",
            daemon=True,
        )
        thread.start()
        return hb

    def _worker(self, hb: WorkerHeartbeat) -> None:
        stride = max(1, self.pipeline.config.batch_certify_stride)
        while True:
            item = self._queue.get()
            if item is None:
                return
            index, question = item
            with self._lock:
                hb.begin(index, question, self.clock.now())
            try:
                certify = (
                    self.pipeline.config.certify and index % stride == 0
                )
                outcome = self._query_fn(index, question, certify, hb)
                kind = KIND_OUTCOME
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                error_metrics = PipelineMetrics()
                error_metrics.query_errors = 1
                outcome = ErrorOutcome(
                    question=question,
                    stage=getattr(exc, "pipeline_stage", None) or "query",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    metrics=error_metrics,
                )
                kind = KIND_ERROR
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit / simulated kills: never a
                # per-query error — abort the job and let run() re-raise.
                self._abort_with(exc, hb)
                return
            try:
                with self._lock:
                    if hb.cancelled.is_set():
                        # Stalled and replaced while we were hung; the slot
                        # already holds a StallOutcome.  Discard and retire.
                        return
                    self._commit(index, question, outcome, kind)
                    hb.finish()
            except BaseException as exc:  # noqa: BLE001 - journal failure is fatal
                self._abort_with(exc, hb)
                return
            self._queue.task_done()

    def _abort_with(self, exc: BaseException, hb: WorkerHeartbeat) -> None:
        with self._lock:
            if hb.cancelled.is_set() and self._fatal is None:
                # A cancelled worker's demise is not the job's problem.
                return
            if self._fatal is None:
                self._fatal = exc
            hb.finish()
        self._done.set()
        # A feeder blocked in admit() checks the fatal flag on wakeup.
        queue = self._queue
        if queue is not None:
            queue.wake()

    def _commit(self, index, question, outcome, kind) -> None:
        # Caller holds self._lock; commit and journal append are atomic
        # with respect to stall replacement.
        if self._outcomes[index] is not None:
            return  # already answered (restored record raced a re-run)
        self._outcomes[index] = outcome
        self._remaining -= 1
        if self._journal is not None:
            self._journal.append_result(
                index, question, kind, outcome.verdict, outcome.as_dict()
            )
            self.job_metrics.checkpoint_records += 1
        if self._remaining <= 0:
            self._done.set()

    # ------------------------------------------------------------------
    # Stall handling
    # ------------------------------------------------------------------

    def scan_stalls(self, *, now: float | None = None) -> list[StallReport]:
        """One watchdog pass: convert stalled queries, replace workers.

        Called by the watchdog thread in production; tests drive it
        directly with a fake clock for deterministic detection.
        """
        if self._watchdog is None:
            return []
        reports: list[StallReport] = []
        with self._lock:
            scan_now = now if now is not None else self.clock.now()
            for hb in self._watchdog.scan(self._heartbeats, now=scan_now):
                index, question = hb.index, hb.question
                report = StallReport(
                    index=index,
                    question=question,
                    worker_id=hb.worker_id,
                    stage=hb.stage,
                    waited_seconds=scan_now - hb.last_beat,
                    stall_after=self._watchdog.stall_after,
                )
                hb.cancelled.set()
                self._heartbeats.remove(hb)
                outcome = StallOutcome(question=question, stall=report)
                self.job_metrics.stalled_queries += 1
                self._commit(index, question, outcome, KIND_STALL)
                self._stalls.append(report)
                if not self._drain_applied and self._fatal is None:
                    self._spawn_worker()
                    self.job_metrics.workers_replaced += 1
                reports.append(report)
        for _ in reports:
            self._queue.task_done()
        return reports

    # ------------------------------------------------------------------
    # Drain + signals
    # ------------------------------------------------------------------

    def _apply_drain(self) -> None:
        with self._lock:
            if self._drain_applied:
                return
            self._drain_applied = True
            self.job_metrics.jobs_aborted += 1
        dropped = self._queue.drain()
        self._queue.close()
        with self._lock:
            if not any(hb.busy for hb in self._heartbeats):
                self._done.set()
        del dropped  # their slots stay None → pending in the checkpoint

    def _install_signal_handlers(self):
        if not self.config.handle_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        handlers = {}

        def on_signal(signum, frame):  # noqa: ARG001 - signal API
            self.request_drain()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[signum] = signal.signal(signum, on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return handlers

    def _restore_signal_handlers(self, handlers) -> None:
        if not handlers:
            return
        for signum, handler in handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
