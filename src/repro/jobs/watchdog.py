"""Heartbeat watchdog: detect and report stalled batch workers.

Every job worker owns a :class:`WorkerHeartbeat`; it beats when a query
starts (and cooperatively mid-query, if the query function chooses to).
The :class:`Watchdog` scans the heartbeat table and flags any worker whose
in-flight query has gone ``stall_after`` seconds without a beat — the hung
state a wedged backend, a pathological solver input, or a deadlocked
substrate produces.

Time is injected: production uses :class:`MonotonicClock`, tests drive a
fake clock and call the scan directly, so stall detection is exercised
deterministically with zero real waiting.  The watchdog itself never kills
anything — it *reports*; the :class:`~repro.jobs.runner.JobRunner`
converts the report into a cooperative cancel + worker replacement under
its own lock (see :class:`StallReport` for what surfaces to the caller).

Known limitation of the **thread** execution backend: "replacement" is
cooperative only.  The cancelled worker thread cannot be killed — it keeps
grinding the hung solve to completion (or forever), burning a CPU core;
the cancel flag merely guarantees its late result is discarded instead of
committed.  Under ``PipelineConfig(execution_backend="process")`` the
cancel event is additionally routed into
:class:`repro.procpool.supervisor.WorkerSupervisor`, which SIGKILLs the
worker *process* running the solve — a stall then frees its CPU and memory
for real, and the same supervisor enforces hard wall-clock deadlines and
RSS ceilings that no cooperative check can.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Protocol


class Clock(Protocol):
    """Injectable time source (monotonic seconds)."""

    def now(self) -> float: ...

    def sleep(self, seconds: float) -> None: ...


class MonotonicClock:
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        import time

        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        import time

        time.sleep(seconds)


@dataclass(slots=True)
class StallReport:
    """Structured account of one watchdog intervention.

    Attached to the UNKNOWN outcome that takes the hung query's slot, so
    a stall is never a silent hang *and* never a silent verdict — callers
    see which query, which worker, how long it sat, and that the worker
    was replaced.
    """

    index: int
    question: str
    worker_id: int
    stage: str
    waited_seconds: float
    stall_after: float
    replaced: bool = True

    def summary(self) -> str:
        return (
            f"worker {self.worker_id} stalled in {self.stage!r} after "
            f"{self.waited_seconds:.3f}s (threshold {self.stall_after:.3f}s); "
            f"worker {'replaced' if self.replaced else 'not replaced'}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "question": self.question,
            "worker_id": self.worker_id,
            "stage": self.stage,
            "waited_seconds": round(self.waited_seconds, 6),
            "stall_after": round(self.stall_after, 6),
            "replaced": self.replaced,
        }


class WorkerHeartbeat:
    """Mutable per-worker liveness record.

    All mutation happens under the owning runner's lock; the fields are
    plain attributes so the watchdog scan is a cheap read pass.
    """

    __slots__ = (
        "worker_id",
        "index",
        "question",
        "stage",
        "last_beat",
        "cancelled",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.index: int | None = None  # None = idle
        self.question: str | None = None
        self.stage = "idle"
        self.last_beat = 0.0
        self.cancelled = threading.Event()

    @property
    def busy(self) -> bool:
        return self.index is not None

    def begin(self, index: int, question: str, now: float) -> None:
        self.index = index
        self.question = question
        self.stage = "query"
        self.last_beat = now

    def beat(self, stage: str, now: float) -> None:
        self.stage = stage
        self.last_beat = now

    def finish(self) -> None:
        self.index = None
        self.question = None
        self.stage = "idle"


class Watchdog:
    """Scan heartbeats for workers that stopped beating mid-query.

    ``scan`` is the pure detection step (called under the runner's lock
    with the current heartbeat table); :meth:`run` is the production
    thread loop that calls a runner-supplied scan callback every
    ``interval`` seconds until stopped.
    """

    def __init__(
        self,
        *,
        stall_after: float,
        clock: Clock | None = None,
        interval: float | None = None,
    ) -> None:
        if stall_after <= 0:
            raise ValueError("stall_after must be > 0")
        self.stall_after = stall_after
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        # A scan four times per threshold keeps detection latency within
        # 25% of stall_after without busy-waiting.
        self.interval = (
            interval if interval is not None else max(0.01, stall_after / 4.0)
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def scan(
        self, heartbeats: list[WorkerHeartbeat], *, now: float | None = None
    ) -> list[WorkerHeartbeat]:
        """The workers whose in-flight query exceeded ``stall_after``."""
        if now is None:
            now = self.clock.now()
        return [
            hb
            for hb in heartbeats
            if hb.busy
            and not hb.cancelled.is_set()
            and now - hb.last_beat > self.stall_after
        ]

    def start(self, scan_callback: Callable[[], None]) -> None:
        """Run ``scan_callback`` every ``interval`` seconds in a thread."""
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                scan_callback()
                # Event.wait, not clock.sleep: stop() must interrupt the
                # pause immediately even with a coarse real interval.
                self._stop.wait(self.interval)

        self._thread = threading.Thread(
            target=loop, name="job-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
