"""repro — reproduction of "The Privacy Quagmire" (HotNets '25).

A pipeline that converts natural-language privacy policies into first-order
logic while preserving ambiguity: LLM-based semantic-role extraction,
Chain-of-Layer hierarchy construction, embedding-based query translation,
and SMT-backed verification where vague legal terms remain uninterpreted
predicates requiring human judgment.

Quickstart::

    from repro import PolicyPipeline
    from repro.corpus import tiktak_policy

    pipeline = PolicyPipeline()
    model = pipeline.process(tiktak_policy().text)
    outcome = pipeline.query(model, "The user provides email to TikTak.")
    print(outcome.summary())

Every substrate the paper relies on is bundled and offline: a simulated LLM
backend (:mod:`repro.llm`), deterministic embeddings
(:mod:`repro.embeddings`), an SMT solver with SMT-LIB v2 round-tripping
(:mod:`repro.solver`, :mod:`repro.smtlib`), and synthetic TikTok-scale and
Meta-scale policy corpora (:mod:`repro.corpus`).
"""

from repro.core.metrics import LatencyReservoir, PipelineMetrics
from repro.core.pipeline import (
    BatchOutcome,
    ErrorOutcome,
    PipelineConfig,
    PolicyModel,
    PolicyPipeline,
    QueryOutcome,
    UpdateStats,
)
from repro.core.verify import Verdict, VerificationResult
from repro.errors import (
    CassetteMissError,
    IntegrityError,
    JobError,
    PermanentHTTPError,
    ProviderError,
    RateLimitError,
    RegistryError,
    ReproError,
    ServerError,
    SnapshotError,
    TransientHTTPError,
)
from repro.integrity import (
    BackgroundScrubber,
    Finding,
    IntegrityReport,
    RepairPlan,
    Severity,
    plan_repairs,
    run_fsck,
)
from repro.jobs import JobConfig, JobResult, JobRunner
from repro.providers import (
    HTTPProvider,
    ProfiledLLM,
    RecordingLLM,
    ReplayLLM,
    StressProfile,
    get_profile,
)
from repro.registry import FleetReport, MintSpec, PolicyRegistry
from repro.resilience import BudgetLadder, DegradationReport
from repro.server import PolicyServer, ServerConfig, ServingClient
from repro.solver.interface import SolverBudget
from repro.store import AuditReport, SnapshotStore

__version__ = "1.0.0"

__all__ = [
    "PolicyPipeline",
    "PolicyModel",
    "PipelineConfig",
    "QueryOutcome",
    "ErrorOutcome",
    "BatchOutcome",
    "PipelineMetrics",
    "UpdateStats",
    "Verdict",
    "VerificationResult",
    "SolverBudget",
    "BudgetLadder",
    "DegradationReport",
    "JobConfig",
    "JobError",
    "JobResult",
    "JobRunner",
    "PolicyRegistry",
    "MintSpec",
    "FleetReport",
    "RegistryError",
    "PolicyServer",
    "ServerConfig",
    "ServerError",
    "ServingClient",
    "LatencyReservoir",
    "SnapshotStore",
    "AuditReport",
    "HTTPProvider",
    "RecordingLLM",
    "ReplayLLM",
    "ProfiledLLM",
    "StressProfile",
    "get_profile",
    "ProviderError",
    "TransientHTTPError",
    "RateLimitError",
    "PermanentHTTPError",
    "CassetteMissError",
    "ReproError",
    "SnapshotError",
    "IntegrityError",
    "IntegrityReport",
    "Finding",
    "Severity",
    "RepairPlan",
    "BackgroundScrubber",
    "run_fsck",
    "plan_repairs",
    "__version__",
]
