"""Noun-phrase chunking and coordination expansion.

The paper's Table 2 shows enumerated lists expanded into one edge per item
("name, age, username, password, ... and profile image" becomes ten distinct
data types).  :func:`expand_coordination` implements that expansion;
:func:`noun_phrases` finds candidate data-type and entity phrases.
"""

from __future__ import annotations

import re

from repro.nlp.lexicon import (
    DATA_HEAD_NOUNS,
    DATA_MODIFIERS,
    DETERMINERS,
    STOPWORDS,
)
from repro.nlp.morphology import singularize_phrase
from repro.nlp.tokenizer import tokenize

_SUCH_AS_RE = re.compile(
    r"\b(?:such as|including|for example|e\.g\.,?|like)\s+", re.IGNORECASE
)
_PARENTHETICAL_RE = re.compile(r"\([^)]*\)")


def strip_parentheticals(text: str) -> str:
    """Remove parenthetical asides, which carry examples not new practices."""
    return _PARENTHETICAL_RE.sub("", text)


def split_enumeration(text: str) -> list[str]:
    """Split a comma/and/or coordinated list into its items.

    Handles Oxford commas, "and/or", and trailing "and other X" catch-alls.

    >>> split_enumeration("name, age, and email")
    ['name', 'age', 'email']
    """
    # Normalize separators, then split.
    normalized = re.sub(r"\band/or\b", ",", text, flags=re.IGNORECASE)
    normalized = re.sub(r",?\s+\b(?:and|or)\b\s+", ", ", normalized, flags=re.IGNORECASE)
    items = [part.strip(" .;") for part in normalized.split(",")]
    return [item for item in items if item]


def _clean_item(item: str) -> str:
    """Strip leading determiners/stopwords and trailing stop-tails."""
    words = item.split()
    while words and (
        words[0].lower() in DETERMINERS or words[0].lower() in STOPWORDS
    ):
        words = words[1:]
    while words and words[-1].lower() in STOPWORDS:
        words = words[:-1]
    return " ".join(words)


def expand_coordination(text: str, *, singularize: bool = True) -> list[str]:
    """Expand a coordinated noun phrase into individual normalized items.

    ``"name, age, username and profile image"`` becomes
    ``["name", "age", "username", "profile image"]``.  Items introduced by
    "such as" / "including" are treated the same as top-level items, matching
    the paper's expansion of exemplar lists.
    """
    text = strip_parentheticals(text)
    # "account and profile information, such as name, age, ..." - keep both
    # the container phrase and the exemplars.
    match = _SUCH_AS_RE.search(text)
    results: list[str] = []
    if match:
        container = text[: match.start()].strip(" ,.;")
        exemplars = text[match.end() :]
        if container:
            results.extend(expand_coordination(container, singularize=singularize))
        results.extend(expand_coordination(exemplars, singularize=singularize))
    else:
        for item in split_enumeration(text):
            cleaned = _clean_item(item)
            if not cleaned or cleaned.lower() in STOPWORDS:
                continue
            if singularize:
                cleaned = singularize_phrase(cleaned.lower())
            else:
                cleaned = cleaned.lower()
            results.append(cleaned)
    # Preserve order, drop duplicates.
    seen: set[str] = set()
    unique = []
    for item in results:
        if item not in seen:
            seen.add(item)
            unique.append(item)
    return unique


def _is_np_word(word: str) -> bool:
    lowered = word.lower()
    if lowered in STOPWORDS and lowered not in DATA_MODIFIERS:
        return False
    return word[0].isalpha()


def noun_phrases(text: str) -> list[str]:
    """Extract maximal candidate noun phrases from ``text``.

    A phrase is a run of non-stopword alphabetic tokens, optionally joined
    across a single "of" ("name of contacts").  Phrases are lower-cased but
    not singularized; callers normalize as needed.
    """
    tokens = tokenize(text)
    phrases: list[str] = []
    current: list[str] = []

    def flush() -> None:
        if current:
            phrase = " ".join(current)
            cleaned = _clean_item(phrase)
            if cleaned:
                phrases.append(cleaned.lower())
            current.clear()

    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.is_word and _is_np_word(tok.text):
            current.append(tok.text)
        elif (
            tok.lower == "of"
            and current
            and i + 1 < len(tokens)
            and tokens[i + 1].is_word
            and _is_np_word(tokens[i + 1].text)
        ):
            current.append("of")
        else:
            flush()
        i += 1
    flush()
    return phrases


def is_data_phrase(phrase: str) -> bool:
    """Heuristic: does ``phrase`` denote a data type?

    True when the head noun (or the noun before "of") is a known data head
    noun, or every word is a known data modifier.
    """
    words = phrase.lower().split()
    if not words:
        return False
    if "of" in words:
        head = words[words.index("of") - 1] if words.index("of") > 0 else words[-1]
    else:
        head = words[-1]
    from repro.nlp.morphology import singularize_noun

    if head in DATA_HEAD_NOUNS or singularize_noun(head) in DATA_HEAD_NOUNS:
        return True
    return all(w in DATA_MODIFIERS for w in words)
