"""Clause-level patterns for data-practice statements.

Privacy-policy sentences follow a small number of clause shapes:

* ``[If/When <condition>,] <sender> <verb(s)> <data> [with/to <receiver>]
  [for <purpose>] [condition-tail]``
* enumerated continuations ("Account and profile information, such as ...")

:func:`split_conditions` separates the main clause from conditional and
purpose clauses; :func:`find_main_verbs` locates coordinated action verbs
("access and collect" yields both); :func:`find_receiver` resolves the
"with/to <entity>" complement of sharing verbs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nlp.lexicon import (
    ACTION_VERBS,
    CONDITION_OPENERS,
    ENTITY_TERMS,
    PURPOSE_OPENERS,
    SHARING_VERBS,
)
from repro.nlp.morphology import lemmatize_verb
from repro.nlp.tokenizer import tokenize


@dataclass(slots=True)
class ClauseSplit:
    """A sentence decomposed into a main clause and auxiliary clauses."""

    main: str
    conditions: list[str] = field(default_factory=list)
    purposes: list[str] = field(default_factory=list)


def _lower(text: str) -> str:
    return text.lower()


_SUBJECT_STARTERS = frozenset({"you", "we", "user", "users", "they", "it", "this"})
_MODALS = frozenset({"may", "will", "can", "might", "must", "shall", "would", "could", "do", "does"})


def _main_clause_boundary(text: str) -> int:
    """Index of the comma where a leading subordinate clause ends.

    The clause may itself contain commas ("When you create an account,
    upload content, or use the Platform, you may provide ..."), so we take
    the first comma that is followed by the start of an independent clause:
    a subject pronoun, a capitalized name, or an entity, with a verb or
    modal within the next few tokens.  Returns -1 when no boundary exists.
    """
    offset = 0
    while True:
        comma = text.find(",", offset)
        if comma < 0:
            return -1
        following = tokenize(text[comma + 1 : comma + 80])
        word_tokens = [t for t in following if t.is_word][:4]
        if word_tokens:
            first = word_tokens[0]
            is_subject = (
                first.lower in _SUBJECT_STARTERS
                or (first.text[0].isupper() and lemmatize_verb(first.lower) not in ACTION_VERBS)
            )
            has_verb = any(
                t.lower in _MODALS or lemmatize_verb(t.lower) in ACTION_VERBS
                for t in word_tokens[1:]
            )
            if is_subject and has_verb:
                return comma
        offset = comma + 1


def split_conditions(sentence: str) -> ClauseSplit:
    """Separate conditional/purpose clauses from the main clause.

    Leading subordinate clauses end at the first comma; trailing ones run to
    the end of the sentence.  Purpose clauses ("in order to ...", "for the
    purposes of ...") are collected separately because the FOL encoding
    treats purposes as uninterpreted predicates rather than boolean guards.
    """
    text = sentence.strip().rstrip(".")
    conditions: list[str] = []
    purposes: list[str] = []

    # Peel leading subordinate clauses ("If you choose X, ...").
    changed = True
    while changed:
        changed = False
        lowered = _lower(text)
        for opener in CONDITION_OPENERS:
            if lowered.startswith(opener):
                comma = _main_clause_boundary(text)
                if comma > 0:
                    conditions.append(text[:comma].strip())
                    text = text[comma + 1 :].strip()
                    changed = True
                break
        lowered = _lower(text)
        for opener in PURPOSE_OPENERS:
            if lowered.startswith(opener):
                comma = _main_clause_boundary(text)
                if comma > 0:
                    purposes.append(text[:comma].strip())
                    text = text[comma + 1 :].strip()
                    changed = True
                break

    # Peel trailing subordinate clauses (search for the last opener that is
    # preceded by a comma or mid-sentence position).
    def peel_trailing(openers: tuple[str, ...], sink: list[str]) -> None:
        nonlocal text
        while True:
            lowered = _lower(text)
            best = -1
            for opener in openers:
                stem = opener.strip()
                for sep in (", " + stem, " " + stem):
                    idx = lowered.rfind(sep)
                    # The opener must start a trailing clause, not the whole
                    # sentence, and must be a whole-word match.
                    if idx <= 0:
                        continue
                    after = idx + len(sep)
                    if after < len(lowered) and lowered[after].isalnum():
                        continue
                    if idx > best:
                        best = idx
            if best <= 0:
                return
            clause = text[best:].lstrip(" ,")
            remainder = text[:best].rstrip(" ,")
            # Avoid destroying the main clause: it must keep a verb.
            if not _has_action_verb(remainder):
                return
            sink.append(clause.strip())
            text = remainder

    peel_trailing(CONDITION_OPENERS, conditions)
    peel_trailing(PURPOSE_OPENERS, purposes)

    # Trailing purpose tails: "... for legitimate business purposes",
    # "... for security and fraud-prevention purposes".
    tail = _PURPOSE_TAIL_RE.search(text)
    if tail and _has_action_verb(text[: tail.start()]):
        purposes.append(tail.group(0).strip().lstrip(","))
        text = text[: tail.start()].rstrip(" ,")

    return ClauseSplit(main=text.strip(), conditions=conditions, purposes=purposes)


_PURPOSE_TAIL_RE = re.compile(
    r",?\s+for\s+(?:[\w'’-]+[ -]){0,5}purposes?$", re.IGNORECASE
)


_NOMINAL_PRECEDERS = frozenset(
    {"the", "a", "an", "your", "our", "their", "its", "this", "that", "of", "my", "his", "her"}
)


_SUBJECT_WORDS = frozenset({"user", "users", "you", "we", "they", "it", "who"})


def _is_nominal_context(previous_word: str) -> bool:
    """True when a verb candidate after ``previous_word`` is really a noun."""
    if previous_word in _SUBJECT_WORDS:
        return False  # subjects precede verbs ("the user provides ...")
    if previous_word in _NOMINAL_PRECEDERS:
        return True
    from repro.nlp.lexicon import DATA_HEAD_NOUNS, DATA_MODIFIERS

    return previous_word in DATA_MODIFIERS or previous_word in DATA_HEAD_NOUNS


def _is_modifier_use(word: str, next_word: str) -> bool:
    """True when ``word`` modifies a following data head noun."""
    from repro.nlp.lexicon import DATA_HEAD_NOUNS, DATA_MODIFIERS
    from repro.nlp.morphology import singularize_noun

    if word not in DATA_MODIFIERS:
        return False
    return (
        next_word in DATA_HEAD_NOUNS
        or singularize_noun(next_word) in DATA_HEAD_NOUNS
    )


def _has_action_verb(text: str) -> bool:
    return any(
        lemmatize_verb(tok.lower) in ACTION_VERBS
        for tok in tokenize(text)
        if tok.is_word
    )


def find_main_verbs(clause: str) -> list[tuple[int, str]]:
    """Locate action verbs in ``clause`` as (token_index, base_form) pairs.

    Coordinated verbs sharing one object ("access and collect information")
    are all returned, enabling one extracted practice per verb as in the
    paper's "access and collect" example.
    """
    tokens = tokenize(clause)
    found: list[tuple[int, str]] = []
    for i, tok in enumerate(tokens):
        if not tok.is_word:
            continue
        base = lemmatize_verb(tok.lower)
        if base not in ACTION_VERBS:
            continue
        # Skip nominal uses: a verb candidate directly preceded by a
        # determiner, possessive, or noun modifier is acting as a noun
        # ("the purchase", "your use of the platform", "phone contacts").
        if i > 0 and tokens[i - 1].is_word and _is_nominal_context(tokens[i - 1].lower):
            continue
        # A candidate acting as a noun modifier ("contact information",
        # "purchase history") is not a verb.
        if i + 1 < len(tokens) and tokens[i + 1].is_word and _is_modifier_use(
            tok.lower, tokens[i + 1].lower
        ):
            continue
        # Sentence-initial inflected forms followed by a coordinator are
        # plural nouns, not verbs ("Purchases or other transactions ...").
        if (
            not found
            and i + 1 < len(tokens)
            and tok.lower != base
            and tok.lower.endswith("s")
            and tokens[i + 1].lower in {"or", "and", ","}
        ):
            continue
        found.append((i, base))
    return found


_RECEIVER_PREP_RE = re.compile(
    r"\b(?:with|to)\s+((?:[a-z][\w'’-]*\s*){1,5})", re.IGNORECASE
)


def find_receiver(clause: str) -> str | None:
    """Find the receiver of a sharing verb via its with/to complement.

    Returns the matched entity phrase (longest known entity term wins), or
    the raw complement noun phrase when no lexicon entity matches, or None
    when the clause has no sharing verb or no complement.
    """
    lowered = clause.lower()
    if not any(
        lemmatize_verb(tok.lower) in SHARING_VERBS
        for tok in tokenize(clause)
        if tok.is_word
    ):
        return None
    best: str | None = None
    # Deterministic tiebreak over the frozenset (see _receiver_in_region).
    for entity in sorted(ENTITY_TERMS, key=lambda e: (-len(e), e)):
        if re.search(r"\b" + re.escape(entity) + r"\b", lowered):
            best = entity
            break
    if best:
        return best
    match = _RECEIVER_PREP_RE.search(clause)
    if match:
        from repro.nlp.chunker import _clean_item  # local import, no cycle

        candidate = _clean_item(match.group(1).strip())
        return candidate.lower() or None
    return None


def looks_like_data_practice(sentence: str) -> bool:
    """Fast filter: does this sentence plausibly describe a data practice?"""
    lowered = sentence.lower()
    if len(lowered.split()) < 3:
        return False
    return _has_action_verb(sentence) and (
        "information" in lowered
        or "data" in lowered
        or any(word in lowered for word in ("you", "we", "user"))
    )
