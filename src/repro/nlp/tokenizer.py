"""Sentence and word tokenization.

The tokenizer is intentionally conservative: privacy policies are edited
prose, so a rule-based splitter with an abbreviation guard is accurate and,
unlike statistical tokenizers, fully deterministic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

# Abbreviations that end with a period but do not end a sentence.
_ABBREVIATIONS = frozenset(
    {
        "e.g",
        "i.e",
        "etc",
        "inc",
        "ltd",
        "llc",
        "corp",
        "co",
        "no",
        "vs",
        "u.s",
        "u.k",
        "eu",
        "mr",
        "mrs",
        "ms",
        "dr",
        "jr",
        "sr",
        "st",
        "art",
        "sec",
        "para",
        "approx",
    }
)

_WORD_RE = re.compile(
    r"""
    [A-Za-z][A-Za-z0-9'’\-]*   # words, contractions, hyphenated compounds
    | \d+(?:\.\d+)?            # numbers
    | [.,;:!?()\[\]"“”]        # punctuation we keep as tokens
    """,
    re.VERBOSE,
)

_SENTENCE_END_RE = re.compile(r"[.!?]")


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with its source span.

    Attributes:
        text: the surface form exactly as it appears in the input.
        start: character offset of the first character.
        end: character offset one past the last character.
    """

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        """Lower-cased surface form."""
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        """True when the token is alphabetic (not punctuation or a number)."""
        return self.text[0].isalpha()


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into word and punctuation tokens with spans."""
    return [
        Token(m.group(0), m.start(), m.end()) for m in _WORD_RE.finditer(text)
    ]


def words(text: str) -> list[str]:
    """Lower-cased word tokens only (punctuation and numbers dropped)."""
    return [t.lower for t in tokenize(text) if t.is_word]


def _is_abbreviation(text: str, dot_index: int) -> bool:
    """True when the period at ``dot_index`` terminates an abbreviation."""
    j = dot_index - 1
    while j >= 0 and (text[j].isalnum() or text[j] == "."):
        j -= 1
    candidate = text[j + 1 : dot_index].lower().rstrip(".")
    if not candidate:
        return False
    if candidate in _ABBREVIATIONS:
        return True
    # Single letters ("U.S. federal law") are initials, not sentence ends.
    return len(candidate) == 1 and candidate.isalpha()


def _iter_sentence_spans(text: str) -> Iterator[tuple[int, int]]:
    """Yield (start, end) spans of sentences within ``text``."""
    start = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            # Blank lines and bullet-style line breaks end a sentence: policy
            # documents use lists heavily and list items rarely carry final
            # punctuation.
            nxt = text[i + 1 : i + 2]
            if nxt in ("\n", "-", "*", "•", "") or (
                i + 1 < n and text[i + 1].isupper()
            ):
                if text[start:i].strip():
                    yield start, i
                start = i + 1
            i += 1
            continue
        if _SENTENCE_END_RE.match(ch):
            if ch == "." and _is_abbreviation(text, i):
                i += 1
                continue
            # Consume trailing closing punctuation after the terminator.
            j = i + 1
            while j < n and text[j] in ")\"'”]":
                j += 1
            if text[start:j].strip():
                yield start, j
            start = j
            i = j
            continue
        i += 1
    if text[start:].strip():
        yield start, n


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences, stripping surrounding whitespace."""
    return [text[a:b].strip() for a, b in _iter_sentence_spans(text)]


def sentence_spans(text: str) -> list[tuple[int, int]]:
    """Sentence spans as (start, end) character offsets into ``text``."""
    return list(_iter_sentence_spans(text))
