"""Light morphology: verb lemmatization and noun singularization.

The paper's extraction prompt normalizes actions to base form ("collects"
becomes "collect") and singularizes data types ("email addresses" becomes
"email address").  These rule tables implement exactly that normalization.
"""

from __future__ import annotations

# Irregular verb forms mapped to their base form.  Covers the verbs that
# actually occur in data-practice statements.
_IRREGULAR_VERBS = {
    "chose": "choose",
    "chosen": "choose",
    "gave": "give",
    "given": "give",
    "made": "make",
    "sold": "sell",
    "sent": "send",
    "kept": "keep",
    "held": "hold",
    "took": "take",
    "taken": "take",
    "got": "get",
    "gotten": "get",
    "saw": "see",
    "seen": "see",
    "told": "tell",
    "built": "build",
    "found": "find",
    "left": "leave",
    "meant": "mean",
    "met": "meet",
    "paid": "pay",
    "put": "put",
    "read": "read",
    "set": "set",
    "shared": "share",
    "stored": "store",
    "used": "use",
    "is": "be",
    "are": "be",
    "was": "be",
    "were": "be",
    "been": "be",
    "has": "have",
    "had": "have",
    "does": "do",
    "did": "do",
    "done": "do",
}

# Verbs whose base form ends in 'e'; needed to undo -ing / -ed correctly.
_E_FINAL_BASES = frozenset(
    {
        "us",
        "shar",
        "stor",
        "provid",
        "receiv",
        "combin",
        "analyz",
        "delet",
        "creat",
        "mak",
        "tak",
        "giv",
        "choos",
        "serv",
        "measur",
        "improv",
        "preserv",
        "disclos",
        "exchang",
        "personaliz",
        "manag",
        "requir",
        "includ",
        "determin",
        "observ",
        "enforc",
        "notic",
        "updat",
        "operat",
        "generat",
        "associat",
        "integrat",
        "aggregat",
        "deriv",
        "remov",
        "complet",
        "sav",
        "captur",
        "enabl",
        "fil",
        "infring",
        "investigat",
        "facilitat",
        "promot",
        "validat",
        "authenticat",
        "deactivat",
        "engag",
        "liv",
        "pseudonymiz",
        "anonymiz",
        "advertis",
        "recogniz",
        "acquir",
        "compil",
        "configur",
        "customiz",
        "declin",
        "describ",
        "exercis",
        "financ",
        "localiz",
        "merg",
        "minimiz",
        "optimiz",
        "produc",
        "purchas",
        "reduc",
        "refin",
        "releas",
        "resolv",
        "respons",
        "retriev",
        "revok",
        "rotat",
        "schedul",
        "secur",
        "subscrib",
        "terminat",
        "trad",
        "translat",
        "erase".rstrip("e"),
    }
)

_VOWELS = frozenset("aeiou")

# Irregular noun plurals mapped to singular.
_IRREGULAR_NOUNS = {
    "children": "child",
    "people": "person",
    "men": "man",
    "women": "woman",
    "criteria": "criterion",
    "phenomena": "phenomenon",
    "analyses": "analysis",
    "diagnoses": "diagnosis",
    "indices": "index",
    "matrices": "matrix",
    "geese": "goose",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "lives": "life",
    "selves": "self",
    "themselves": "themselves",
    # Singulars ending in -ie, which the -ies -> -y rule would mangle.
    "cookies": "cookie",
    "movies": "movie",
    "selfies": "selfie",
    "lies": "lie",
    "ties": "tie",
}

# Words that look plural but are not, or whose plural equals the singular.
_UNCOUNTABLE = frozenset(
    {
        "data",
        "metadata",
        "media",
        "information",
        "analytics",
        "biometrics",
        "demographics",
        "diagnostics",
        "news",
        "series",
        "species",
        "contents",
        "premises",
        "goods",
        "proceeds",
        "basis",
        "status",
        "address",  # singular already
        "access",
        "business",
        "process",
        "purchase",
        "this",
        "its",
        "was",
        "is",
        "has",
        "vis",
        "bus",
        "gps",
        "sms",
        "ios",
        "https",
        "cookies",  # handled below: plural but keep rule path simple
    }
) - {"cookies"}


def lemmatize_verb(word: str) -> str:
    """Return the base form of a verb surface form.

    >>> lemmatize_verb("collects")
    'collect'
    >>> lemmatize_verb("sharing")
    'share'
    >>> lemmatize_verb("chose")
    'choose'
    """
    w = word.lower()
    if w in _IRREGULAR_VERBS:
        return _IRREGULAR_VERBS[w]
    if w.endswith("ies") and len(w) > 4:
        return w[:-3] + "y"
    if w.endswith("sses") or w.endswith("shes") or w.endswith("ches") or w.endswith("xes") or w.endswith("zes"):
        return w[:-2]
    if w.endswith("oes") and len(w) > 4:
        return w[:-2]
    if w.endswith("s") and not w.endswith("ss") and len(w) > 3:
        return w[:-1]
    if w.endswith("ing") and len(w) > 4:
        stem = w[:-3]
        return _restore_stem(stem)
    if w.endswith("ied") and len(w) > 4:
        return w[:-3] + "y"
    if w.endswith("ed") and len(w) > 4:
        stem = w[:-2]
        return _restore_stem(stem)
    return w


def _restore_stem(stem: str) -> str:
    """Undo consonant doubling / e-deletion after stripping -ing / -ed."""
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS and stem[-1] not in "sl":
        return stem[:-1]
    if stem in _E_FINAL_BASES:
        return stem + "e"
    # Heuristic: consonant + single vowel + consonant often had a final 'e'
    # ("stor" -> "store"); prefer the lexicon above, fall back to stem as-is.
    return stem


def singularize_noun(word: str) -> str:
    """Return the singular form of a noun surface form.

    >>> singularize_noun("addresses")
    'address'
    >>> singularize_noun("cookies")
    'cookie'
    >>> singularize_noun("data")
    'data'
    """
    w = word.lower()
    if w in _UNCOUNTABLE or len(w) <= 2:
        return w
    if w in _IRREGULAR_NOUNS:
        return _IRREGULAR_NOUNS[w]
    if w.endswith("ies") and len(w) > 4:
        return w[:-3] + "y"
    if w.endswith("sses") or w.endswith("shes") or w.endswith("ches") or w.endswith("xes") or w.endswith("zes"):
        return w[:-2]
    if w.endswith("oes") and len(w) > 4:
        return w[:-2]
    if w.endswith("ses") and len(w) > 4:
        # "purchases" -> "purchase", "addresses" handled above, "purposes" -> "purpose"
        return w[:-1]
    if w.endswith("s") and not w.endswith("ss") and not w.endswith("us") and not w.endswith("is"):
        return w[:-1]
    return w


def singularize_phrase(phrase: str) -> str:
    """Singularize the head (final) noun of a multi-word phrase.

    >>> singularize_phrase("email addresses")
    'email address'
    >>> singularize_phrase("phone numbers of contacts")
    'phone number of contacts'
    """
    tokens = phrase.split()
    if not tokens:
        return phrase
    # The head noun of an "X of Y" phrase is the noun before "of".
    if "of" in tokens:
        head_index = tokens.index("of") - 1
    else:
        head_index = len(tokens) - 1
    if head_index < 0:
        return phrase
    tokens[head_index] = singularize_noun(tokens[head_index])
    return " ".join(tokens)
