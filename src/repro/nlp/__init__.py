"""Deterministic NLP substrate.

This subpackage provides the offline text-processing machinery that the
simulated LLM backend (:mod:`repro.llm.simulated`) is built on: sentence and
word tokenization, light morphology (verb lemmatization and noun
singularization), curated privacy-domain lexicons, noun-phrase chunking with
coordination expansion, and clause-level patterns for data-practice
statements.

Nothing in here depends on network access or model weights; every function
is pure and deterministic.
"""

from repro.nlp.tokenizer import Token, sentences, tokenize
from repro.nlp.morphology import lemmatize_verb, singularize_noun
from repro.nlp.chunker import expand_coordination, noun_phrases
from repro.nlp.patterns import ClauseSplit, split_conditions

__all__ = [
    "Token",
    "sentences",
    "tokenize",
    "lemmatize_verb",
    "singularize_noun",
    "expand_coordination",
    "noun_phrases",
    "ClauseSplit",
    "split_conditions",
]
