"""Per-format artifact walkers: re-verify every durable byte.

One walker per artifact family, each returning an
:class:`~repro.integrity.findings.IntegrityReport` fragment that
:func:`~repro.integrity.fsck.run_fsck` (or the background scrubber)
merges.  Walkers only *observe* — they never move, truncate, or rewrite
anything; that is the repair planner's job — so a scan is always safe to
run against a live store.

Detection reuses the formats' own verification primitives (the store's
``verify_snapshot``, the journal's line decoder, the cassette's envelope
parser) rather than re-implementing them: what the loader would refuse
to serve is exactly what the walker reports.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.integrity.findings import (
    KIND_CROSS_REF,
    KIND_DUPLICATE,
    KIND_FORMAT,
    KIND_HASH_MISMATCH,
    KIND_MISSING_REFERENT,
    KIND_ORPHAN,
    KIND_PENDING_JOURNAL,
    KIND_STALE_SIDECAR,
    KIND_TORN_TAIL,
    Finding,
    IntegrityReport,
    Severity,
)

# ----------------------------------------------------------------------
# Snapshot stores
# ----------------------------------------------------------------------


def _classify_store_failure(failure: str) -> str:
    """Map one ``verify_snapshot`` failure string onto a finding kind."""
    if "sha256 mismatch" in failure:
        return KIND_HASH_MISMATCH
    if "unreadable" in failure or "missing" in failure:
        return KIND_MISSING_REFERENT
    return KIND_FORMAT


def walk_store(
    root: str | Path, *, expected_company: str | None = None
) -> IntegrityReport:
    """Hash-verify one snapshot store: manifest, artifacts, pointers.

    ``expected_company`` enables the cross-reference check a registry
    walk needs: the published snapshot's manifest must name the company
    the registry routed here (catching swapped store directories, which
    every per-file hash is blind to).
    """
    from repro.store.snapshot import (
        CURRENT_NAME,
        JOURNAL_NAME,
        MANIFEST_NAME,
        SnapshotStore,
        _SNAP_PREFIX,
        _TMP_PREFIX,
    )

    root = Path(root)
    report = IntegrityReport(root=str(root))
    report.count("stores")
    store = SnapshotStore(root)
    store_root = str(root)

    current = store.current_id()
    snapshot_ids = store.snapshot_ids()

    if (root / JOURNAL_NAME).exists():
        report.add(
            Finding(
                family="store",
                kind=KIND_PENDING_JOURNAL,
                severity=Severity.WARN,
                path=str(root / JOURNAL_NAME),
                root=store_root,
                detail="write-ahead update journal never resolved "
                "(crash mid-update); recovery rolls forward or back "
                "deterministically",
                repairable=True,
            )
        )

    if store.snapshots_dir.is_dir():
        for entry in sorted(store.snapshots_dir.iterdir(), key=lambda e: e.name):
            if entry.name.startswith(_TMP_PREFIX):
                report.add(
                    Finding(
                        family="store",
                        kind=KIND_ORPHAN,
                        severity=Severity.INFO,
                        path=str(entry),
                        root=store_root,
                        detail="staging directory left by an interrupted "
                        "commit; garbage-collected on repair",
                        repairable=True,
                    )
                )
            elif not entry.name.startswith(_SNAP_PREFIX):
                report.add(
                    Finding(
                        family="store",
                        kind=KIND_ORPHAN,
                        severity=Severity.INFO,
                        path=str(entry),
                        root=store_root,
                        detail="unexpected entry in the snapshots "
                        "directory (not a snapshot, not staging)",
                        repairable=False,
                    )
                )

    if store.quarantine_dir.is_dir():
        report.count(
            "quarantined",
            sum(1 for e in store.quarantine_dir.iterdir() if e.is_dir()),
        )

    # Verify every committed snapshot; validity drives severity below.
    failures_by_id: dict[str, list[str]] = {}
    cross_ref_ids: set[str] = set()
    for snapshot_id in snapshot_ids:
        report.count("snapshots")
        failures = store.verify_snapshot(snapshot_id)
        failures_by_id[snapshot_id] = failures
        if not failures:
            manifest = store.manifest(snapshot_id)
            artifacts = manifest.get("artifacts")
            report.count("manifests")
            report.count(
                "artifacts", len(artifacts) if isinstance(artifacts, dict) else 0
            )
            declared = manifest.get("snapshot_id")
            if declared != snapshot_id:
                # A swapped or copied snapshot directory: internally
                # hash-valid, so verify_snapshot cannot see it — only the
                # identity cross-reference can.
                failures_by_id[snapshot_id] = [
                    f"manifest names {declared!r}, directory is {snapshot_id}"
                ]
                cross_ref_ids.add(snapshot_id)

    valid_ids = [sid for sid, fails in failures_by_id.items() if not fails]
    any_valid = bool(valid_ids)

    for snapshot_id in snapshot_ids:
        failures = failures_by_id[snapshot_id]
        if not failures:
            continue
        if snapshot_id in cross_ref_ids:
            report.add(
                Finding(
                    family="store",
                    kind=KIND_CROSS_REF,
                    severity=Severity.ERROR if any_valid else Severity.CRITICAL,
                    path=str(store.snapshots_dir / snapshot_id),
                    root=store_root,
                    detail=failures[0] + " (swapped or copied snapshot "
                    "directory)",
                    subject=snapshot_id,
                    repairable=any_valid,
                )
            )
            continue
        is_current = snapshot_id == current
        if not any_valid:
            severity = Severity.CRITICAL
        elif is_current:
            severity = Severity.ERROR
        else:
            severity = Severity.WARN
        for failure in failures:
            report.add(
                Finding(
                    family="store",
                    kind=_classify_store_failure(failure),
                    severity=severity,
                    path=str(store.snapshots_dir / snapshot_id),
                    root=store_root,
                    detail=failure
                    + (
                        ""
                        if any_valid
                        else "; no hash-valid snapshot remains in this store"
                    ),
                    subject=snapshot_id,
                    repairable=any_valid,
                )
            )

    # Pointer checks: CURRENT must reference a committed snapshot.
    if current is not None and current not in snapshot_ids:
        report.add(
            Finding(
                family="store",
                kind=KIND_MISSING_REFERENT,
                severity=Severity.ERROR if any_valid else Severity.CRITICAL,
                path=str(root / CURRENT_NAME),
                root=store_root,
                detail=f"CURRENT names {current!r} but no such snapshot "
                "is committed",
                subject=current,
                repairable=any_valid,
            )
        )
    elif current is None and snapshot_ids:
        report.add(
            Finding(
                family="store",
                kind=KIND_CROSS_REF,
                severity=Severity.WARN,
                path=str(root / CURRENT_NAME),
                root=store_root,
                detail="published pointer missing while snapshots exist; "
                "load republishes the newest valid snapshot",
                repairable=any_valid,
            )
        )

    if expected_company is not None and current in failures_by_id and not (
        failures_by_id.get(current)
    ):
        manifest = store.manifest(current)
        company = manifest.get("company")
        if company != expected_company:
            report.add(
                Finding(
                    family="store",
                    kind=KIND_CROSS_REF,
                    severity=Severity.ERROR,
                    path=str(store.snapshots_dir / current / MANIFEST_NAME),
                    root=store_root,
                    detail=f"store serves company {company!r} but the "
                    f"registry routes {expected_company!r} here "
                    "(swapped store directories)",
                    subject=expected_company,
                    repairable=False,
                )
            )
    return report


# ----------------------------------------------------------------------
# Registry manifests
# ----------------------------------------------------------------------


def _looks_like_store(directory: Path) -> bool:
    from repro.store.snapshot import CURRENT_NAME

    return (directory / CURRENT_NAME).exists() or (
        directory / "snapshots"
    ).is_dir()


def _registry_store_dirs(root: Path) -> list[Path]:
    """Every directory under ``shards/`` that looks like a snapshot store."""
    shards = root / "shards"
    if not shards.is_dir():
        return []
    found = []
    for shard_dir in sorted(shards.iterdir()):
        if not shard_dir.is_dir():
            continue
        for store_dir in sorted(shard_dir.iterdir()):
            if store_dir.is_dir() and _looks_like_store(store_dir):
                found.append(store_dir)
    return found


def walk_registry(root: str | Path) -> IntegrityReport:
    """Cross-verify ``REGISTRY.json`` against the shard tree, then walk
    every referenced store (and report unreferenced ones as orphans)."""
    import hashlib

    from repro.errors import RegistryError
    from repro.registry.manifest import MANIFEST_NAME, read_manifest

    root = Path(root)
    report = IntegrityReport(root=str(root))
    registry_root = str(root)
    report.count("manifests")

    try:
        manifest = read_manifest(root)
    except RegistryError as exc:
        report.add(
            Finding(
                family="registry",
                kind=KIND_FORMAT,
                severity=Severity.CRITICAL,
                path=str(root / MANIFEST_NAME),
                root=registry_root,
                detail=f"manifest unreadable: {exc}; every company lookup "
                "fails until it is rebuilt from the surviving stores",
                repairable=True,
            )
        )
        # The index is gone but the stores are not: verify them anyway so
        # the rebuild plan knows what survives.
        for store_dir in _registry_store_dirs(root):
            report.merge(walk_store(store_dir))
        return report

    referenced: set[Path] = set()
    for company in manifest.companies():
        entry = manifest.entries[company]
        store_dir = root / entry.store_dir
        referenced.add(store_dir.resolve())
        digest = hashlib.sha256(company.encode("utf-8")).hexdigest()
        expected_shard = f"shard-{int(digest, 16) % manifest.num_shards:02d}"
        if entry.shard != expected_shard:
            report.add(
                Finding(
                    family="registry",
                    kind=KIND_CROSS_REF,
                    severity=Severity.WARN,
                    path=str(root / MANIFEST_NAME),
                    root=registry_root,
                    detail=f"entry for {company!r} records shard "
                    f"{entry.shard!r} but sha256 assignment says "
                    f"{expected_shard!r}",
                    subject=company,
                    repairable=True,
                )
            )
        if not store_dir.is_dir():
            report.add(
                Finding(
                    family="registry",
                    kind=KIND_MISSING_REFERENT,
                    severity=Severity.ERROR,
                    path=str(store_dir),
                    root=registry_root,
                    detail=f"manifest entry for {company!r} points at a "
                    "store directory that does not exist",
                    subject=company,
                    repairable=True,  # drop + quarantine the entry's provenance
                )
            )
            continue
        sub = walk_store(store_dir, expected_company=company)
        report.merge(sub)

    for store_dir in _registry_store_dirs(root):
        if store_dir.resolve() in referenced:
            continue
        report.add(
            Finding(
                family="registry",
                kind=KIND_ORPHAN,
                severity=Severity.WARN,
                path=str(store_dir),
                root=registry_root,
                detail="store directory not referenced by any manifest "
                "entry (crash between store commit and manifest write); "
                "adoptable if its snapshots verify",
                repairable=True,
            )
        )

    quarantine = root / "quarantine"
    if quarantine.is_dir():
        report.count(
            "quarantined", sum(1 for _ in quarantine.iterdir())
        )
    return report


# ----------------------------------------------------------------------
# Checkpoint journals
# ----------------------------------------------------------------------


def walk_checkpoint(path: str | Path) -> IntegrityReport:
    """Scan one checkpoint journal (a directory or the file itself).

    Unlike :func:`repro.jobs.checkpoint.read_journal` — which stops at
    the first bad line because recovery is prefix-trust — the walker
    reads the whole file, so it distinguishes a torn *tail* (repairable
    truncation) from *mid-file* corruption (the trusted prefix ends and
    every later record, valid or not, is unserveable) and reports
    duplicate headers the reader silently ignores.
    """
    from repro.jobs.checkpoint import JOURNAL_NAME, KIND_HEADER, decode_journal_line

    path = Path(path)
    journal = path / JOURNAL_NAME if path.is_dir() else path
    root = str(journal.parent)
    report = IntegrityReport(root=str(path))
    report.count("journals")
    if not journal.exists():
        return report

    text = journal.read_text("utf-8", errors="replace")
    lines = text.splitlines()
    ends_with_newline = text.endswith("\n")
    headers = 0
    seen_indices: set[int] = set()
    bad_lines: list[int] = []  # 1-based
    records = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        record = decode_journal_line(line)
        if record is None:
            bad_lines.append(number)
            continue
        records += 1
        kind = record.get("kind")
        if kind == KIND_HEADER:
            headers += 1
            if headers > 1:
                report.add(
                    Finding(
                        family="checkpoint",
                        kind=KIND_DUPLICATE,
                        severity=Severity.WARN,
                        path=str(journal),
                        root=root,
                        detail=f"duplicate header record at line {number}; "
                        "recovery trusts the first header only",
                        subject=f"line {number}",
                        repairable=True,
                    )
                )
            continue
        index = record.get("index")
        if not isinstance(index, int):
            bad_lines.append(number)
            records -= 1
            continue
        if index in seen_indices:
            report.add(
                Finding(
                    family="checkpoint",
                    kind=KIND_DUPLICATE,
                    severity=Severity.WARN,
                    path=str(journal),
                    root=root,
                    detail=f"replayed append of record index {index} at "
                    f"line {number} (first occurrence wins)",
                    subject=f"index {index}",
                    repairable=True,
                )
            )
            continue
        seen_indices.add(index)
    report.count("journal_records", records)

    tail_line = len(lines)
    for number in bad_lines:
        is_tail = number == tail_line and not ends_with_newline
        if is_tail:
            report.add(
                Finding(
                    family="checkpoint",
                    kind=KIND_TORN_TAIL,
                    severity=Severity.WARN,
                    path=str(journal),
                    root=root,
                    detail="final line cut mid-append by a crash; "
                    "truncating to the last complete record restores "
                    "the journal",
                    subject=f"line {number}",
                    repairable=True,
                )
            )
        else:
            report.add(
                Finding(
                    family="checkpoint",
                    kind=KIND_HASH_MISMATCH
                    if number < tail_line
                    else KIND_TORN_TAIL,
                    severity=Severity.ERROR,
                    path=str(journal),
                    root=root,
                    detail=f"line {number} fails its checksum mid-file; "
                    "the trusted prefix ends here and every later record "
                    "is re-executed on resume",
                    subject=f"line {number}",
                    repairable=True,  # compact to the trusted prefix
                )
            )

    if headers == 0 and records > 0:
        report.add(
            Finding(
                family="checkpoint",
                kind=KIND_CROSS_REF,
                severity=Severity.ERROR,
                path=str(journal),
                root=root,
                detail="journal carries records but no header: nothing "
                "binds them to a question suite or model identity, so "
                "no resume may trust them",
                repairable=False,
            )
        )
    return report


# ----------------------------------------------------------------------
# Cassettes
# ----------------------------------------------------------------------


def walk_cassette(path: str | Path) -> IntegrityReport:
    """Scan one cassette's JSONL envelopes, cross-checked with the damage
    sidecar its last real load persisted (if any)."""
    from repro.providers.cassette import parse_cassette_line, sidecar_path

    path = Path(path)
    root = str(path)
    report = IntegrityReport(root=root)
    report.count("cassettes")
    if not path.exists():
        return report

    text = path.read_text("utf-8", errors="replace")
    lines = text.splitlines()
    ends_with_newline = text.endswith("\n")
    damaged = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        report.count("cassette_lines")
        try:
            parse_cassette_line(line)
        except ValueError as exc:
            damaged += 1
            is_tail = number == len(lines) and not ends_with_newline
            if is_tail:
                kind, severity = KIND_TORN_TAIL, Severity.WARN
            elif "checksum mismatch" in str(exc):
                kind, severity = KIND_HASH_MISMATCH, Severity.WARN
            elif "digest does not match" in str(exc):
                kind, severity = KIND_CROSS_REF, Severity.WARN
            else:
                kind, severity = KIND_FORMAT, Severity.WARN
            report.add(
                Finding(
                    family="cassette",
                    kind=kind,
                    severity=severity,
                    path=root,
                    root=root,
                    detail=f"line {number}: {exc}; replay skips it "
                    "(the cassette degrades, it never crashes)",
                    subject=f"line {number}",
                    repairable=True,
                )
            )

    side = sidecar_path(path)
    if side.exists():
        try:
            recorded = json.loads(side.read_text("utf-8"))
            recorded_skips = len(recorded.get("skipped", []))
        except (OSError, json.JSONDecodeError):
            recorded_skips = None
        if recorded_skips != damaged:
            report.add(
                Finding(
                    family="cassette",
                    kind=KIND_STALE_SIDECAR,
                    severity=Severity.INFO,
                    path=str(side),
                    root=root,
                    detail="damage sidecar disagrees with the cassette "
                    f"(sidecar records {recorded_skips} skipped lines, "
                    f"scan found {damaged}); refreshed on repair",
                    repairable=True,
                )
            )
    return report


# ----------------------------------------------------------------------
# Certification quarantines
# ----------------------------------------------------------------------


def walk_cert_quarantine(root: str | Path) -> IntegrityReport:
    """Verify a certification-quarantine directory: every ``cert-*`` dir
    must hold the formula and a report whose digest matches its bytes."""
    import hashlib

    root = Path(root)
    report = IntegrityReport(root=str(root))
    quarantine_root = str(root)
    if not root.is_dir():
        return report

    damaged_dir = root / "damaged"
    if damaged_dir.is_dir():
        report.count("quarantined", sum(1 for _ in damaged_dir.iterdir()))

    for entry in sorted(root.iterdir()):
        if not entry.is_dir() or not entry.name.startswith("cert-"):
            continue
        report.count("cert_dirs")
        formula = entry / "formula.smt2"
        cert_report = entry / "report.json"
        missing = [p.name for p in (formula, cert_report) if not p.exists()]
        if missing:
            report.add(
                Finding(
                    family="certs",
                    kind=KIND_MISSING_REFERENT,
                    severity=Severity.ERROR,
                    path=str(entry),
                    root=quarantine_root,
                    detail=f"quarantined certificate evidence incomplete: "
                    f"missing {', '.join(missing)}",
                    subject=entry.name,
                    repairable=False,
                )
            )
            continue
        try:
            payload = json.loads(cert_report.read_text("utf-8"))
            declared = payload.get("script_sha256")
        except (OSError, json.JSONDecodeError) as exc:
            report.add(
                Finding(
                    family="certs",
                    kind=KIND_FORMAT,
                    severity=Severity.ERROR,
                    path=str(cert_report),
                    root=quarantine_root,
                    detail=f"report.json unreadable: {exc}",
                    subject=entry.name,
                    repairable=False,
                )
            )
            continue
        actual = hashlib.sha256(formula.read_bytes()).hexdigest()
        if not isinstance(declared, str) or actual != declared:
            report.add(
                Finding(
                    family="certs",
                    kind=KIND_HASH_MISMATCH,
                    severity=Severity.ERROR,
                    path=str(formula),
                    root=quarantine_root,
                    detail="formula bytes do not hash to the report's "
                    "script_sha256; the quarantined evidence cannot be "
                    "trusted for triage",
                    subject=entry.name,
                    repairable=False,
                )
            )
        elif f"cert-{declared[:12]}" != entry.name:
            report.add(
                Finding(
                    family="certs",
                    kind=KIND_CROSS_REF,
                    severity=Severity.ERROR,
                    path=str(entry),
                    root=quarantine_root,
                    detail=f"directory name {entry.name} disagrees with "
                    f"the certified digest cert-{declared[:12]}",
                    subject=entry.name,
                    repairable=False,
                )
            )
    return report
