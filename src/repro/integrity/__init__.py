"""Fleet-wide integrity: unified fsck, repair planning, and scrubbing.

Five durable formats carry every verdict this system serves — snapshot
stores, the registry manifest, checkpoint journals, cassettes, and
certification quarantines — and each grew its own local corruption
handling.  This package is the system-wide integrity authority over all
of them:

* :mod:`repro.integrity.findings` — the shared vocabulary: a typed
  :class:`Finding` with a severity ladder, aggregated into one
  :class:`IntegrityReport`;
* :mod:`repro.integrity.walkers` — per-format artifact walkers that
  re-verify every durable byte and emit findings;
* :mod:`repro.integrity.fsck` — layout discovery + one unified scan
  (the engine behind ``repro-policy fsck``);
* :mod:`repro.integrity.repair` — the deterministic repair planner:
  dry-run :class:`RepairPlan`, then :meth:`RepairPlan.apply`;
* :mod:`repro.integrity.scrub` — the rate-limited incremental
  background scrubber the serving daemon runs;
* :mod:`repro.integrity.faults` — deterministic bit-rot injection
  seams powering the corruption-matrix tests.
"""

from repro.integrity.findings import (
    FAMILIES,
    Finding,
    IntegrityReport,
    Severity,
    findings_from_quarantine,
)
from repro.integrity.fsck import classify_root, discover_targets, run_fsck
from repro.integrity.repair import RepairAction, RepairPlan, plan_repairs
from repro.integrity.scrub import BackgroundScrubber
from repro.integrity.walkers import (
    walk_cassette,
    walk_cert_quarantine,
    walk_checkpoint,
    walk_registry,
    walk_store,
)

__all__ = [
    "FAMILIES",
    "Finding",
    "IntegrityReport",
    "Severity",
    "findings_from_quarantine",
    "classify_root",
    "discover_targets",
    "run_fsck",
    "RepairAction",
    "RepairPlan",
    "plan_repairs",
    "BackgroundScrubber",
    "walk_cassette",
    "walk_cert_quarantine",
    "walk_checkpoint",
    "walk_registry",
    "walk_store",
]
