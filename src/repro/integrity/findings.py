"""The shared integrity vocabulary: typed findings and one report.

Every walker, the repair planner, the background scrubber, and the CLI
``fsck`` command all speak in :class:`Finding`s — one damage observation
against one artifact, classified by *kind* (what is wrong) and *severity*
(what it costs).  This module is deliberately dependency-free (stdlib
only) so any layer — the store, the registry, the pipeline — can emit or
convert findings without import cycles.

Severity ladder (ascending):

* :attr:`Severity.INFO` — cosmetic or garbage-collectable leftovers
  (orphan staging dirs, stale sidecars); no served state is affected.
* :attr:`Severity.WARN` — damage the format's own redundancy absorbs
  (a torn journal tail, a corrupt non-current snapshot, a skipped
  cassette line); repair restores the clean state, verdicts unchanged.
* :attr:`Severity.ERROR` — damage that changes or blocks what is served
  (the published snapshot corrupt, a manifest entry pointing nowhere);
  repair isolates it loudly, possibly losing data to quarantine.
* :attr:`Severity.CRITICAL` — the integrity authority itself is damaged
  (an unreadable ``REGISTRY.json``, a store with no valid snapshot);
  nothing below it can be trusted until repaired or quarantined.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: The five durable artifact families the integrity subsystem covers.
FAMILIES = ("store", "registry", "checkpoint", "cassette", "certs")

# Finding kinds: what, structurally, is wrong with the artifact.
KIND_HASH_MISMATCH = "hash-mismatch"  # bytes disagree with their recorded digest
KIND_TORN_TAIL = "torn-tail"  # append-only log cut mid-write by a crash
KIND_MISSING_REFERENT = "missing-referent"  # an index points at nothing
KIND_ORPHAN = "orphan-artifact"  # bytes on disk no index references
KIND_CROSS_REF = "cross-ref-inconsistency"  # two sources of truth disagree
KIND_FORMAT = "format-error"  # unparsable or structurally invalid payload
KIND_DUPLICATE = "duplicate-record"  # replayed append (incl. duplicate header)
KIND_PENDING_JOURNAL = "pending-journal"  # write-ahead record never resolved
KIND_STALE_SIDECAR = "stale-sidecar"  # damage sidecar disagrees with the file

KINDS = (
    KIND_HASH_MISMATCH,
    KIND_TORN_TAIL,
    KIND_MISSING_REFERENT,
    KIND_ORPHAN,
    KIND_CROSS_REF,
    KIND_FORMAT,
    KIND_DUPLICATE,
    KIND_PENDING_JOURNAL,
    KIND_STALE_SIDECAR,
)


class Severity(enum.IntEnum):
    """Ascending damage ladder; comparisons follow integer order."""

    INFO = 10
    WARN = 20
    ERROR = 30
    CRITICAL = 40

    def __str__(self) -> str:  # "warn", not "Severity.WARN"
        return self.name.lower()


@dataclass(slots=True)
class Finding:
    """One damage observation against one artifact.

    ``root`` is the artifact-family root the finding belongs to (the
    snapshot-store directory, the registry root, the checkpoint
    directory, the cassette file, the cert-quarantine directory): the
    repair planner groups findings by ``(family, root)`` so each root is
    repaired exactly once, in deterministic order.  ``path`` is the
    damaged artifact itself; ``subject`` names the logical victim (a
    snapshot id, a company, a 1-based line number) when one exists.
    ``repairable`` means repair can *restore* behaviour (byte-identical
    verdicts); unrepairable damage is still acted on — quarantined with
    provenance — but data was lost and the operator must know.
    """

    family: str
    kind: str
    severity: Severity
    path: str
    root: str
    detail: str
    subject: str | None = None
    repairable: bool = False

    def summary(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        fixable = "repairable" if self.repairable else "UNREPAIRABLE"
        return (
            f"{self.severity}: {self.family}/{self.kind} at {self.path}"
            f"{subject}: {self.detail} ({fixable})"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "kind": self.kind,
            "severity": str(self.severity),
            "path": self.path,
            "root": self.root,
            "detail": self.detail,
            "subject": self.subject,
            "repairable": self.repairable,
        }


def findings_from_quarantine(reports, root: str | object) -> list[Finding]:
    """Convert snapshot-store :class:`~repro.store.snapshot.QuarantineReport`
    records into typed findings (the unified surfacing path: the store and
    the registry shard loader both report corruption through this shape).
    """
    findings: list[Finding] = []
    for report in reports:
        detail = report.reason
        if report.failures:
            detail += ": " + "; ".join(report.failures)
        findings.append(
            Finding(
                family="store",
                kind=KIND_HASH_MISMATCH,
                severity=Severity.ERROR,
                path=report.quarantined_to or str(root),
                root=str(root),
                detail=detail,
                subject=report.snapshot_id,
                repairable=False,  # already quarantined: evidence, not a plan
            )
        )
    return findings


#: Scan-volume counters an :class:`IntegrityReport` tracks alongside its
#: findings — "0 findings over 0 artifacts" must read differently from
#: "0 findings over 4,000 hashed artifacts".
SCAN_COUNTERS = (
    "stores",
    "snapshots",
    "artifacts",
    "manifests",
    "journals",
    "journal_records",
    "cassettes",
    "cassette_lines",
    "cert_dirs",
    "quarantined",  # already-quarantined evidence dirs seen (not findings)
)


@dataclass(slots=True)
class IntegrityReport:
    """Every finding from one scan (or one accumulating scrub pass)."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    scanned: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in SCAN_COUNTERS}
    )
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    @property
    def repairable(self) -> list[Finding]:
        return [f for f in self.findings if f.repairable]

    @property
    def unrepairable(self) -> list[Finding]:
        return [f for f in self.findings if not f.repairable]

    def count(self, name: str, n: int = 1) -> None:
        self.scanned[name] = self.scanned.get(name, 0) + n

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def by_severity(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            out[key] = out.get(key, 0) + 1
        return out

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.kind] = out.get(finding.kind, 0) + 1
        return out

    def merge(self, other: "IntegrityReport") -> None:
        """Fold a sub-scan in (findings append, counters add)."""
        self.findings.extend(other.findings)
        for name, value in other.scanned.items():
            self.scanned[name] = self.scanned.get(name, 0) + value
        self.seconds += other.seconds

    def summary(self) -> str:
        scanned = ", ".join(
            f"{value} {name}"
            for name, value in self.scanned.items()
            if value
        )
        lines = [
            f"fsck {self.root}: "
            + ("clean" if self.clean else f"{len(self.findings)} findings")
            + (f" ({scanned})" if scanned else "")
        ]
        for finding in sorted(
            self.findings, key=lambda f: (-f.severity, f.family, f.path)
        ):
            lines.append("  " + finding.summary())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "root": self.root,
            "clean": self.clean,
            "findings": [finding.as_dict() for finding in self.findings],
            "by_severity": self.by_severity(),
            "by_kind": self.by_kind(),
            "scanned": {k: v for k, v in self.scanned.items() if v},
            "seconds": round(self.seconds, 6),
        }
