"""The deterministic repair planner: dry-run plan, then ``apply()``.

:func:`plan_repairs` turns an :class:`~repro.integrity.findings.IntegrityReport`
into a :class:`RepairPlan` — a typed, ordered list of
:class:`RepairAction`\\ s that can be printed (dry run) before anything
touches disk.  :meth:`RepairPlan.apply` then executes it, reusing the
formats' own healing machinery instead of inventing new write paths:

* **stores** — journal roll-forward/back and staging GC via
  ``SnapshotStore.recover()``, corrupt snapshots quarantined with their
  structured reports, the newest valid snapshot republished via
  ``SnapshotStore.load()``, and — when a ``rebuilder`` is supplied —
  rebuild-from-text recommits an empty store (the same fallback
  ``PolicyPipeline.load_model(policy_text=...)`` uses), so repaired
  stores serve **byte-identical verdicts**;
* **registry** — the manifest is rebuilt from surviving stores' own
  snapshot manifests, dangling entries are dropped *with provenance*
  (the dropped entry is written to ``quarantine/``), and orphan stores
  are adopted back into the index;
* **checkpoint journals** — torn tails truncate in place (the writer's
  own reopen repair); mid-file corruption compacts to the trusted
  prefix with the damaged original kept as ``journal.jsonl.corrupt``;
* **cassettes** — damaged lines compact away (valid lines kept
  byte-verbatim), the original preserved as ``<cassette>.corrupt``,
  and the damage sidecar refreshed;
* **cert quarantines** — damaged evidence is never "fixed" (it *is*
  the forensic record); it moves to ``damaged/`` with a provenance
  note, so triage never trusts bytes that fail their own digest.

Unrepairable damage is always quarantined loudly, never silently served:
it stays on :attr:`RepairPlan.unrepairable` and keeps ``fsck``'s exit
code at 9 even after a repair pass.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import IntegrityError, SnapshotError
from repro.integrity.findings import (
    KIND_CROSS_REF,
    KIND_DUPLICATE,
    KIND_HASH_MISMATCH,
    KIND_MISSING_REFERENT,
    KIND_ORPHAN,
    KIND_PENDING_JOURNAL,
    KIND_STALE_SIDECAR,
    KIND_TORN_TAIL,
    Finding,
    IntegrityReport,
)

#: Optional rebuild seam: given a store root, return a fresh
#: :class:`~repro.core.pipeline.PolicyModel` to recommit (rebuild-from-
#: text), or ``None`` when no source text is known for that store.
Rebuilder = Callable[[str], object]

#: Deterministic family repair order: member stores heal before the
#: registry index is reconciled against them.
_FAMILY_ORDER = {"store": 0, "registry": 1, "checkpoint": 2, "cassette": 3, "certs": 4}


@dataclass(slots=True)
class RepairAction:
    """One planned (then executed) repair step."""

    action: str
    family: str
    root: str
    path: str
    detail: str
    subject: str | None = None
    status: str = "planned"  # planned | applied | failed | skipped
    result: str = ""

    def summary(self) -> str:
        head = f"{self.family}/{self.action} {self.path}"
        if self.subject:
            head += f" [{self.subject}]"
        tail = f" -> {self.status}" + (f": {self.result}" if self.result else "")
        return head + (tail if self.status != "planned" else f": {self.detail}")

    def as_dict(self) -> dict[str, object]:
        return {
            "action": self.action,
            "family": self.family,
            "root": self.root,
            "path": self.path,
            "detail": self.detail,
            "subject": self.subject,
            "status": self.status,
            "result": self.result,
        }


@dataclass(slots=True)
class RepairPlan:
    """A dry-run repair plan; :meth:`apply` executes it exactly once."""

    root: str
    actions: list[RepairAction] = field(default_factory=list)
    unrepairable: list[Finding] = field(default_factory=list)
    applied: bool = False

    @property
    def empty(self) -> bool:
        return not self.actions and not self.unrepairable

    def summary(self) -> str:
        if self.empty:
            return f"repair plan for {self.root}: nothing to do"
        lines = [
            f"repair plan for {self.root}: {len(self.actions)} actions, "
            f"{len(self.unrepairable)} unrepairable findings"
        ]
        lines.extend("  " + action.summary() for action in self.actions)
        for finding in self.unrepairable:
            lines.append("  unrepairable: " + finding.summary())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "root": self.root,
            "applied": self.applied,
            "actions": [action.as_dict() for action in self.actions],
            "unrepairable": [f.as_dict() for f in self.unrepairable],
        }

    def apply(self, *, rebuilder: Rebuilder | None = None) -> "RepairPlan":
        """Execute every action in plan order; statuses record outcomes.

        Deterministic and idempotent at the *state* level: re-running a
        plan against the already-repaired tree finds each action's goal
        already met.  Raises :class:`~repro.errors.IntegrityError` if the
        plan was already applied (build a fresh plan from a fresh scan).
        """
        if self.applied:
            raise IntegrityError("repair plan already applied; re-run fsck")
        self.applied = True
        by_root: dict[tuple[str, str], list[RepairAction]] = {}
        for action in self.actions:
            by_root.setdefault((action.family, action.root), []).append(action)
        for (family, root), actions in sorted(
            by_root.items(), key=lambda item: (_FAMILY_ORDER[item[0][0]], item[0][1])
        ):
            handler = _APPLIERS[family]
            try:
                handler(Path(root), actions, rebuilder)
            except Exception as exc:  # noqa: BLE001 - isolate per root
                for action in actions:
                    if action.status == "planned":
                        action.status = "failed"
                        action.result = f"{type(exc).__name__}: {exc}"
        return self

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for action in self.actions:
            out[action.status] = out.get(action.status, 0) + 1
        return out


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------


def plan_repairs(report: IntegrityReport) -> RepairPlan:
    """Derive the deterministic repair plan for one scan report."""
    plan = RepairPlan(root=report.root)
    plan.unrepairable = list(report.unrepairable)
    by_root: dict[tuple[str, str], list[Finding]] = {}
    for finding in report.findings:
        by_root.setdefault((finding.family, finding.root), []).append(finding)
    for (family, root), findings in sorted(
        by_root.items(), key=lambda item: (_FAMILY_ORDER[item[0][0]], item[0][1])
    ):
        planner = _PLANNERS[family]
        plan.actions.extend(planner(root, findings))
    return plan


def _plan_store(root: str, findings: list[Finding]) -> list[RepairAction]:
    actions: list[RepairAction] = []
    quarantine_subjects: list[str] = []
    needs_recover = False
    needs_republish = False
    store_lost = False
    for finding in findings:
        if finding.kind == KIND_PENDING_JOURNAL:
            needs_recover = True
        elif finding.kind == KIND_ORPHAN and finding.repairable:
            actions.append(
                RepairAction(
                    action="gc-staging",
                    family="store",
                    root=root,
                    path=finding.path,
                    detail="remove the interrupted commit's staging directory",
                )
            )
        elif finding.subject and finding.subject.startswith("snap-"):
            if finding.subject not in quarantine_subjects:
                quarantine_subjects.append(finding.subject)
            if not finding.repairable:
                store_lost = True
        elif finding.kind in (KIND_MISSING_REFERENT, KIND_CROSS_REF):
            # Pointer damage (CURRENT dangling or missing).
            needs_republish = finding.repairable or needs_republish
            store_lost = store_lost or not finding.repairable
    if needs_recover:
        actions.append(
            RepairAction(
                action="recover-journal",
                family="store",
                root=root,
                path=str(Path(root) / "JOURNAL.json"),
                detail="resolve the pending update: roll forward if the "
                "successor verifies, roll back otherwise",
            )
        )
    for subject in sorted(quarantine_subjects):
        actions.append(
            RepairAction(
                action="quarantine-snapshot",
                family="store",
                root=root,
                path=str(Path(root) / "snapshots" / subject),
                detail="move the corrupt snapshot aside with a structured "
                "report (provenance preserved)",
                subject=subject,
            )
        )
    if quarantine_subjects or needs_republish:
        actions.append(
            RepairAction(
                action="republish-current",
                family="store",
                root=root,
                path=str(Path(root) / "CURRENT"),
                detail="re-point the published snapshot at the newest "
                "hash-valid survivor",
            )
        )
    if store_lost:
        actions.append(
            RepairAction(
                action="rebuild-store",
                family="store",
                root=root,
                path=root,
                detail="no valid snapshot survives: rebuild from policy "
                "text and recommit (skipped when no rebuilder is given; "
                "extraction is deterministic, so the rebuilt model serves "
                "byte-identical verdicts)",
            )
        )
    return actions


def _plan_registry(root: str, findings: list[Finding]) -> list[RepairAction]:
    actions: list[RepairAction] = []
    for finding in findings:
        if finding.kind == "format-error":
            actions.append(
                RepairAction(
                    action="rebuild-manifest",
                    family="registry",
                    root=root,
                    path=finding.path,
                    detail="quarantine the unreadable manifest and rebuild "
                    "the index from surviving stores' own snapshot manifests",
                )
            )
        elif finding.kind == KIND_MISSING_REFERENT and finding.subject:
            actions.append(
                RepairAction(
                    action="drop-entry",
                    family="registry",
                    root=root,
                    path=finding.path,
                    detail="drop the dangling manifest entry; its full "
                    "provenance is written to quarantine/ first",
                    subject=finding.subject,
                )
            )
        elif finding.kind == KIND_ORPHAN:
            actions.append(
                RepairAction(
                    action="adopt-store",
                    family="registry",
                    root=root,
                    path=finding.path,
                    detail="register the orphan store under the company its "
                    "published snapshot manifest names",
                )
            )
        elif finding.kind == KIND_CROSS_REF and finding.subject:
            actions.append(
                RepairAction(
                    action="rewrite-entry",
                    family="registry",
                    root=root,
                    path=finding.path,
                    detail="recompute the entry's shard assignment from "
                    "sha256(company) mod num_shards",
                    subject=finding.subject,
                )
            )
    return actions


def _plan_checkpoint(root: str, findings: list[Finding]) -> list[RepairAction]:
    journal_path = findings[0].path
    tail_only = all(
        f.kind == KIND_TORN_TAIL and f.severity.name == "WARN" for f in findings
    )
    has_unrepairable = any(not f.repairable for f in findings)
    if has_unrepairable:
        action = RepairAction(
            action="quarantine-journal",
            family="checkpoint",
            root=root,
            path=journal_path,
            detail="no header binds these records to a suite: move the "
            "whole journal aside as journal.jsonl.corrupt (never resumed "
            "from)",
        )
    elif tail_only:
        action = RepairAction(
            action="truncate-tail",
            family="checkpoint",
            root=root,
            path=journal_path,
            detail="truncate the torn final line back to the last "
            "complete record (the writer's own reopen repair)",
        )
    else:
        action = RepairAction(
            action="compact-journal",
            family="checkpoint",
            root=root,
            path=journal_path,
            detail="rewrite the trusted prefix (first-occurrence records, "
            "byte-verbatim lines); the damaged original is kept as "
            "journal.jsonl.corrupt",
        )
    return [action]


def _plan_cassette(root: str, findings: list[Finding]) -> list[RepairAction]:
    damage = [f for f in findings if f.kind != KIND_STALE_SIDECAR]
    actions: list[RepairAction] = []
    if damage:
        actions.append(
            RepairAction(
                action="compact-cassette",
                family="cassette",
                root=root,
                path=root,
                detail=f"drop {len(damage)} damaged envelope lines (valid "
                "lines kept byte-verbatim); the original is kept as "
                "<cassette>.corrupt and the damage sidecar is refreshed",
            )
        )
    elif any(f.kind == KIND_STALE_SIDECAR for f in findings):
        actions.append(
            RepairAction(
                action="refresh-sidecar",
                family="cassette",
                root=root,
                path=root,
                detail="re-scan the cassette and rewrite (or remove) the "
                "damage sidecar so the two agree",
            )
        )
    return actions


def _plan_certs(root: str, findings: list[Finding]) -> list[RepairAction]:
    actions: list[RepairAction] = []
    seen: set[str] = set()
    for finding in findings:
        subject = finding.subject or Path(finding.path).name
        if subject in seen:
            continue
        seen.add(subject)
        actions.append(
            RepairAction(
                action="quarantine-evidence",
                family="certs",
                root=root,
                path=str(Path(root) / subject),
                detail="damaged certificate evidence cannot be repaired "
                "(it IS the forensic record); move it to damaged/ with a "
                "provenance note so triage never trusts it",
                subject=subject,
            )
        )
    return actions


_PLANNERS = {
    "store": _plan_store,
    "registry": _plan_registry,
    "checkpoint": _plan_checkpoint,
    "cassette": _plan_cassette,
    "certs": _plan_certs,
}


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------


def _apply_store(
    root: Path, actions: list[RepairAction], rebuilder: Rebuilder | None
) -> None:
    from repro.store.snapshot import SnapshotStore

    store = SnapshotStore(root)
    for action in actions:
        if action.action == "gc-staging":
            shutil.rmtree(action.path, ignore_errors=True)
            action.status = "applied"
            action.result = "staging directory removed"
        elif action.action == "recover-journal":
            outcome = store.recover()
            action.status = "applied"
            action.result = outcome or "journal already resolved"
        elif action.action == "quarantine-snapshot":
            failures = store.verify_snapshot(action.subject)
            if not failures:
                # Internally valid but cross-referenced wrong (swapped
                # directory): quarantine on the identity mismatch.
                declared = store.manifest(action.subject).get("snapshot_id")
                if declared == action.subject:
                    action.status = "skipped"
                    action.result = "snapshot verifies; nothing to quarantine"
                    continue
                failures = [
                    f"manifest names {declared!r}, directory is "
                    f"{action.subject}"
                ]
            report = store.quarantine(action.subject, failures)
            action.status = "applied"
            action.result = f"moved to {report.quarantined_to}"
        elif action.action == "republish-current":
            try:
                result = store.load()
            except SnapshotError as exc:
                action.status = "failed"
                action.result = f"no valid snapshot to publish: {exc}"
                continue
            action.status = "applied"
            action.result = f"serving {result.snapshot_id}"
        elif action.action == "rebuild-store":
            model = rebuilder(str(root)) if rebuilder is not None else None
            if model is None:
                action.status = "skipped"
                action.result = (
                    "no rebuilder/policy text available for this store"
                )
                continue
            # recover() first: a pending journal or staging dir must not
            # outlive the rebuild.
            store.recover()
            info = store.commit(model)
            action.status = "applied"
            action.result = f"rebuilt and committed {info.snapshot_id}"


def _consistent_num_shards(
    companies_by_shard: list[tuple[str, str]], default: int = 8
) -> int:
    """The smallest shard count under which every observed company hashes
    to the shard directory it sits in (falling back to ``default``)."""
    import hashlib

    for candidate in range(1, 65):
        ok = True
        for company, shard in companies_by_shard:
            digest = int(hashlib.sha256(company.encode("utf-8")).hexdigest(), 16)
            if f"shard-{digest % candidate:02d}" != shard:
                ok = False
                break
        if ok and companies_by_shard:
            return candidate
    return default


def _store_entry(root: Path, store_dir: Path):
    """Build a manifest entry from a store's own published snapshot, or
    ``None`` when the store has no valid snapshot to vouch for it."""
    from repro.registry.manifest import RegistryEntry
    from repro.store.snapshot import SnapshotStore

    store = SnapshotStore(store_dir)
    current = store.current_id()
    candidates = [current] if current else []
    candidates.extend(s for s in reversed(store.snapshot_ids()) if s != current)
    for snapshot_id in candidates:
        if store.verify_snapshot(snapshot_id):
            continue
        manifest = store.manifest(snapshot_id)
        company = manifest.get("company")
        revision = manifest.get("revision")
        if not isinstance(company, str) or not isinstance(revision, int):
            continue
        meta_path = store.snapshots_dir / snapshot_id / "meta.json"
        sector = target_words = None
        try:
            meta = json.loads(meta_path.read_text("utf-8"))
            provenance = meta.get("provenance")
            if isinstance(provenance, dict):
                sector = provenance.get("sector")
                target_words = provenance.get("target_words")
        except (OSError, json.JSONDecodeError):  # pragma: no cover - verified above
            pass
        return RegistryEntry(
            company=company,
            shard=store_dir.parent.name,
            store_dir=store_dir.relative_to(root).as_posix(),
            revision=revision,
            sector=sector if isinstance(sector, str) else None,
            seed=None,  # generator seed is not persisted in the snapshot
            target_words=target_words if isinstance(target_words, int) else None,
        )
    return None


def _apply_registry(
    root: Path, actions: list[RepairAction], rebuilder: Rebuilder | None
) -> None:
    import hashlib

    from repro.errors import RegistryError
    from repro.integrity.walkers import _registry_store_dirs
    from repro.registry.manifest import (
        MANIFEST_NAME,
        Manifest,
        read_manifest,
        write_manifest,
    )

    rebuild = [a for a in actions if a.action == "rebuild-manifest"]
    if rebuild:
        manifest_path = root / MANIFEST_NAME
        quarantine = root / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        if manifest_path.exists():
            shutil.copy2(manifest_path, quarantine / (MANIFEST_NAME + ".corrupt"))
        entries = {}
        pairs = []
        for store_dir in _registry_store_dirs(root):
            entry = _store_entry(root, store_dir)
            if entry is not None and entry.company not in entries:
                entries[entry.company] = entry
                pairs.append((entry.company, entry.shard))
        num_shards = _consistent_num_shards(pairs)
        write_manifest(root, Manifest(entries=entries, num_shards=num_shards))
        for action in rebuild:
            action.status = "applied"
            action.result = (
                f"rebuilt with {len(entries)} companies over "
                f"{num_shards} shards (damaged index kept in quarantine/)"
            )

    try:
        manifest = read_manifest(root)
    except RegistryError as exc:
        for action in actions:
            if action.status == "planned":
                action.status = "failed"
                action.result = f"manifest still unreadable: {exc}"
        return

    dirty = False
    for action in actions:
        if action.status != "planned":
            continue
        if action.action == "drop-entry":
            entry = manifest.entries.get(action.subject)
            if entry is None:
                action.status = "skipped"
                action.result = "entry already gone"
                continue
            quarantine = root / "quarantine"
            quarantine.mkdir(parents=True, exist_ok=True)
            from repro.store.atomic import atomic_write_json

            atomic_write_json(
                quarantine / f"dropped-entry-{action.subject}.json",
                {
                    "reason": "store directory missing; entry dropped by "
                    "integrity repair",
                    "entry": entry.as_dict(),
                },
            )
            del manifest.entries[action.subject]
            dirty = True
            action.status = "applied"
            action.result = "entry dropped; provenance in quarantine/"
        elif action.action == "adopt-store":
            entry = _store_entry(root, Path(action.path))
            if entry is None:
                action.status = "failed"
                action.result = "orphan store has no valid snapshot to adopt"
                continue
            existing = manifest.entries.get(entry.company)
            if existing is not None and existing.store_dir != entry.store_dir:
                action.status = "failed"
                action.result = (
                    f"company {entry.company!r} already registered at "
                    f"{existing.store_dir}; orphan left for the operator"
                )
                continue
            manifest.entries[entry.company] = entry
            dirty = True
            action.status = "applied"
            action.result = f"adopted as {entry.company!r}"
        elif action.action == "rewrite-entry":
            entry = manifest.entries.get(action.subject)
            if entry is None:
                action.status = "skipped"
                action.result = "entry no longer present"
                continue
            digest = int(
                hashlib.sha256(entry.company.encode("utf-8")).hexdigest(), 16
            )
            shard = f"shard-{digest % manifest.num_shards:02d}"
            from dataclasses import replace

            manifest.entries[action.subject] = replace(entry, shard=shard)
            dirty = True
            action.status = "applied"
            action.result = f"shard recomputed to {shard}"
    if dirty:
        write_manifest(root, manifest)


def _apply_checkpoint(
    root: Path, actions: list[RepairAction], rebuilder: Rebuilder | None
) -> None:
    from repro.jobs.checkpoint import (
        KIND_HEADER,
        decode_journal_line,
        repair_torn_tail,
    )
    from repro.store.atomic import atomic_write_text

    for action in actions:
        journal = Path(action.path)
        if action.action == "truncate-tail":
            repaired = repair_torn_tail(journal)
            action.status = "applied"
            action.result = (
                "torn tail truncated" if repaired else "tail already clean"
            )
        elif action.action == "quarantine-journal":
            corrupt = journal.with_name(journal.name + ".corrupt")
            os.replace(journal, corrupt)
            action.status = "applied"
            action.result = f"journal moved to {corrupt.name}"
        elif action.action == "compact-journal":
            text = journal.read_text("utf-8", errors="replace")
            lines = text.splitlines()
            ends_with_newline = text.endswith("\n")
            kept: list[str] = []
            seen_header = False
            seen_indices: set[int] = set()
            dropped = 0
            for number, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                record = decode_journal_line(line)
                if record is None:
                    is_tail = number == len(lines) and not ends_with_newline
                    dropped += 1
                    if is_tail:
                        continue
                    # Mid-file corruption ends the trusted prefix: later
                    # records (valid or not) stay only in the .corrupt copy.
                    dropped += sum(
                        1 for later in lines[number:] if later.strip()
                    )
                    break
                if record.get("kind") == KIND_HEADER:
                    if seen_header:
                        dropped += 1
                        continue
                    seen_header = True
                    kept.append(line)
                    continue
                index = record.get("index")
                if isinstance(index, int):
                    if index in seen_indices:
                        dropped += 1
                        continue
                    seen_indices.add(index)
                kept.append(line)
            shutil.copy2(journal, journal.with_name(journal.name + ".corrupt"))
            atomic_write_text(
                journal, "\n".join(kept) + ("\n" if kept else "")
            )
            action.status = "applied"
            action.result = (
                f"compacted to {len(kept)} trusted lines ({dropped} dropped; "
                "damaged original kept as journal.jsonl.corrupt)"
            )


def _apply_cassette(
    root: Path, actions: list[RepairAction], rebuilder: Rebuilder | None
) -> None:
    from repro.providers.cassette import (
        load_cassette,
        parse_cassette_line,
        persist_cassette_report,
    )
    from repro.store.atomic import atomic_write_text

    for action in actions:
        cassette = Path(action.path)
        if action.action == "compact-cassette":
            text = cassette.read_text("utf-8", errors="replace")
            kept = []
            dropped = 0
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    parse_cassette_line(line)
                except ValueError:
                    dropped += 1
                    continue
                kept.append(line)
            shutil.copy2(cassette, cassette.with_name(cassette.name + ".corrupt"))
            atomic_write_text(
                cassette, "\n".join(kept) + ("\n" if kept else "")
            )
            _, report = load_cassette(cassette)
            persist_cassette_report(report)
            action.status = "applied"
            action.result = (
                f"kept {len(kept)} valid lines, dropped {dropped} "
                "(original kept as .corrupt; sidecar refreshed)"
            )
        elif action.action == "refresh-sidecar":
            _, report = load_cassette(cassette)
            side = persist_cassette_report(report)
            action.status = "applied"
            action.result = (
                "sidecar rewritten" if side else "sidecar removed (cassette clean)"
            )


def _apply_certs(
    root: Path, actions: list[RepairAction], rebuilder: Rebuilder | None
) -> None:
    from repro.store.atomic import atomic_write_json

    damaged_root = root / "damaged"
    for action in actions:
        source = Path(action.path)
        if not source.is_dir():
            action.status = "skipped"
            action.result = "evidence directory already gone"
            continue
        damaged_root.mkdir(parents=True, exist_ok=True)
        destination = damaged_root / source.name
        if destination.exists():
            shutil.rmtree(destination, ignore_errors=True)
        os.replace(source, destination)
        atomic_write_json(
            destination / "provenance.json",
            {
                "reason": action.detail,
                "moved_from": str(source),
                "moved_by": "integrity repair",
            },
        )
        action.status = "applied"
        action.result = f"moved to {destination}"


_APPLIERS = {
    "store": _apply_store,
    "registry": _apply_registry,
    "checkpoint": _apply_checkpoint,
    "cassette": _apply_cassette,
    "certs": _apply_certs,
}
