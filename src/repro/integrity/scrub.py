"""Rate-limited incremental background scrubbing for a serving fleet.

Bit-rot is only caught when bytes are *read*, and a warm fleet can serve
for days without re-reading a cold shard from disk.
:class:`BackgroundScrubber` closes that window: a daemon thread walks the
registry's stores one snapshot per tick, hash-verifying every artifact
against its manifest, and surfaces damage as typed
:class:`~repro.integrity.findings.Finding`\\ s plus ``integrity``/``scrub``
counters in :class:`~repro.core.metrics.PipelineMetrics`.

Three properties keep it safe to run under live traffic:

* **admission-aware** — a tick with queries in flight (``gate.depth > 0``)
  verifies nothing and re-arms; the scrubber only consumes idle I/O, so
  served tail latency is bounded by one inter-tick interval, not by a
  full-store hash pass;
* **incremental with a persisted cursor** — ``SCRUB_CURSOR.json`` at the
  registry root records ``(company, snapshot position)`` after every
  tick, so a restarted daemon resumes mid-pass instead of re-verifying
  from the top (the oldest-verified shard is never starved by restarts);
* **read-only** — the scrubber *detects* and *reports*; repair stays an
  explicit operator action (``repro-policy fsck --repair``) or the load
  path's own quarantine-and-fall-back healing.

The thread is owned by :class:`~repro.server.daemon.PolicyServer` when
``ServerConfig.scrub_interval`` is set, but :meth:`run_once` is public
and deterministic so tests (and one-shot tools) can drive ticks without
a thread or a clock.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.integrity.findings import Finding

#: Cursor file persisted at the registry root after every tick.
CURSOR_NAME = "SCRUB_CURSOR.json"

#: Findings kept in memory for ``/stats`` (bounded; oldest dropped).
MAX_RECENT_FINDINGS = 64


class BackgroundScrubber:
    """Incrementally hash-verify every store under a registry root.

    Parameters
    ----------
    root:
        Registry root (the directory holding ``REGISTRY.json``).
    interval:
        Seconds between ticks when driven by :meth:`start`'s thread.
    gate:
        Optional admission gate; a tick observing ``gate.depth > 0``
        pauses instead of verifying (counted in ``scrub_paused``).
    metrics / metrics_lock:
        Optional :class:`~repro.core.metrics.PipelineMetrics` to update
        under ``metrics_lock`` (the serving daemon passes its own).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        interval: float = 5.0,
        gate=None,
        metrics=None,
        metrics_lock: threading.Lock | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("scrub interval must be > 0 seconds")
        self.root = Path(root)
        self.interval = interval
        self._gate = gate
        self._metrics = metrics
        self._metrics_lock = metrics_lock or threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._state_lock = threading.Lock()
        # Progress gauges (exposed via stats()).
        self.passes = 0
        self.paused = 0
        self.artifacts_verified = 0
        self.snapshots_verified = 0
        self.findings_total = 0
        self.recent_findings: list[Finding] = []
        self._cursor = self._load_cursor()

    # -- cursor persistence ------------------------------------------------

    @property
    def cursor_path(self) -> Path:
        return self.root / CURSOR_NAME

    def _load_cursor(self) -> dict[str, object]:
        try:
            raw = json.loads(self.cursor_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {"company": None, "position": 0}
        if not isinstance(raw, dict):
            return {"company": None, "position": 0}
        company = raw.get("company")
        position = raw.get("position")
        return {
            "company": company if isinstance(company, str) else None,
            "position": position if isinstance(position, int) else 0,
        }

    def _save_cursor(self) -> None:
        # Deliberately NOT the fsync'd atomic writer: a cursor lost to a
        # crash costs one re-verified snapshot, while two fsyncs per tick
        # are a measurable tail-latency tax on a colocated serving
        # daemon.  Rename keeps the file always-parseable; durability is
        # not required.
        tmp = self.cursor_path.with_name(self.cursor_path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(dict(self._cursor)), encoding="utf-8")
            tmp.replace(self.cursor_path)
        except OSError:  # pragma: no cover - read-only root; scrub proceeds
            pass

    # -- one tick ----------------------------------------------------------

    def run_once(self) -> list[Finding]:
        """One scrub tick: verify the next snapshot, advance the cursor.

        Returns the findings surfaced by this tick (empty when paused,
        when the registry is empty, or when the verified snapshot is
        clean).  Deterministic given the on-disk state and cursor.
        """
        if self._gate is not None and self._gate.depth > 0:
            with self._state_lock:
                self.paused += 1
            self._count(scrub_paused=1)
            return []
        from repro.errors import RegistryError
        from repro.registry.manifest import read_manifest
        from repro.store.snapshot import SnapshotStore

        try:
            manifest = read_manifest(self.root)
        except RegistryError as exc:
            finding = Finding(
                family="registry",
                kind="format-error",
                severity=_severity("CRITICAL"),
                path=str(self.root / "REGISTRY.json"),
                root=str(self.root),
                detail=f"scrub could not read the registry manifest: {exc}",
                repairable=True,
            )
            self._record([finding])
            return [finding]
        companies = manifest.companies()
        if not companies:
            return []
        with self._state_lock:
            company = self._cursor["company"]
            if company not in companies:
                company = companies[0]
            index = companies.index(company)
            position = int(self._cursor["position"])

        entry = manifest.entries[company]
        store = SnapshotStore(self.root / entry.store_dir)
        snapshot_ids = store.snapshot_ids()
        findings: list[Finding] = []
        verified_files = 0
        if position >= len(snapshot_ids):
            # This store is done: advance to the next company.
            position = 0
            index += 1
            if index >= len(companies):
                index = 0
                with self._state_lock:
                    self.passes += 1
                self._count(scrub_passes=1)
            with self._state_lock:
                self._cursor = {"company": companies[index], "position": 0}
                self._save_cursor()
            return []
        snapshot_id = snapshot_ids[position]
        failures = store.verify_snapshot(snapshot_id)
        try:
            verified_files = len(store.manifest(snapshot_id).get("artifacts", {}))
        except Exception:  # noqa: BLE001 - manifest itself may be the damage
            verified_files = 0
        if failures:
            from repro.integrity.walkers import _classify_store_failure

            current = store.current_id()
            severity = _severity("ERROR" if snapshot_id == current else "WARN")
            for failure in failures:
                findings.append(
                    Finding(
                        family="store",
                        kind=_classify_store_failure(failure),
                        severity=severity,
                        path=str(store.snapshots_dir / snapshot_id),
                        root=str(store.root),
                        detail=f"scrub: {failure}",
                        subject=snapshot_id,
                        repairable=True,
                    )
                )
        with self._state_lock:
            self.snapshots_verified += 1
            self.artifacts_verified += verified_files
            self._cursor = {"company": company, "position": position + 1}
            self._save_cursor()
        self._count(scrub_artifacts=verified_files)
        if findings:
            self._record(findings)
        return findings

    def _record(self, findings: list[Finding]) -> None:
        with self._state_lock:
            self.findings_total += len(findings)
            self.recent_findings.extend(findings)
            del self.recent_findings[:-MAX_RECENT_FINDINGS]
        self._count(integrity_findings=len(findings))

    def _count(self, **deltas: int) -> None:
        if self._metrics is None:
            return
        with self._metrics_lock:
            for name, delta in deltas.items():
                setattr(self._metrics, name, getattr(self._metrics, name) + delta)

    # -- thread lifecycle --------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="integrity-scrubber", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - scrubbing must never kill serving
                with self._state_lock:
                    self.paused += 1

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, object]:
        with self._state_lock:
            return {
                "interval": self.interval,
                "running": self._thread is not None,
                "passes": self.passes,
                "paused_ticks": self.paused,
                "snapshots_verified": self.snapshots_verified,
                "artifacts_verified": self.artifacts_verified,
                "findings": self.findings_total,
                "cursor": dict(self._cursor),
                "recent_findings": [
                    f.as_dict() for f in self.recent_findings[-8:]
                ],
            }


def _severity(name: str):
    from repro.integrity.findings import Severity

    return Severity[name]
