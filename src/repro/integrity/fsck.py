"""Layout discovery + one unified integrity scan (``repro-policy fsck``).

:func:`run_fsck` points at *anything* durable this system writes — a
registry root, a single snapshot store, a checkpoint directory, a
cassette file, a cert-quarantine directory, or a tree containing any mix
— classifies what it finds, runs the right walker over each target, and
merges everything into one :class:`~repro.integrity.findings.IntegrityReport`.

Classification is structural, not positional: a directory containing
``REGISTRY.json`` is a registry (its walker owns the whole subtree), one
with ``CURRENT`` or ``snapshots/`` is a store, one with ``journal.jsonl``
is a checkpoint, ``cert-*`` children make a cert quarantine, and any
other ``*.jsonl`` file is a cassette.  Unclassified directories are
recursed into, so one ``fsck /var/lib/repro`` covers a whole deployment.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.errors import IntegrityError
from repro.integrity.findings import IntegrityReport
from repro.integrity.walkers import (
    walk_cassette,
    walk_cert_quarantine,
    walk_checkpoint,
    walk_registry,
    walk_store,
)

#: Walker dispatch by target kind.
_WALKERS = {
    "registry": walk_registry,
    "store": walk_store,
    "checkpoint": walk_checkpoint,
    "cassette": walk_cassette,
    "certs": walk_cert_quarantine,
}

#: Directory names never recursed into during discovery: quarantines are
#: resolved evidence (counted, not re-flagged), and a store/registry
#: walker already accounts for its own.
_SKIP_DIRS = frozenset({"quarantine", "damaged"})


def classify_root(path: str | Path) -> str | None:
    """The artifact family ``path`` itself is, or ``None`` for a plain
    directory that only *contains* artifacts (recurse to find them)."""
    from repro.jobs.checkpoint import JOURNAL_NAME
    from repro.registry.manifest import MANIFEST_NAME
    from repro.store.snapshot import CURRENT_NAME

    path = Path(path)
    if path.is_file():
        if path.name == JOURNAL_NAME:
            return "checkpoint"
        if path.suffix == ".jsonl":
            return "cassette"
        return None
    if not path.is_dir():
        return None
    if (path / MANIFEST_NAME).exists():
        return "registry"
    if (path / CURRENT_NAME).exists() or (path / "snapshots").is_dir():
        return "store"
    if (path / JOURNAL_NAME).exists():
        return "checkpoint"
    if any(
        child.is_dir() and child.name.startswith("cert-")
        for child in path.iterdir()
    ):
        return "certs"
    return None


def discover_targets(root: str | Path) -> list[tuple[str, Path]]:
    """Every ``(kind, path)`` under ``root``, deterministically ordered.

    A classified directory is a walk boundary: its walker owns the
    subtree, so discovery does not descend into it (a registry's member
    stores must not be double-walked).
    """
    from repro.jobs.checkpoint import JOURNAL_NAME

    root = Path(root)
    targets: list[tuple[str, Path]] = []

    def visit(directory: Path) -> None:
        kind = classify_root(directory)
        if kind is not None:
            targets.append((kind, directory))
            if kind in ("registry", "store"):
                return  # the walker owns the whole subtree
            # A checkpoint or cert quarantine may share its directory
            # with other artifacts (e.g. a pipeline workdir); keep
            # scanning, but not the cert-* dirs themselves.
        for child in sorted(directory.iterdir()):
            if child.is_dir():
                if child.name in _SKIP_DIRS or child.name.startswith("cert-"):
                    continue
                visit(child)
            elif child.suffix == ".jsonl" and child.name != JOURNAL_NAME:
                targets.append(("cassette", child))

    if root.is_file():
        file_kind = classify_root(root)
        return [] if file_kind is None else [(file_kind, root)]
    visit(root)
    return targets


def run_fsck(root: str | Path) -> IntegrityReport:
    """Discover and verify every durable artifact under ``root``."""
    root = Path(root)
    if not root.exists():
        raise IntegrityError(f"fsck root {root} does not exist")
    started = time.perf_counter()
    report = IntegrityReport(root=str(root))
    for kind, target in discover_targets(root):
        report.merge(_WALKERS[kind](target))
    report.seconds = time.perf_counter() - started
    return report
