"""Deterministic bit-rot injection for the corruption-matrix tests.

The snapshot store's :mod:`repro.store.faults` simulates *crashes* —
kills between durable operations.  This module simulates the other half
of the threat model: **silent media damage** to bytes that were written
correctly.  Every injector is deterministic (offsets derive from the
file size, never from a clock or RNG) so a corruption-matrix failure
reproduces byte-for-byte.

All injectors operate in place on real files and return a short
description of what they did, which the matrix tests embed in failure
messages.
"""

from __future__ import annotations

import os
from pathlib import Path


def flip_bit(path: str | Path, *, offset: int | None = None, bit: int = 0) -> str:
    """Flip one bit; the classic undetectable-without-hashing rot.

    ``offset`` defaults to the middle of the file (deterministic), and is
    clamped into range.  Empty files are left untouched.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return f"flip_bit: {path.name} is empty, nothing to flip"
    index = (len(data) // 2) if offset is None else min(offset, len(data) - 1)
    data[index] ^= 1 << (bit & 7)
    path.write_bytes(bytes(data))
    return f"flip_bit: flipped bit {bit & 7} of byte {index} in {path.name}"


def truncate_tail(path: str | Path, *, keep_fraction: float = 0.5) -> str:
    """Cut the file mid-record, as a torn write or a short copy would."""
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return f"truncate_tail: {path.name} cut from {size} to {keep} bytes"


def zero_block(path: str | Path, *, offset: int | None = None, length: int = 64) -> str:
    """Zero a block of bytes, as a failed sector read-back would."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return f"zero_block: {path.name} is empty, nothing to zero"
    start = (len(data) // 3) if offset is None else min(offset, len(data) - 1)
    end = min(start + length, len(data))
    data[start:end] = b"\x00" * (end - start)
    path.write_bytes(bytes(data))
    return f"zero_block: zeroed bytes [{start}, {end}) in {path.name}"


def swap_files(path_a: str | Path, path_b: str | Path) -> str:
    """Swap two files' contents, as a botched restore or rsync would.

    Each file individually remains well-formed bytes — only hashing
    against a manifest (or a content-addressed name) can notice.
    """
    path_a, path_b = Path(path_a), Path(path_b)
    data_a = path_a.read_bytes()
    data_b = path_b.read_bytes()
    path_a.write_bytes(data_b)
    path_b.write_bytes(data_a)
    return f"swap_files: exchanged {path_a.name} and {path_b.name}"


#: The fault catalog the corruption matrix parameterizes over: name ->
#: single-file injector.  ``swap_files`` needs two targets, so matrix
#: tests drive it separately where a sibling artifact exists.
SINGLE_FILE_FAULTS = {
    "flip_bit": flip_bit,
    "truncate_tail": truncate_tail,
    "zero_block": zero_block,
}
