"""Clause template library for the policy generator.

Templates are realistic privacy-policy sentences with named slots.  They are
written in the active, enumerated style that real consumer policies use
(and that the paper's TikTok/Meta excerpts exhibit): compound statements,
"such as" enumerations, conditional carve-outs, vague purpose tails, and
references to external law.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Shared vocabulary pools
# ---------------------------------------------------------------------------

USER_PROVIDED_DATA: tuple[str, ...] = (
    "name",
    "age",
    "username",
    "password",
    "language",
    "email",
    "phone number",
    "social media account information",
    "profile image",
    "date of birth",
    "biography",
    "postal address",
    "survey responses",
    "feedback",
    "identity documents",
)

AUTO_COLLECTED_DATA: tuple[str, ...] = (
    "ip address",
    "device identifier",
    "device model",
    "operating system",
    "browser type",
    "screen resolution",
    "time zone setting",
    "mobile carrier",
    "network type",
    "battery level",
    "app version",
    "crash reports",
    "performance logs",
    "keystroke patterns",
    "usage information",
    "interaction data",
    "clickstream data",
    "session duration",
    "cookie identifiers",
    "advertising identifiers",
    "approximate location",
    "gps location",
    "browsing history",
    "search history",
)

SENSITIVE_DATA: tuple[str, ...] = (
    "precise location",
    "biometric identifiers",
    "faceprints",
    "voiceprints",
    "health information",
    "financial information",
    "government identification numbers",
)

#: Data types reserved for deliberately *incoherent* contradiction pairs,
#: so the injected inconsistencies do not poison queries about mainstream
#: data types.
CONTRADICTION_DATA: tuple[str, ...] = (
    "loyalty program data",
    "vehicle registration details",
    "warranty records",
    "gift card balances",
    "referral codes",
)

PARTNERS: tuple[str, ...] = (
    "advertisers",
    "measurement partners",
    "analytics providers",
    "service providers",
    "business partners",
    "payment processors",
    "cloud providers",
    "content moderators",
    "device manufacturers",
    "mobile carriers",
    "data brokers",
    "marketing partners",
    "fraud prevention services",
    "identity verification services",
    "delivery partners",
)

AUTHORITIES: tuple[str, ...] = (
    "law enforcement",
    "government authorities",
    "regulators",
    "courts",
    "tax authorities",
    "emergency services",
)

PURPOSES: tuple[str, ...] = (
    "personalize your experience",
    "improve the platform",
    "measure advertising effectiveness",
    "detect and prevent fraud",
    "enforce our terms of service",
    "provide customer support",
    "develop new features",
    "maintain the safety of the community",
    "comply with legal obligations",
    "conduct research and analytics",
    "verify your identity",
    "process your transactions",
)

CONDITIONS: tuple[str, ...] = (
    "with your consent",
    "when required by law",
    "if you enable this feature in your settings",
    "when you use the relevant feature",
    "for legitimate business purposes",
    "for security purposes",
    "unless you opt out in your account settings",
    "where permitted by applicable law",
    "when necessary to protect the vital interests of any person",
    "in connection with a corporate transaction",
    "subject to appropriate safeguards",
    "to the extent permitted by your jurisdiction",
)

USER_ACTIONS: tuple[str, ...] = (
    "create an account",
    "upload content",
    "send messages",
    "make a purchase",
    "participate in a survey",
    "contact customer support",
    "sync your contacts",
    "enable location services",
    "connect a social media account",
    "register for an event",
    "report a problem",
    "join a community",
)

RETENTION_PERIODS: tuple[str, ...] = (
    "as long as your account remains active",
    "for up to 90 days",
    "for up to 18 months",
    "for the period required by applicable law",
    "until you request deletion",
    "for as long as necessary to provide the service",
)

RIGHTS: tuple[str, ...] = (
    "access",
    "delete",
    "correct",
    "download",
    "restrict the processing of",
    "object to the processing of",
)

# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ClauseTemplate:
    """A sentence template with slot names matching the pools above.

    ``weight`` biases sampling; higher-weight templates appear more often,
    approximating the frequency profile of real policies (collection and
    sharing statements dominate).
    """

    text: str
    slots: tuple[str, ...]
    weight: int = 1
    tags: tuple[str, ...] = ()


COLLECTION_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "We collect your {data} when you {user_action}.",
        ("data", "user_action"),
        weight=3,
    ),
    ClauseTemplate(
        "When you {user_action}, we collect {data} and {data2}.",
        ("user_action", "data", "data2"),
        weight=3,
    ),
    ClauseTemplate(
        "If you {user_action}, we will access and collect information such as {data}, {data2}, and {data3}.",
        ("user_action", "data", "data2", "data3"),
        weight=2,
    ),
    ClauseTemplate(
        "You may provide {data}, {data2}, and {data3} directly to us.",
        ("data", "data2", "data3"),
        weight=2,
    ),
    ClauseTemplate(
        "We automatically collect {data} from your device.",
        ("data",),
        weight=3,
    ),
    ClauseTemplate(
        "We collect {data} {condition}.",
        ("data", "condition"),
        weight=2,
    ),
    ClauseTemplate(
        "Our systems log {data} and {data2} each time you open the app.",
        ("data", "data2"),
    ),
    ClauseTemplate(
        "We infer {data} from your {data2}.",
        ("data", "data2"),
    ),
    ClauseTemplate(
        "We receive {data} from {partner}.",
        ("data", "partner"),
        weight=2,
    ),
    ClauseTemplate(
        "We obtain {data} about you from {partner} and combine it with {data2}.",
        ("data", "partner", "data2"),
    ),
)

SHARING_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "We share your {data} with {partner} {condition}.",
        ("data", "partner", "condition"),
        weight=4,
    ),
    ClauseTemplate(
        "We disclose {data} to {authority} when required by law.",
        ("data", "authority"),
        weight=2,
    ),
    ClauseTemplate(
        "We may provide {data} and {data2} to {partner} for {purpose_noun} purposes.",
        ("data", "data2", "partner", "purpose_noun"),
        weight=2,
    ),
    ClauseTemplate(
        "We transfer {data} to {partner} {condition}.",
        ("data", "partner", "condition"),
        weight=2,
    ),
    ClauseTemplate(
        "We share your {data} with {partner} with your consent or when required by law.",
        ("data", "partner"),
        weight=2,
        tags=("compound_condition",),
    ),
    ClauseTemplate(
        "We do not sell your {data} to {partner}.",
        ("data", "partner"),
        tags=("negation",),
    ),
    ClauseTemplate(
        "We do not share your {data} with third parties.",
        ("data",),
        tags=("negation", "exception_setup"),
    ),
    ClauseTemplate(
        "We may share your {data} with {partner} {condition}.",
        ("data", "partner", "condition"),
        tags=("exception_payoff",),
    ),
)

USE_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "We use your {data} to {purpose}.",
        ("data", "purpose"),
        weight=4,
    ),
    ClauseTemplate(
        "We analyze {data} and {data2} to {purpose}.",
        ("data", "data2", "purpose"),
        weight=2,
    ),
    ClauseTemplate(
        "We combine {data} with {data2} to {purpose}.",
        ("data", "data2", "purpose"),
    ),
    ClauseTemplate(
        "We process {data} {condition}.",
        ("data", "condition"),
        weight=2,
    ),
    ClauseTemplate(
        "We use {data} to train our recommendation models.",
        ("data",),
    ),
)

RETENTION_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "We retain your {data} {retention}.",
        ("data", "retention"),
        weight=3,
    ),
    ClauseTemplate(
        "We store {data} on servers located in multiple jurisdictions.",
        ("data",),
    ),
    ClauseTemplate(
        "We delete {data} when it is no longer necessary for the purposes described above.",
        ("data",),
    ),
    ClauseTemplate(
        "We preserve {data} {condition}.",
        ("data", "condition"),
    ),
)

RIGHTS_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "You may {right} your {data} through your account settings.",
        ("right", "data"),
        weight=2,
    ),
    ClauseTemplate(
        "You can request that we {right} your {data} by contacting us.",
        ("right", "data"),
    ),
    ClauseTemplate(
        "If you delete your account, we will delete your {data} {condition}.",
        ("data", "condition"),
    ),
)

SECURITY_TEMPLATES: tuple[ClauseTemplate, ...] = (
    ClauseTemplate(
        "We protect {data} using encryption in transit and at rest.",
        ("data",),
    ),
    ClauseTemplate(
        "We monitor {data} to detect unauthorized access.",
        ("data",),
    ),
    ClauseTemplate(
        "Access to {data} is restricted to personnel who need it to {purpose}.",
        ("data", "purpose"),
    ),
)

PURPOSE_NOUNS: tuple[str, ...] = (
    "advertising",
    "analytics",
    "research",
    "marketing",
    "measurement",
    "security",
    "fraud prevention",
)


@dataclass(frozen=True, slots=True)
class SectionSpec:
    """One policy section: heading, intro line, and its template pool."""

    heading: str
    intro: str
    templates: tuple[ClauseTemplate, ...]
    share: float  # fraction of the practice-sentence budget
    pools: dict[str, tuple[str, ...]] = field(default_factory=dict)


def default_sections() -> tuple[SectionSpec, ...]:
    """The section plan shared by all generated policies."""
    return (
        SectionSpec(
            heading="Information You Provide",
            intro="We collect information that you provide directly when you use the Platform.",
            templates=COLLECTION_TEMPLATES,
            share=0.22,
            pools={"data": USER_PROVIDED_DATA},
        ),
        SectionSpec(
            heading="Automatically Collected Information",
            intro="We automatically collect certain information when you access or use the Platform.",
            templates=COLLECTION_TEMPLATES,
            share=0.18,
            pools={"data": AUTO_COLLECTED_DATA},
        ),
        SectionSpec(
            heading="How We Use Your Information",
            intro="We use the information we collect for the purposes described below.",
            templates=USE_TEMPLATES,
            share=0.18,
        ),
        SectionSpec(
            heading="How We Share Your Information",
            intro="We share the categories of information described above in the following circumstances.",
            templates=SHARING_TEMPLATES,
            share=0.22,
        ),
        SectionSpec(
            heading="Data Retention",
            intro="We retain information for as long as necessary to provide the Platform.",
            templates=RETENTION_TEMPLATES,
            share=0.07,
        ),
        SectionSpec(
            heading="Your Rights and Choices",
            intro="You have choices about the information we collect and how it is used.",
            templates=RIGHTS_TEMPLATES,
            share=0.08,
        ),
        SectionSpec(
            heading="Data Security",
            intro="We maintain administrative, technical, and physical safeguards for your information.",
            templates=SECURITY_TEMPLATES,
            share=0.05,
        ),
    )


BOILERPLATE_INTRO = (
    "{company} Privacy Policy. Last updated {date}. "
    'Welcome to {company} ("{company}", "we", "us", or "our"). '
    "This Privacy Policy describes how {company} collects, uses, shares, and "
    "otherwise processes the personal information of users of the {platform} "
    "platform. Please read this policy carefully. By accessing or using the "
    "{platform} platform, you acknowledge the practices described in this policy."
)

BOILERPLATE_OUTRO = (
    "Changes To This Policy. We may update this Privacy Policy from time to "
    "time. When we do, we will notify you through your account settings or by "
    "other reasonable means as required by applicable law. Contact Us. If you "
    "have questions about this Privacy Policy, you can contact our data "
    "protection officer through the contact form available in the application."
)
