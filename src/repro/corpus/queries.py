"""Canned user queries for the Phase 3 verification experiments.

Queries are declarative data-practice statements, the input format the
paper's query path extracts parameters from ("Does TikTok share my email
with advertisers?" is first normalized to "TikTok shares the user's email
with advertisers").  Expectations are coarse: whether the policy should
entail the practice, should not, or depends on an uninterpreted condition.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PolicyQuery:
    """One verification query with its expected outcome class."""

    text: str
    policy: str  # "tiktak" | "metabook"
    description: str
    expectation: str  # "valid" | "invalid" | "conditional" | "any"


POLICY_QUERIES: tuple[PolicyQuery, ...] = (
    PolicyQuery(
        text="The user provides email to TikTak.",
        policy="tiktak",
        description="direct collection stated in the profile enumeration",
        expectation="valid",
    ),
    PolicyQuery(
        text="The user provides phone number to TikTak.",
        policy="tiktak",
        description="enumerated profile field",
        expectation="valid",
    ),
    PolicyQuery(
        text="TikTak collects email address.",
        policy="tiktak",
        description="vocabulary bridging: email address vs email",
        expectation="any",
    ),
    PolicyQuery(
        text="TikTak shares biometric identifiers with data brokers.",
        policy="tiktak",
        description="should not follow unless an exception edge exists",
        expectation="any",
    ),
    PolicyQuery(
        text="The user provides interaction data to MetaBook.",
        policy="metabook",
        description="Table 3 interaction tracking example",
        expectation="valid",
    ),
    PolicyQuery(
        text="MetaBook processes financial information.",
        policy="metabook",
        description="Table 3 payments example",
        expectation="valid",
    ),
    PolicyQuery(
        text="MetaBook preserves truncated credit card information.",
        policy="metabook",
        description="payments preservation edge, gated on the purchase condition",
        expectation="conditional",
    ),
    PolicyQuery(
        text="MetaBook sells health information to advertisers.",
        policy="metabook",
        description="denied, absent, or caught in a contradictory exception pair",
        expectation="any",
    ),
)
