"""OPP-115-style taxonomy seed.

The Usable Privacy Policy Project's OPP-115 corpus annotates policies with
ten data-practice categories and a vocabulary of personal-information
types.  Algorithm 1 takes this taxonomy as the ``T`` input used to match
data types during extraction; Chain-of-Layer then *extends* it dynamically,
which is the paper's answer to fixed-taxonomy brittleness.
"""

from __future__ import annotations

#: The ten OPP-115 data-practice categories.
OPP115_CATEGORIES: tuple[str, ...] = (
    "First Party Collection/Use",
    "Third Party Sharing/Collection",
    "User Choice/Control",
    "User Access, Edit and Deletion",
    "Data Retention",
    "Data Security",
    "Policy Change",
    "Do Not Track",
    "International and Specific Audiences",
    "Other",
)

#: OPP-115 personal-information type attribute values, mapped to the data
#: terms that signal them.
OPP115_DATA_TYPES: dict[str, tuple[str, ...]] = {
    "Contact": (
        "name",
        "email address",
        "phone number",
        "postal address",
        "contact information",
    ),
    "Location": (
        "location",
        "gps location",
        "precise location",
        "approximate location",
        "ip-based location",
    ),
    "Demographic": ("age", "gender", "language", "demographic information"),
    "Financial": (
        "payment information",
        "credit card information",
        "transaction history",
        "purchase history",
        "billing address",
    ),
    "Health": ("health information", "fitness data", "medical information"),
    "Computer information": (
        "ip address",
        "device identifier",
        "browser type",
        "operating system",
        "device model",
        "screen resolution",
    ),
    "Cookies and tracking elements": (
        "cookie",
        "pixel",
        "web beacon",
        "advertising identifier",
        "session identifier",
    ),
    "User online activities": (
        "browsing history",
        "search history",
        "watch history",
        "interaction data",
        "clickstream data",
        "usage information",
    ),
    "User profile": (
        "username",
        "password",
        "profile image",
        "profile information",
        "account information",
        "biography",
    ),
    "Social media data": (
        "contact list",
        "social media account information",
        "friend list",
        "follower list",
        "social graph",
    ),
    "Survey data": ("survey responses", "feedback", "ratings"),
    "Generic personal information": ("personal information", "personal data"),
}


def match_categories(text: str) -> list[str]:
    """OPP-115 data-type categories whose signal terms occur in ``text``.

    This is the ``Match(s, T)`` step of Algorithm 1: a coarse taxonomy tag
    per segment that seeds the dynamic hierarchy.
    """
    lowered = text.lower()
    matched = []
    for category, signals in OPP115_DATA_TYPES.items():
        if any(signal in lowered for signal in signals):
            matched.append(category)
    return matched
