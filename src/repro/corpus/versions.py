"""Policy-version mutation: generate realistic "last updated" revisions.

Policy authors revise policies incrementally — a regulator forces a
consent gate here, a new feature adds a disclosure there, a deprecated
practice disappears.  ``make_version`` applies a seeded mix of such edits
to a policy text and returns ground-truth metadata, which the diffing and
incremental-update experiments score against.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.corpus.clauses import CONDITIONS, PARTNERS, USER_PROVIDED_DATA
from repro.errors import CorpusError

#: Statements eligible for removal/reconditioning: simple company practices.
_EDITABLE_RE = re.compile(r"^We (?:collect|share|use|retain|analyze) .*\.$")


@dataclass(frozen=True, slots=True)
class VersionEdit:
    """One applied mutation, for scoring diffs against ground truth."""

    kind: str  # "add" | "remove" | "recondition"
    sentence: str
    revised: str | None = None  # for recondition: the new sentence


@dataclass(frozen=True, slots=True)
class PolicyVersion:
    """A mutated policy text plus the edits that produced it."""

    text: str
    edits: tuple[VersionEdit, ...]

    @property
    def num_edits(self) -> int:
        return len(self.edits)


def _editable_sentences(text: str) -> list[str]:
    from repro.nlp.tokenizer import sentences

    return [s for s in sentences(text) if _EDITABLE_RE.match(s)]


def make_version(
    text: str,
    *,
    seed: int = 0,
    add: int = 2,
    remove: int = 2,
    recondition: int = 2,
) -> PolicyVersion:
    """Produce a revised policy version with the requested edit mix.

    Args:
        text: the base policy text.
        seed: RNG seed; identical inputs give identical revisions.
        add: number of new disclosure sentences appended.
        remove: number of existing practice sentences removed.
        recondition: number of practices gated behind a new condition.
    """
    rng = random.Random(seed)
    editable = _editable_sentences(text)
    if remove + recondition > len(editable):
        raise CorpusError(
            f"policy has only {len(editable)} editable statements; "
            f"requested {remove + recondition} edits"
        )
    targets = rng.sample(editable, remove + recondition)
    to_remove = targets[:remove]
    to_recondition = targets[remove:]

    edits: list[VersionEdit] = []
    revised = text
    for sentence in to_remove:
        revised = revised.replace(sentence, "", 1)
        edits.append(VersionEdit(kind="remove", sentence=sentence))
    for sentence in to_recondition:
        condition = rng.choice(CONDITIONS)
        new_sentence = sentence[:-1] + f" {condition}."
        revised = revised.replace(sentence, new_sentence, 1)
        edits.append(
            VersionEdit(kind="recondition", sentence=sentence, revised=new_sentence)
        )

    additions = []
    for i in range(add):
        data = rng.choice(USER_PROVIDED_DATA)
        partner = rng.choice(PARTNERS)
        condition = rng.choice(CONDITIONS)
        new_sentence = (
            f"We share your {data} with {partner} {condition} "
            f"under revision clause {seed}-{i}."
        )
        additions.append(new_sentence)
        edits.append(VersionEdit(kind="add", sentence=new_sentence))
    if additions:
        revised = revised.rstrip() + "\n" + "\n".join(additions) + "\n"

    return PolicyVersion(text=revised, edits=tuple(edits))
