"""Seeded policy generator.

Produces synthetic privacy policies of a requested size by sampling the
clause-template library.  Generation is deterministic per seed, never emits
the same sentence twice within a document, and records ground-truth
metadata (injected exception pairs, showcase statements) that the analysis
experiments score against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.clauses import (
    AUTHORITIES,
    CONTRADICTION_DATA,
    AUTO_COLLECTED_DATA,
    BOILERPLATE_INTRO,
    BOILERPLATE_OUTRO,
    CONDITIONS,
    PARTNERS,
    PURPOSE_NOUNS,
    PURPOSES,
    RETENTION_PERIODS,
    RIGHTS,
    SENSITIVE_DATA,
    USER_ACTIONS,
    USER_PROVIDED_DATA,
    ClauseTemplate,
    SectionSpec,
    default_sections,
)
from repro.errors import CorpusError

_ALL_DATA = USER_PROVIDED_DATA + AUTO_COLLECTED_DATA + SENSITIVE_DATA
_WORDS_PER_SENTENCE_ESTIMATE = 11


@dataclass(frozen=True, slots=True)
class ExceptionPair:
    """A deliberately injected general-rule/exception statement pair."""

    data_type: str
    general_rule: str
    exception: str
    coherent: bool  # True when the exception carries an explicit condition

    def as_dict(self) -> dict[str, object]:
        return {
            "data_type": self.data_type,
            "general_rule": self.general_rule,
            "exception": self.exception,
            "coherent": self.coherent,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "ExceptionPair":
        return cls(
            data_type=str(raw["data_type"]),
            general_rule=str(raw["general_rule"]),
            exception=str(raw["exception"]),
            coherent=bool(raw["coherent"]),
        )


@dataclass(slots=True)
class GeneratorProfile:
    """Per-company flavour of a generated policy."""

    company: str
    platform: str
    seed: int = 0
    extra_data: tuple[str, ...] = ()
    extra_user_actions: tuple[str, ...] = ()
    showcase_statements: tuple[str, ...] = ()
    exception_pairs: int = 6
    incoherent_exception_fraction: float = 0.15
    date: str = "March 2025"


@dataclass(slots=True)
class PolicyDocument:
    """A generated policy plus its ground-truth metadata."""

    company: str
    platform: str
    text: str
    seed: int
    sections: list[str] = field(default_factory=list)
    exception_pairs: list[ExceptionPair] = field(default_factory=list)
    showcase_statements: list[str] = field(default_factory=list)

    @property
    def word_count(self) -> int:
        return len(self.text.split())

    def ground_truth(self) -> dict[str, object]:
        """JSON-safe ground-truth metadata, suitable for persistence.

        Everything an experiment needs to score verdicts against the
        generator's injected material — carried on
        :attr:`~repro.core.pipeline.PolicyModel.provenance` so it
        round-trips through snapshot save/load (see
        :func:`ground_truth_exception_pairs` for the inverse).
        """
        return {
            "generator": "clause-template",
            "company": self.company,
            "platform": self.platform,
            "seed": self.seed,
            "word_count": self.word_count,
            "sections": list(self.sections),
            "exception_pairs": [p.as_dict() for p in self.exception_pairs],
            "showcase_statements": list(self.showcase_statements),
        }


def ground_truth_exception_pairs(
    provenance: dict[str, object],
) -> list[ExceptionPair]:
    """Restore the injected pairs from persisted ground-truth metadata."""
    raw = provenance.get("exception_pairs", [])
    if not isinstance(raw, list):
        raise CorpusError("ground truth exception_pairs must be a list")
    try:
        return [ExceptionPair.from_dict(entry) for entry in raw]
    except (KeyError, TypeError) as exc:
        raise CorpusError(f"malformed ground-truth exception pair: {exc}") from exc


class PolicyGenerator:
    """Deterministic clause-template policy generator."""

    def __init__(self, profile: GeneratorProfile) -> None:
        self.profile = profile
        self._rng = random.Random(profile.seed)
        self._emitted: set[str] = set()

    # ------------------------------------------------------------------
    # Slot filling
    # ------------------------------------------------------------------

    def _pool(self, slot: str, section: SectionSpec) -> tuple[str, ...]:
        if slot in section.pools:
            return section.pools[slot]
        if slot.startswith("data"):
            return _ALL_DATA + self.profile.extra_data
        if slot == "partner":
            return PARTNERS
        if slot == "authority":
            return AUTHORITIES
        if slot == "purpose":
            return PURPOSES
        if slot == "condition":
            return CONDITIONS
        if slot == "user_action":
            return USER_ACTIONS + self.profile.extra_user_actions
        if slot == "retention":
            return RETENTION_PERIODS
        if slot == "right":
            return RIGHTS
        if slot == "purpose_noun":
            return PURPOSE_NOUNS
        raise CorpusError(f"template uses unknown slot {slot!r}")

    def _fill(self, template: ClauseTemplate, section: SectionSpec) -> str:
        values: dict[str, str] = {}
        used_data: set[str] = set()
        for slot in template.slots:
            pool = self._pool(slot, section)
            if slot.startswith("data"):
                pool = tuple(p for p in pool if p not in used_data) or pool
            choice = self._rng.choice(pool)
            if slot.startswith("data"):
                used_data.add(choice)
            values[slot] = choice
        return template.text.format(**values)

    def _sentences_for_section(
        self, section: SectionSpec, count: int
    ) -> list[str]:
        weighted = [t for t in section.templates for _ in range(t.weight)]
        sentences: list[str] = []
        attempts = 0
        while len(sentences) < count and attempts < count * 30:
            attempts += 1
            template = self._rng.choice(weighted)
            if "exception" in " ".join(template.tags):
                continue  # exception pairs are injected explicitly
            sentence = self._fill(template, section)
            if sentence in self._emitted:
                continue
            self._emitted.add(sentence)
            sentences.append(sentence)
        return sentences

    # ------------------------------------------------------------------
    # Exception-pair injection
    # ------------------------------------------------------------------

    def _make_exception_pairs(self) -> list[ExceptionPair]:
        pairs: list[ExceptionPair] = []
        coherent_pool = list(SENSITIVE_DATA + USER_PROVIDED_DATA[:6])
        incoherent_pool = list(CONTRADICTION_DATA)
        self._rng.shuffle(coherent_pool)
        self._rng.shuffle(incoherent_pool)
        incoherent_budget = max(
            0, round(self.profile.exception_pairs * self.profile.incoherent_exception_fraction)
        )
        for i in range(self.profile.exception_pairs):
            partner = self._rng.choice(PARTNERS)
            incoherent = i < incoherent_budget and incoherent_pool
            if incoherent:
                # A genuinely contradictory pair: same broad receiver, no
                # condition.  Drawn from a reserved data pool so the
                # inconsistency stays local.
                data = incoherent_pool.pop()
                exception = f"We share your {data} with third parties."
            elif coherent_pool:
                data = coherent_pool.pop()
                condition = self._rng.choice(CONDITIONS)
                exception = f"We may share your {data} with {partner} {condition}."
            else:
                break
            general = f"We do not share your {data} with third parties."
            pairs.append(
                ExceptionPair(
                    data_type=data,
                    general_rule=general,
                    exception=exception,
                    coherent=not incoherent,
                )
            )
        return pairs

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def generate(self, target_words: int) -> PolicyDocument:
        """Generate a policy of approximately ``target_words`` words."""
        if target_words < 300:
            raise CorpusError("target_words must be at least 300")
        profile = self.profile
        intro = BOILERPLATE_INTRO.format(
            company=profile.company, platform=profile.platform, date=profile.date
        )
        outro = BOILERPLATE_OUTRO
        overhead = len(intro.split()) + len(outro.split())
        showcase = list(profile.showcase_statements)
        overhead += sum(len(s.split()) for s in showcase)
        pairs = self._make_exception_pairs()
        overhead += sum(
            len(p.general_rule.split()) + len(p.exception.split()) for p in pairs
        )
        budget_sentences = max(
            1, (target_words - overhead) // _WORDS_PER_SENTENCE_ESTIMATE
        )

        sections = default_sections()
        parts: list[str] = [intro, ""]
        document = PolicyDocument(
            company=profile.company,
            platform=profile.platform,
            text="",
            seed=profile.seed,
            exception_pairs=pairs,
            showcase_statements=showcase,
        )

        for index, section in enumerate(sections):
            count = max(1, int(budget_sentences * section.share))
            sentences = self._sentences_for_section(section, count)
            # Weave ground-truth material into the right sections.
            if section.heading == "Information You Provide":
                sentences = showcase[: len(showcase) // 2 + 1] + sentences
            if section.heading == "How We Share Your Information":
                sentences = (
                    showcase[len(showcase) // 2 + 1 :]
                    + [p.general_rule for p in pairs]
                    + sentences
                )
                # Exceptions appear later in the same section, as in real
                # policies where carve-outs follow the general rule.
                sentences.extend(p.exception for p in pairs)
            parts.append(f"{index + 1}. {section.heading}")
            parts.append(section.intro + " " + " ".join(sentences))
            parts.append("")
            document.sections.append(section.heading)

        parts.append(outro)
        document.text = "\n".join(parts)
        return document
