"""Bundled synthetic policies: TikTak (~15k words) and MetaBook (~40k words).

These are the stand-ins for the TikTok and Meta policies the paper
evaluates.  The showcase statements mirror the statements decomposed in the
paper's Tables 2 and 3 (restyled to the synthetic company names) and are
woven into the generated documents, so both the table benches and the
full-policy extraction statistics exercise them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.corpus.generator import GeneratorProfile, PolicyDocument, PolicyGenerator

TIKTAK_TARGET_WORDS = 15_000
METABOOK_TARGET_WORDS = 40_000

#: (statement, minimum expected extracted practices) — Table 2 counterparts.
TIKTAK_SHOWCASE: tuple[tuple[str, int], ...] = (
    (
        "When you create an account, upload content, contact TikTak directly, "
        "or otherwise use the Platform, you may provide some or all of the "
        "following information.",
        5,
    ),
    (
        "Account and profile information, such as name, age, username, "
        "password, language, email, phone number, social media account "
        "information, and profile image.",
        10,
    ),
    (
        "If you choose to find other users through your phone contacts, "
        "TikTak will access and collect information such as names, phone "
        "numbers, and email addresses.",
        6,
    ),
)

#: (statement, minimum expected extracted practices) — Table 3 counterparts.
METABOOK_SHOWCASE: tuple[tuple[str, int], ...] = (
    (
        "You provide camera feature content and voice-enabled features "
        "content, you allow access to your photos and videos, and MetaBook "
        "collects information from the Camera feature.",
        5,
    ),
    (
        "You view content and ads, you interact with content and ads, you "
        "engage with ads and commercial content, and you provide interaction "
        "data.",
        6,
    ),
    (
        "When you make purchases through MetaBook checkout experiences, "
        "payments using MetaBook Pay, purchases in Marketplace, or purchases "
        "within online games, MetaBook processes financial information, "
        "accesses financial transaction data, and preserves truncated credit "
        "card information.",
        6,
    ),
)

_TIKTAK_PROFILE = GeneratorProfile(
    company="TikTak",
    platform="TikTak",
    seed=1717,
    extra_data=(
        "watch history",
        "video content",
        "livestream content",
        "comments",
        "direct messages",
        "sound preferences",
        "effect usage data",
        "hashtag interactions",
        "clipboard content",
    ),
    extra_user_actions=(
        "record a video",
        "start a livestream",
        "apply an effect",
        "follow a creator",
        "duet with another user",
    ),
    showcase_statements=tuple(s for s, _ in TIKTAK_SHOWCASE),
    exception_pairs=6,
)

_METABOOK_PROFILE = GeneratorProfile(
    company="MetaBook",
    platform="MetaBook",
    seed=4242,
    extra_data=(
        "camera feature content",
        "voice-enabled features content",
        "photos and videos",
        "interaction data",
        "engagement data",
        "financial transaction data",
        "truncated credit card information",
        "marketplace listings",
        "group memberships",
        "page follows",
        "event responses",
        "vr headset motion data",
        "avatar customizations",
        "friend connections",
    ),
    extra_user_actions=(
        "join a group",
        "follow a page",
        "respond to an event",
        "list an item on Marketplace",
        "send money using MetaBook Pay",
        "use a vr headset",
    ),
    showcase_statements=tuple(s for s, _ in METABOOK_SHOWCASE),
    exception_pairs=10,
)


@lru_cache(maxsize=None)
def tiktak_policy(target_words: int = TIKTAK_TARGET_WORDS) -> PolicyDocument:
    """The bundled TikTok-scale policy (deterministic)."""
    return PolicyGenerator(_TIKTAK_PROFILE).generate(target_words)


@lru_cache(maxsize=None)
def metabook_policy(target_words: int = METABOOK_TARGET_WORDS) -> PolicyDocument:
    """The bundled Meta-scale policy (deterministic)."""
    return PolicyGenerator(_METABOOK_PROFILE).generate(target_words)


# ---------------------------------------------------------------------------
# Cross-domain corpus: a healthcare policy (§5: "The system generalizes
# across domains without modification ... can adapt to healthcare, media,
# financial, or educational terminology through the same iterative process").
# ---------------------------------------------------------------------------

MEDITRACK_TARGET_WORDS = 10_000

MEDITRACK_SHOWCASE: tuple[tuple[str, int], ...] = (
    (
        "When you book an appointment, complete an intake form, or message "
        "your care team, you may provide some or all of the following "
        "information.",
        4,
    ),
    (
        "Health profile information, such as diagnoses, medications, "
        "allergies, immunization records, lab results, and insurance member "
        "id.",
        6,
    ),
    (
        "If you connect a wearable device, MediTrack will access and collect "
        "information such as heart rate, step counts, and sleep patterns.",
        6,
    ),
)

_MEDITRACK_PROFILE = GeneratorProfile(
    company="MediTrack",
    platform="MediTrack",
    seed=8088,
    extra_data=(
        "diagnoses",
        "medications",
        "allergies",
        "immunization records",
        "lab results",
        "insurance member id",
        "heart rate",
        "step counts",
        "sleep patterns",
        "blood pressure readings",
        "appointment history",
        "care team messages",
        "intake form responses",
        "prescription refill requests",
        "telehealth session recordings",
    ),
    extra_user_actions=(
        "book an appointment",
        "complete an intake form",
        "message your care team",
        "connect a wearable device",
        "request a prescription refill",
        "join a telehealth session",
    ),
    showcase_statements=tuple(s for s, _ in MEDITRACK_SHOWCASE),
    exception_pairs=4,
)


@lru_cache(maxsize=None)
def meditrack_policy(target_words: int = MEDITRACK_TARGET_WORDS) -> PolicyDocument:
    """The bundled healthcare-domain policy (deterministic)."""
    return PolicyGenerator(_MEDITRACK_PROFILE).generate(target_words)
