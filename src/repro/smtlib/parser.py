"""Parse SMT-LIB v2 text and execute it against the bundled solver.

The parser covers the fragment the printer emits (plus ``push``/``pop`` and
``check-sat-assuming``), which is also the fragment CVC5 would receive in
the paper's pipeline.  ``execute_script`` is the glue that makes the whole
verification path round-trip through the textual format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SMTLibParseError
from repro.fol.formula import (
    FALSE,
    TRUE,
    And,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
)
from repro.fol.terms import Application, Constant, FunctionSymbol, Sort, Term, Variable
from repro.smtlib.ast import SExpr, parse_sexprs, sexpr_to_text
from repro.smtlib.script import (
    Assert,
    CheckSat,
    CheckSatAssuming,
    Command,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    GetModel,
    GetValue,
    Pop,
    Push,
    SetLogic,
    SMTScript,
)
from repro.solver.interface import CertificationConfig, Solver, SolverBudget
from repro.solver.result import SolverResult

_BOOL = Sort("Bool")


def parse_script(text: str) -> SMTScript:
    """Parse SMT-LIB text into a typed :class:`SMTScript`."""
    script = SMTScript()
    for expr in parse_sexprs(text):
        if not isinstance(expr, list) or not expr:
            raise SMTLibParseError(f"expected a command, got {expr!r}")
        head = expr[0]
        if head == "set-logic":
            script.add(SetLogic(str(expr[1])))
        elif head == "declare-sort":
            script.add(DeclareSort(str(expr[1])))
        elif head == "declare-const":
            script.add(DeclareConst(str(expr[1]), str(expr[2])))
        elif head == "declare-fun":
            args = expr[2]
            if not isinstance(args, list):
                raise SMTLibParseError("declare-fun argument sorts must be a list")
            script.add(
                DeclareFun(str(expr[1]), tuple(str(a) for a in args), str(expr[3]))
            )
        elif head == "assert":
            script.add(Assert(expr[1]))
        elif head == "check-sat":
            script.add(CheckSat())
        elif head == "check-sat-assuming":
            lits = expr[1]
            if not isinstance(lits, list):
                raise SMTLibParseError("check-sat-assuming expects a literal list")
            script.add(CheckSatAssuming(tuple(lits)))
        elif head == "push":
            script.add(Push(int(expr[1]) if len(expr) > 1 else 1))
        elif head == "pop":
            script.add(Pop(int(expr[1]) if len(expr) > 1 else 1))
        elif head == "get-model":
            script.add(GetModel())
        elif head == "get-value":
            terms = expr[1]
            if not isinstance(terms, list):
                raise SMTLibParseError("get-value expects a term list")
            script.add(GetValue(tuple(terms)))
        elif head in {"exit", "set-option", "set-info"}:
            continue  # harmless commands we accept and ignore
        else:
            raise SMTLibParseError(f"unsupported command {head!r}")
    return script


@dataclass(slots=True)
class _Environment:
    """Declarations in scope while interpreting assertion bodies."""

    sorts: dict[str, Sort] = field(default_factory=dict)
    constants: dict[str, Constant] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    predicates: dict[str, PredicateSymbol] = field(default_factory=dict)

    def sort(self, name: str) -> Sort:
        if name == "Bool":
            return _BOOL
        if name not in self.sorts:
            self.sorts[name] = Sort(name)
        return self.sorts[name]


def _is_term_head(name: str, env: _Environment, bound: dict[str, Variable]) -> bool:
    return name in bound or name in env.constants or name in env.functions


def _to_term(expr: SExpr, env: _Environment, bound: dict[str, Variable]) -> Term:
    if isinstance(expr, str):
        if expr in bound:
            return bound[expr]
        if expr in env.constants:
            return env.constants[expr]
        raise SMTLibParseError(f"unknown term symbol {expr!r}")
    head = str(expr[0])
    if head in env.functions:
        fn = env.functions[head]
        args = tuple(_to_term(a, env, bound) for a in expr[1:])
        return Application(fn, args)
    raise SMTLibParseError(f"unknown function {head!r}")


def _to_formula(
    expr: SExpr, env: _Environment, bound: dict[str, Variable]
) -> Formula:
    if isinstance(expr, str):
        if expr == "true":
            return TRUE
        if expr == "false":
            return FALSE
        if expr in env.predicates:
            return env.predicates[expr]()
        raise SMTLibParseError(f"unknown proposition {expr!r}")
    if not expr:
        raise SMTLibParseError("empty expression")
    head = str(expr[0])
    if head == "not":
        return Not(_to_formula(expr[1], env, bound))
    if head == "and":
        return And(tuple(_to_formula(e, env, bound) for e in expr[1:]))
    if head == "or":
        return Or(tuple(_to_formula(e, env, bound) for e in expr[1:]))
    if head == "=>":
        parts = [_to_formula(e, env, bound) for e in expr[1:]]
        result = parts[-1]
        for ante in reversed(parts[:-1]):
            result = Implies(ante, result)
        return result
    if head == "=":
        left, right = expr[1], expr[2]
        left_is_term = isinstance(left, str) and _is_term_head(left, env, bound) or (
            isinstance(left, list) and str(left[0]) in env.functions
        )
        if left_is_term:
            lterm = _to_term(left, env, bound)
            rterm = _to_term(right, env, bound)
            eq = PredicateSymbol("=", (lterm.sort, rterm.sort))
            return eq(lterm, rterm)
        return Iff(_to_formula(left, env, bound), _to_formula(right, env, bound))
    if head in {"forall", "exists"}:
        binders = expr[1]
        if not isinstance(binders, list):
            raise SMTLibParseError("quantifier binders must be a list")
        new_bound = dict(bound)
        variables = []
        for binder in binders:
            name, sort_name = str(binder[0]), str(binder[1])
            var = Variable(name, env.sort(sort_name))
            new_bound[name] = var
            variables.append(var)
        body = _to_formula(expr[2], env, new_bound)
        cls = Forall if head == "forall" else Exists
        for var in reversed(variables):
            body = cls(var, body)
        return body
    if head in env.predicates:
        sym = env.predicates[head]
        args = tuple(_to_term(a, env, bound) for a in expr[1:])
        return sym(*args)
    raise SMTLibParseError(f"unknown formula head {head!r}")


def execute_script(
    script: SMTScript | str,
    *,
    budget: SolverBudget | None = None,
    certification: CertificationConfig | None = None,
    decision_seed: int = 0,
) -> list[SolverResult]:
    """Run a script against the bundled solver; one result per check command.

    ``decision_seed`` selects the solver's initial decision phases (0 is
    the canonical trajectory); portfolio workers race the same script
    under different seeds and keep the first certified decisive answer.
    """
    results, _outputs = execute_script_verbose(
        script,
        budget=budget,
        certification=certification,
        decision_seed=decision_seed,
    )
    return results


def execute_script_verbose(
    script: SMTScript | str,
    *,
    budget: SolverBudget | None = None,
    certification: CertificationConfig | None = None,
    decision_seed: int = 0,
) -> tuple[list[SolverResult], list[str]]:
    """Like :func:`execute_script`, also returning get-model/get-value output.

    Each ``get-model`` contributes one output line per named atom of the
    last SAT answer, in SMT-LIB ``define-fun`` style; ``get-value``
    contributes one ``(term value)`` line per requested term.

    ``certification`` arms the solver's trust-but-verify layer: every
    check answer is independently re-validated, and a failed certificate
    comes back as UNKNOWN with a :class:`CertificateReport` attached.
    """
    if isinstance(script, str):
        script = parse_script(script)
    env = _Environment()
    solver = Solver(
        budget=budget, certification=certification, decision_seed=decision_seed
    )
    results: list[SolverResult] = []
    outputs: list[str] = []
    for command in script.commands:
        if isinstance(command, SetLogic):
            continue
        if isinstance(command, DeclareSort):
            env.sort(command.name)
        elif isinstance(command, DeclareConst):
            const = Constant(command.name, env.sort(command.sort))
            env.constants[command.name] = const
            solver.declare_constant(const)
        elif isinstance(command, DeclareFun):
            arg_sorts = tuple(env.sort(s) for s in command.arg_sorts)
            if command.result_sort == "Bool":
                env.predicates[command.name] = PredicateSymbol(
                    command.name, arg_sorts, uninterpreted=not arg_sorts
                )
            else:
                env.functions[command.name] = FunctionSymbol(
                    command.name, arg_sorts, env.sort(command.result_sort)
                )
        elif isinstance(command, Assert):
            solver.assert_formula(_to_formula(command.body, env, {}))
        elif isinstance(command, CheckSat):
            results.append(solver.check_sat())
        elif isinstance(command, CheckSatAssuming):
            assumptions = [_to_formula(lit, env, {}) for lit in command.literals]
            results.append(solver.check_sat_assuming(assumptions))
        elif isinstance(command, Push):
            for _ in range(command.levels):
                solver.push()
        elif isinstance(command, Pop):
            for _ in range(command.levels):
                solver.pop()
        elif isinstance(command, GetModel):
            if not results or not results[-1].is_sat:
                outputs.append("(error \"no model available\")")
            else:
                for key, value in sorted(results[-1].model.items()):
                    outputs.append(
                        f"(define-fun {key} () Bool {'true' if value else 'false'})"
                    )
        elif isinstance(command, GetValue):
            if not results or not results[-1].is_sat:
                outputs.append("(error \"no model available\")")
            else:
                from repro.solver.cnf import atom_key

                model = results[-1].model
                for term in command.terms:
                    formula = _to_formula(term, env, {})
                    if isinstance(formula, Predicate):
                        key = atom_key(formula)
                        value = model.get(key, False)
                        outputs.append(
                            f"({sexpr_to_text(term)} {'true' if value else 'false'})"
                        )
                    else:
                        outputs.append(f"({sexpr_to_text(term)} unknown)")
    return results, outputs
