"""SMT-LIB v2 script object: an ordered list of typed commands."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smtlib.ast import SExpr, sexpr_to_text


class Command:
    """Base class of SMT-LIB commands."""

    def to_sexpr(self) -> SExpr:  # pragma: no cover - overridden
        raise NotImplementedError

    def __str__(self) -> str:
        return sexpr_to_text(self.to_sexpr())


@dataclass(frozen=True, slots=True)
class SetLogic(Command):
    logic: str

    def to_sexpr(self) -> SExpr:
        return ["set-logic", self.logic]


@dataclass(frozen=True, slots=True)
class DeclareSort(Command):
    name: str

    def to_sexpr(self) -> SExpr:
        return ["declare-sort", self.name, "0"]


@dataclass(frozen=True, slots=True)
class DeclareConst(Command):
    name: str
    sort: str

    def to_sexpr(self) -> SExpr:
        return ["declare-const", self.name, self.sort]


@dataclass(frozen=True, slots=True)
class DeclareFun(Command):
    name: str
    arg_sorts: tuple[str, ...]
    result_sort: str

    def to_sexpr(self) -> SExpr:
        return ["declare-fun", self.name, list(self.arg_sorts), self.result_sort]


@dataclass(frozen=True, slots=True)
class Assert(Command):
    body: SExpr

    def to_sexpr(self) -> SExpr:
        return ["assert", self.body]


@dataclass(frozen=True, slots=True)
class CheckSat(Command):
    def to_sexpr(self) -> SExpr:
        return ["check-sat"]


@dataclass(frozen=True, slots=True)
class CheckSatAssuming(Command):
    literals: tuple[SExpr, ...]

    def to_sexpr(self) -> SExpr:
        return ["check-sat-assuming", list(self.literals)]


@dataclass(frozen=True, slots=True)
class GetModel(Command):
    def to_sexpr(self) -> SExpr:
        return ["get-model"]


@dataclass(frozen=True, slots=True)
class GetValue(Command):
    terms: tuple[SExpr, ...]

    def to_sexpr(self) -> SExpr:
        return ["get-value", list(self.terms)]


@dataclass(frozen=True, slots=True)
class Push(Command):
    levels: int = 1

    def to_sexpr(self) -> SExpr:
        return ["push", str(self.levels)]


@dataclass(frozen=True, slots=True)
class Pop(Command):
    levels: int = 1

    def to_sexpr(self) -> SExpr:
        return ["pop", str(self.levels)]


@dataclass(slots=True)
class SMTScript:
    """An ordered SMT-LIB script with helpers for rendering and stats."""

    commands: list[Command] = field(default_factory=list)
    comments: dict[int, str] = field(default_factory=dict)

    def add(self, command: Command, comment: str | None = None) -> None:
        if comment:
            self.comments[len(self.commands)] = comment
        self.commands.append(command)

    def to_text(self) -> str:
        """Render the full script as SMT-LIB v2 text."""
        lines = []
        for i, command in enumerate(self.commands):
            if i in self.comments:
                lines.append(f"; {self.comments[i]}")
            lines.append(str(command))
        return "\n".join(lines) + "\n"

    @property
    def num_assertions(self) -> int:
        return sum(1 for c in self.commands if isinstance(c, Assert))

    @property
    def num_declarations(self) -> int:
        return sum(
            1
            for c in self.commands
            if isinstance(c, (DeclareConst, DeclareFun, DeclareSort))
        )

    def __str__(self) -> str:
        return self.to_text()
