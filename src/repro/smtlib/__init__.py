"""SMT-LIB v2 generation and parsing.

The paper implements "a custom compiler that converts FOL formulas to
SMT-LIB v2 format".  This subpackage provides both directions:

* :mod:`repro.smtlib.printer` — compile FOL formulas into an
  :class:`~repro.smtlib.script.SMTScript` (declarations, assertions, the
  negated implication for validity checking, ``check-sat``);
* :mod:`repro.smtlib.parser` — parse SMT-LIB v2 text back into commands and
  execute them against :class:`repro.solver.Solver`.

The verification path round-trips through the actual textual format, so the
generated artifacts are inspectable and solver-agnostic.
"""

from repro.smtlib.ast import SExpr, parse_sexprs, sexpr_to_text
from repro.smtlib.printer import compile_formula, compile_validity_script
from repro.smtlib.parser import execute_script, execute_script_verbose, parse_script
from repro.smtlib.script import (
    Assert,
    CheckSat,
    CheckSatAssuming,
    Command,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    Pop,
    Push,
    SetLogic,
    SMTScript,
)

__all__ = [
    "SExpr",
    "parse_sexprs",
    "sexpr_to_text",
    "SMTScript",
    "Command",
    "SetLogic",
    "DeclareSort",
    "DeclareConst",
    "DeclareFun",
    "Assert",
    "CheckSat",
    "CheckSatAssuming",
    "Push",
    "Pop",
    "compile_formula",
    "compile_validity_script",
    "parse_script",
    "execute_script",
    "execute_script_verbose",
]
