"""S-expression representation and (de)serialization.

SMT-LIB v2 is a fully parenthesized s-expression language; this module is
the shared substrate for both the printer and the parser.
"""

from __future__ import annotations

from repro.errors import SMTLibParseError

#: An s-expression: an atom (str) or a list of s-expressions.
SExpr = str | list


def sexpr_to_text(expr: SExpr) -> str:
    """Serialize one s-expression to SMT-LIB text."""
    if isinstance(expr, str):
        return expr
    return "(" + " ".join(sexpr_to_text(e) for e in expr) + ")"


def _tokenize(text: str) -> list[tuple[str, int]]:
    """Tokenize SMT-LIB text into (token, line) pairs, dropping comments."""
    tokens: list[tuple[str, int]] = []
    line = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
        elif ch in " \t\r":
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()":
            tokens.append((ch, line))
            i += 1
        elif ch == "|":
            j = text.find("|", i + 1)
            if j < 0:
                raise SMTLibParseError("unterminated quoted symbol", line)
            tokens.append((text[i : j + 1], line))
            line += text.count("\n", i, j)
            i = j + 1
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise SMTLibParseError("unterminated string literal", line)
            tokens.append((text[i : j + 1], line))
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in " \t\r\n();":
                j += 1
            tokens.append((text[i:j], line))
            i = j
    return tokens


def parse_sexprs(text: str) -> list[SExpr]:
    """Parse SMT-LIB text into a list of top-level s-expressions."""
    tokens = _tokenize(text)
    exprs: list[SExpr] = []
    stack: list[list] = []
    for token, line in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                raise SMTLibParseError("unbalanced ')'", line)
            done = stack.pop()
            if stack:
                stack[-1].append(done)
            else:
                exprs.append(done)
        else:
            if stack:
                stack[-1].append(token)
            else:
                exprs.append(token)
    if stack:
        raise SMTLibParseError("unbalanced '(' at end of input")
    return exprs
