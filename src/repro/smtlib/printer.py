"""Compile FOL formulas to SMT-LIB v2 scripts.

Implements the paper's custom compiler: it "extracts all predicates and
constants from the formula, generates proper declarations, handles variable
scoping in quantified expressions, and asserts the negation of the
implication for checking logical validity".
"""

from __future__ import annotations

from repro.errors import SMTLibError
from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
    TrueFormula,
)
from repro.fol.terms import Application, Constant, FunctionSymbol, Sort, Term, Variable
from repro.fol.visitor import collect_constants, collect_predicates, subformulas
from repro.smtlib.ast import SExpr
from repro.smtlib.script import (
    Assert,
    CheckSat,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    SetLogic,
    SMTScript,
)


def _term_to_sexpr(term: Term) -> SExpr:
    if isinstance(term, (Variable, Constant)):
        return term.name
    if isinstance(term, Application):
        return [term.symbol.name, *(_term_to_sexpr(a) for a in term.args)]
    raise SMTLibError(f"cannot compile term {term!r}")


def compile_formula(formula: Formula) -> SExpr:
    """Translate one formula into an SMT-LIB body expression."""
    if isinstance(formula, TrueFormula):
        return "true"
    if isinstance(formula, FalseFormula):
        return "false"
    if isinstance(formula, Predicate):
        if not formula.args:
            return formula.symbol.name
        return [formula.symbol.name, *(_term_to_sexpr(a) for a in formula.args)]
    if isinstance(formula, Not):
        return ["not", compile_formula(formula.operand)]
    if isinstance(formula, And):
        if not formula.operands:
            return "true"
        return ["and", *(compile_formula(op) for op in formula.operands)]
    if isinstance(formula, Or):
        if not formula.operands:
            return "false"
        return ["or", *(compile_formula(op) for op in formula.operands)]
    if isinstance(formula, Implies):
        return [
            "=>",
            compile_formula(formula.antecedent),
            compile_formula(formula.consequent),
        ]
    if isinstance(formula, Iff):
        return ["=", compile_formula(formula.left), compile_formula(formula.right)]
    if isinstance(formula, (Forall, Exists)):
        keyword = "forall" if isinstance(formula, Forall) else "exists"
        # Merge consecutive same-kind quantifiers into one binder block.
        bindings = [[formula.variable.name, formula.variable.sort.name]]
        body = formula.body
        while isinstance(body, type(formula)):
            bindings.append([body.variable.name, body.variable.sort.name])
            body = body.body
        return [keyword, bindings, compile_formula(body)]
    raise SMTLibError(f"cannot compile formula {formula!r}")


def _collect_functions(formula: Formula) -> set[FunctionSymbol]:
    found: set[FunctionSymbol] = set()

    def scan_term(term: Term) -> None:
        if isinstance(term, Application):
            found.add(term.symbol)
            for arg in term.args:
                scan_term(arg)

    for sub in subformulas(formula):
        if isinstance(sub, Predicate):
            for arg in sub.args:
                scan_term(arg)
    return found


def _declarations(
    formulas: list[Formula], script: SMTScript
) -> None:
    """Emit sort, constant, predicate, and function declarations."""
    sorts: dict[str, Sort] = {}
    constants: dict[str, Constant] = {}
    predicates: dict[str, PredicateSymbol] = {}
    functions: dict[str, FunctionSymbol] = {}
    for formula in formulas:
        for const in collect_constants(formula):
            constants[const.name] = const
            sorts[const.sort.name] = const.sort
        for sym in collect_predicates(formula):
            predicates[sym.name] = sym
            for sort in sym.arg_sorts:
                sorts[sort.name] = sort
        for fn in _collect_functions(formula):
            functions[fn.name] = fn
            sorts[fn.result_sort.name] = fn.result_sort
            for sort in fn.arg_sorts:
                sorts[sort.name] = sort
        for sub in subformulas(formula):
            if isinstance(sub, (Forall, Exists)):
                sorts[sub.variable.sort.name] = sub.variable.sort

    for name in sorted(sorts):
        if name != "Bool":
            script.add(DeclareSort(name))
    for name in sorted(constants):
        const = constants[name]
        script.add(DeclareConst(const.name, const.sort.name))
    for name in sorted(functions):
        fn = functions[name]
        script.add(
            DeclareFun(fn.name, tuple(s.name for s in fn.arg_sorts), fn.result_sort.name)
        )
    for name in sorted(predicates):
        sym = predicates[name]
        if sym.name == "=":
            continue  # builtin
        comment = None
        if sym.uninterpreted:
            comment = f"uninterpreted (vague term): {sym.source_text or sym.name}"
        script.add(
            DeclareFun(sym.name, tuple(s.name for s in sym.arg_sorts), "Bool"),
            comment=comment,
        )


def compile_validity_script(
    policy_formulas: list[Formula], query: Formula, *, logic: str = "UF"
) -> SMTScript:
    """Script checking whether the policy entails the query.

    Asserts every policy formula plus the *negation* of the query; an
    ``unsat`` answer means the query follows from the policy (VALID in the
    paper's terminology), ``sat`` means it does not necessarily follow.
    """
    script = SMTScript()
    script.add(SetLogic(logic))
    _declarations(policy_formulas + [query], script)
    for i, formula in enumerate(policy_formulas):
        script.add(Assert(compile_formula(formula)), comment=f"policy fact {i + 1}")
    script.add(
        Assert(["not", compile_formula(query)]),
        comment="negated query: unsat <=> query follows from policy",
    )
    script.add(CheckSat())
    return script
