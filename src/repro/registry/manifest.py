"""The registry's manifest index: company -> shard -> snapshot store.

One JSON file (``REGISTRY.json``) at the registry root maps every
registered company to the shard directory holding its snapshot store,
plus the mint parameters that produced it.  The manifest is rewritten
through :func:`~repro.store.atomic.atomic_write_json` — temp file, fsync,
rename, directory fsync — so a crash at any boundary leaves the old index
or the new one, never a torn hybrid.  The write threads the same
:data:`~repro.store.atomic.StepHook` seam as the snapshot store
(``write:REGISTRY.json``, ``rename:REGISTRY.json``,
``syncdir:REGISTRY.json``), so the crash matrix in
``tests/test_registry_crash.py`` is enumerated, not hand-coded.

Ordering contract: a company's snapshot store is committed *before* its
manifest entry is written.  A crash between the two leaves an orphan
store directory (harmless; re-minting the company registers it), never a
manifest entry pointing at a store that does not exist.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import RegistryError
from repro.store.atomic import StepHook, atomic_write_json

#: Manifest file name at the registry root.
MANIFEST_NAME = "REGISTRY.json"

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class RegistryEntry:
    """One registered company: where its snapshots live, how it was made."""

    company: str
    shard: str
    store_dir: str  # POSIX path relative to the registry root
    revision: int
    sector: str | None = None
    seed: int | None = None
    target_words: int | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "company": self.company,
            "shard": self.shard,
            "store_dir": self.store_dir,
            "revision": self.revision,
            "sector": self.sector,
            "seed": self.seed,
            "target_words": self.target_words,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "RegistryEntry":
        try:
            return cls(
                company=str(raw["company"]),
                shard=str(raw["shard"]),
                store_dir=str(raw["store_dir"]),
                revision=int(raw["revision"]),
                sector=None if raw.get("sector") is None else str(raw["sector"]),
                seed=None if raw.get("seed") is None else int(raw["seed"]),
                target_words=(
                    None
                    if raw.get("target_words") is None
                    else int(raw["target_words"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed manifest entry: {exc}") from exc


@dataclass(slots=True)
class Manifest:
    """The parsed index: every entry, keyed by company."""

    entries: dict[str, RegistryEntry]
    num_shards: int

    def companies(self) -> list[str]:
        return sorted(self.entries)


def read_manifest(root: str | Path, *, default_shards: int = 8) -> Manifest:
    """Read and validate ``REGISTRY.json`` under ``root``.

    A missing manifest is an empty registry (first mint creates it); a
    present-but-unparsable or structurally invalid one is an error — the
    atomic write protocol guarantees the file is never torn, so damage
    means tampering or an incompatible format, and guessing would
    silently drop companies.
    """
    path = Path(root) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text("utf-8"))
    except FileNotFoundError:
        return Manifest(entries={}, num_shards=default_shards)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise RegistryError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("format_version") != FORMAT_VERSION:
        raise RegistryError(
            f"manifest {path} has unsupported format "
            f"{raw.get('format_version') if isinstance(raw, dict) else raw!r}"
        )
    companies = raw.get("companies")
    if not isinstance(companies, dict):
        raise RegistryError(f"manifest {path} has no companies table")
    entries: dict[str, RegistryEntry] = {}
    for name, entry_raw in companies.items():
        if not isinstance(entry_raw, dict):
            raise RegistryError(f"manifest entry for {name!r} is not an object")
        entry = RegistryEntry.from_dict(entry_raw)
        if entry.company != name:
            raise RegistryError(
                f"manifest entry key {name!r} disagrees with its "
                f"company field {entry.company!r}"
            )
        entries[name] = entry
    try:
        num_shards = int(raw.get("num_shards", default_shards))
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"manifest {path} num_shards invalid: {exc}") from exc
    if num_shards < 1:
        raise RegistryError(f"manifest {path} num_shards must be >= 1")
    return Manifest(entries=entries, num_shards=num_shards)


def write_manifest(
    root: str | Path, manifest: Manifest, *, step: StepHook | None = None
) -> None:
    """Atomically replace ``REGISTRY.json`` under ``root``.

    Companies are emitted in sorted order so the same registry state
    always produces the same bytes.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "num_shards": manifest.num_shards,
        "companies": {
            name: manifest.entries[name].as_dict()
            for name in sorted(manifest.entries)
        },
    }
    atomic_write_json(
        Path(root) / MANIFEST_NAME, payload, step=step, label=MANIFEST_NAME
    )
