"""Fleet fan-out results: per-company verdicts for one question.

``registry.query_fleet`` asks the *same* question of many companies by
running one supervised :class:`~repro.jobs.runner.JobRunner` whose
question suite has one slot per company (``[<company>] <question>``, so
the checkpoint journal and its digest bind to the exact fan-out).  The
:class:`FleetReport` wraps the resulting
:class:`~repro.jobs.runner.JobResult` with the company axis restored.

Checkpoint identity: the journal header's ``company`` field normally
names the model a job ran against; a fleet job spans many models, so it
records a synthetic :class:`FleetIdentity` — ``fleet:<digest>`` over the
sorted ``(company, revision)`` pairs.  Resuming against a registry whose
membership or revisions changed therefore fails the runner's identity
guard instead of silently mixing verdicts across fleet compositions.

``FleetReport.as_dict`` is the byte-identity surface: it carries only
deterministic fields (per-company traces, verdict counts, pending
companies) and deliberately omits timing, worker counts, restored
counts, and merged metrics — so an 8-worker run, a 1-worker run, and a
killed-then-resumed run of the same fleet serialize identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.jobs.runner import JobOutcome, JobResult


@dataclass(frozen=True, slots=True)
class FleetIdentity:
    """Synthetic model identity binding a checkpoint to a fleet roster."""

    company: str
    revision: int = 0


def fleet_identity(pairs: list[tuple[str, int]]) -> FleetIdentity:
    """Identity over sorted ``(company, revision)`` pairs."""
    digest = hashlib.sha256(
        "\n".join(f"{c}@{r}" for c, r in sorted(pairs)).encode("utf-8")
    ).hexdigest()
    return FleetIdentity(company=f"fleet:{digest[:16]}")


def fleet_question(company: str, question: str) -> str:
    """The per-company slot text: company-tagged so the suite digest
    (and therefore resume validation) covers the roster, not just the
    question."""
    return f"[{company}] {question}"


@dataclass(slots=True)
class FleetReport:
    """Per-company verdicts for one question across the fleet."""

    question: str
    companies: list[str]
    job: JobResult

    def __len__(self) -> int:
        return len(self.companies)

    @property
    def outcomes(self) -> list[JobOutcome | None]:
        return self.job.outcomes

    @property
    def aborted(self) -> bool:
        return self.job.aborted

    def per_company(self) -> list[tuple[str, JobOutcome | None]]:
        """(company, outcome) pairs; ``None`` outcome = still pending."""
        return list(zip(self.companies, self.job.outcomes))

    @property
    def pending_companies(self) -> list[str]:
        return [self.companies[i] for i in self.job.pending]

    @property
    def errors(self) -> list[tuple[str, JobOutcome]]:
        """Companies whose query failed (quarantined shard, query error)."""
        return [
            (company, outcome)
            for company, outcome in self.per_company()
            if outcome is not None and outcome.failed
        ]

    def verdict_counts(self) -> dict[str, int]:
        return self.job.verdict_counts()

    def verdict_of(self, company: str) -> str | None:
        for name, outcome in self.per_company():
            if name == company:
                return None if outcome is None else outcome.verdict.value
        return None

    def summary(self) -> str:
        counts = ", ".join(
            f"{n} {v}" for v, n in sorted(self.verdict_counts().items())
        )
        line = (
            f"fleet {self.question!r}: {len(self.job.completed)}/"
            f"{len(self.companies)} companies in {self.job.seconds:.2f}s "
            f"({self.job.max_workers} workers): {counts or 'no verdicts'}"
        )
        if self.errors:
            line += f"; {len(self.errors)} companies errored"
        if self.job.shed:
            line += f"; {self.job.shed} shed"
        if self.job.stalls:
            line += f"; {len(self.job.stalls)} stalled workers replaced"
        if self.aborted:
            line += (
                f"; ABORTED with {len(self.pending_companies)} companies pending"
            )
        return line

    def as_dict(self) -> dict[str, object]:
        """Deterministic serialization — see the module docstring for
        what is deliberately omitted and why."""
        return {
            "question": self.question,
            "companies": [
                {
                    "company": company,
                    "verdict": None if outcome is None else outcome.verdict.value,
                    "trace": None if outcome is None else outcome.as_dict(),
                }
                for company, outcome in self.per_company()
            ],
            "verdicts": self.verdict_counts(),
            "pending": self.pending_companies,
            "aborted": self.aborted,
            "shed": self.job.shed,
            "stalls": [s.as_dict() for s in self.job.stalls],
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON of :meth:`as_dict`."""
        payload = json.dumps(self.as_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
