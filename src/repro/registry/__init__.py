"""Sharded multi-policy registry with cross-policy fan-out queries.

The paper's disagreement between lawyers and computer scientists plays
out at *ecosystem* scale — PoliGraph mines thousands of policies, not
one — and this package lifts the reproduction from "one
:class:`~repro.core.pipeline.PolicyModel` at a time" to a fleet:

* :mod:`repro.registry.manifest` — the atomic ``REGISTRY.json`` index
  mapping company -> shard -> snapshot store;
* :mod:`repro.registry.lru` — :class:`WarmCache`, a bounded LRU of warm
  models with single-flight shard loads;
* :mod:`repro.registry.sectors` — sector flavours for minted corpora;
* :mod:`repro.registry.registry` — :class:`PolicyRegistry`: ``mint``
  populates hundreds of generated policies deterministically per seed,
  ``get_model`` serves them warm, ``query_fleet`` fans one question
  across companies through a supervised, checkpoint-resumable
  :class:`~repro.jobs.runner.JobRunner`;
* :mod:`repro.registry.fleet` — :class:`FleetReport`, the per-company
  verdict aggregate with a deterministic byte-identity serialization.

Typical use::

    from repro.registry import MintSpec, PolicyRegistry

    registry = PolicyRegistry("fleet.reg", max_warm=32)
    registry.mint(MintSpec(count=100, seed=7))
    report = registry.query_fleet(
        "The company shares the email address with advertisers."
    )
    print(report.summary())
"""

from repro.registry.fleet import FleetIdentity, FleetReport, fleet_question
from repro.registry.lru import WarmCache
from repro.registry.manifest import (
    MANIFEST_NAME,
    Manifest,
    RegistryEntry,
    read_manifest,
    write_manifest,
)
from repro.registry.registry import MintReport, MintSpec, PolicyRegistry
from repro.registry.sectors import DEFAULT_SECTORS, SECTOR_PROFILES, SectorProfile

__all__ = [
    "PolicyRegistry",
    "MintSpec",
    "MintReport",
    "FleetReport",
    "FleetIdentity",
    "fleet_question",
    "WarmCache",
    "Manifest",
    "RegistryEntry",
    "MANIFEST_NAME",
    "read_manifest",
    "write_manifest",
    "SectorProfile",
    "SECTOR_PROFILES",
    "DEFAULT_SECTORS",
]
