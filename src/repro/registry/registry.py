"""The sharded multi-policy registry and its fleet query path.

:class:`PolicyRegistry` layers three things over
:class:`~repro.store.snapshot.SnapshotStore`:

* an on-disk **layout** — one snapshot store per company under
  ``<root>/shards/<shard-NN>/<company>/``, indexed by the atomic
  manifest (:mod:`repro.registry.manifest`);
* a **warm cache** — a bounded LRU of loaded
  :class:`~repro.core.pipeline.PolicyModel`\\ s with single-flight shard
  loads (:mod:`repro.registry.lru`), counted on
  ``pipeline.metrics.registry_*``;
* a **mint** path — deterministic population of hundreds of generated
  policies from :class:`MintSpec` knobs (count, seed, sector rotation,
  sizes, exception-pair density), each model carrying its generator
  ground truth on ``model.provenance``.

``query_fleet`` fans one question across companies through a supervised
:class:`~repro.jobs.runner.JobRunner` — admission control, watchdog, and
the resumable checkpoint journal all apply unchanged — and returns a
:class:`~repro.registry.fleet.FleetReport`.  A company whose shard fails
to load (quarantined/corrupt snapshots) surfaces as that company's
:class:`~repro.core.pipeline.ErrorOutcome`; it never aborts the fleet.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import PolicyModel, PolicyPipeline
from repro.corpus.generator import GeneratorProfile, PolicyGenerator
from repro.errors import RegistryError, SnapshotError
from repro.jobs.config import JobConfig
from repro.jobs.runner import JobRunner
from repro.registry.fleet import (
    FleetReport,
    fleet_identity,
    fleet_question,
)
from repro.registry.lru import WarmCache
from repro.registry.manifest import (
    Manifest,
    RegistryEntry,
    read_manifest,
    write_manifest,
)
from repro.registry.sectors import DEFAULT_SECTORS, SECTOR_PROFILES
from repro.store.atomic import StepHook
from repro.store.snapshot import SnapshotStore

#: Derives per-company generator seeds from (spec seed, company index);
#: a large odd multiplier keeps neighbouring spec seeds from colliding.
_SEED_STRIDE = 1_000_003


def _company_digest(company: str) -> str:
    return hashlib.sha256(company.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class MintSpec:
    """Deterministic recipe for a generated fleet.

    The same spec always mints the same companies with the same policy
    text: company ``i`` takes its sector and size from the rotation
    (``sectors[i % len]``, ``target_words[i % len]``) and its generator
    seed from ``seed`` and ``i`` alone.
    """

    count: int
    seed: int = 0
    sectors: tuple[str, ...] = DEFAULT_SECTORS
    target_words: tuple[int, ...] = (340, 420, 520)
    exception_pairs: int = 3
    incoherent_exception_fraction: float = 0.34
    date: str = "August 2026"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise RegistryError("MintSpec.count must be >= 1")
        if not self.sectors:
            raise RegistryError("MintSpec.sectors must not be empty")
        unknown = [s for s in self.sectors if s not in SECTOR_PROFILES]
        if unknown:
            raise RegistryError(
                f"unknown sectors {unknown}; known: {sorted(SECTOR_PROFILES)}"
            )
        if not self.target_words or any(w < 300 for w in self.target_words):
            raise RegistryError("MintSpec.target_words must all be >= 300")
        if self.exception_pairs < 0:
            raise RegistryError("MintSpec.exception_pairs must be >= 0")

    def sector_of(self, index: int) -> str:
        return self.sectors[index % len(self.sectors)]

    def words_of(self, index: int) -> int:
        return self.target_words[index % len(self.target_words)]

    def company_of(self, index: int) -> str:
        return f"{SECTOR_PROFILES[self.sector_of(index)].name_stem}{index:03d}"

    def profile_of(self, index: int) -> GeneratorProfile:
        sector = SECTOR_PROFILES[self.sector_of(index)]
        company = self.company_of(index)
        return GeneratorProfile(
            company=company,
            platform=company,
            seed=self.seed * _SEED_STRIDE + index,
            extra_data=sector.extra_data,
            extra_user_actions=sector.extra_user_actions,
            exception_pairs=self.exception_pairs,
            incoherent_exception_fraction=self.incoherent_exception_fraction,
            date=self.date,
        )


@dataclass(slots=True)
class MintReport:
    """What one :meth:`PolicyRegistry.mint` call did."""

    minted: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # already registered
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"minted {len(self.minted)} policies "
            f"({len(self.skipped)} already registered) "
            f"in {self.seconds:.2f}s"
        )


class PolicyRegistry:
    """Sharded, disk-backed registry of many companies' policy models.

    Args:
        root: registry directory (manifest + shard tree; created on
            first mint).
        pipeline: shared :class:`PolicyPipeline` for minting, loading,
            and querying; a fresh one is built when omitted.
        max_warm: LRU bound on resident models.
        num_shards: shard fan-out for *new* registries; an existing
            manifest's value wins so reopening never re-shards.
        step: crash-injection hook threaded into every durable write
            (snapshot commits and manifest rewrites); ``None`` in
            production.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        pipeline: PolicyPipeline | None = None,
        max_warm: int = 8,
        num_shards: int = 8,
        step: StepHook | None = None,
    ) -> None:
        if num_shards < 1:
            raise RegistryError("num_shards must be >= 1")
        self.root = Path(root)
        self.pipeline = pipeline if pipeline is not None else PolicyPipeline()
        self._step = step
        self._manifest: Manifest = read_manifest(
            self.root, default_shards=num_shards
        )
        self.num_shards = self._manifest.num_shards
        self._manifest_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._cache = WarmCache(max_warm, on_evict=self._count_eviction)

    # ------------------------------------------------------------------
    # Index introspection
    # ------------------------------------------------------------------

    def companies(self) -> list[str]:
        with self._manifest_lock:
            return self._manifest.companies()

    def __len__(self) -> int:
        with self._manifest_lock:
            return len(self._manifest.entries)

    def __contains__(self, company: str) -> bool:
        with self._manifest_lock:
            return company in self._manifest.entries

    def entry(self, company: str) -> RegistryEntry:
        with self._manifest_lock:
            entry = self._manifest.entries.get(company)
        if entry is None:
            raise RegistryError(f"company {company!r} is not registered")
        return entry

    def shard_of(self, company: str) -> str:
        """Stable shard assignment: sha256(company) mod ``num_shards``."""
        bucket = int(_company_digest(company), 16) % self.num_shards
        return f"shard-{bucket:02d}"

    def store_for(self, company: str) -> SnapshotStore:
        """The snapshot store behind a registered company."""
        entry = self.entry(company)
        return SnapshotStore(self.root / entry.store_dir, step=self._step)

    @property
    def cache(self) -> WarmCache:
        return self._cache

    # ------------------------------------------------------------------
    # Warm loads
    # ------------------------------------------------------------------

    def _count_eviction(self, company: str) -> None:
        with self._metrics_lock:
            self.pipeline.metrics.registry_evictions += 1

    def get_model(self, company: str) -> PolicyModel:
        """The company's model — warm from the LRU or loaded from its shard.

        Concurrent callers of a cold company block on one single-flight
        load; loading one shard never blocks other shards.  Raises
        :class:`RegistryError` for unregistered companies and
        :class:`~repro.errors.SnapshotError` when no valid snapshot
        survives in the shard.
        """
        entry = self.entry(company)
        directory = self.root / entry.store_dir
        model, hit = self._cache.get(
            company, lambda: self.pipeline.load_model(directory)
        )
        with self._metrics_lock:
            if hit:
                self.pipeline.metrics.registry_hits += 1
            else:
                self.pipeline.metrics.registry_misses += 1
        return model

    def invalidate(self, company: str) -> bool:
        """Drop a company's warm model (call after updating its store)."""
        return self._cache.invalidate(company)

    def warm(self, companies=None) -> int:
        """Pre-load models into the LRU; returns how many loads ran."""
        loads = 0
        for company in companies if companies is not None else self.companies():
            before = self._cache.misses
            self.get_model(company)
            loads += self._cache.misses - before
        return loads

    # ------------------------------------------------------------------
    # Mint
    # ------------------------------------------------------------------

    def mint(self, spec: MintSpec) -> MintReport:
        """Generate, process, commit, and register ``spec.count`` policies.

        Companies already in the manifest are skipped, which makes mint
        both idempotent and crash-resumable: a company's snapshot store
        is committed *before* its manifest entry (see
        :mod:`repro.registry.manifest`), so a kill between the two
        leaves an orphan store that the re-mint simply recommits over.
        """
        report = MintReport()
        started = time.perf_counter()
        for index in range(spec.count):
            company = spec.company_of(index)
            if company in self:
                report.skipped.append(company)
                continue
            profile = spec.profile_of(index)
            words = spec.words_of(index)
            document = PolicyGenerator(profile).generate(words)
            model = self.pipeline.process(document.text, company=company)
            provenance = document.ground_truth()
            provenance["sector"] = spec.sector_of(index)
            provenance["target_words"] = words
            model.provenance = provenance
            shard = self.shard_of(company)
            store_dir = (
                f"shards/{shard}/{company}-{_company_digest(company)[:8]}"
            )
            store = SnapshotStore(self.root / store_dir, step=self._step)
            store.commit(model)
            entry = RegistryEntry(
                company=company,
                shard=shard,
                store_dir=store_dir,
                revision=model.revision,
                sector=spec.sector_of(index),
                seed=profile.seed,
                target_words=words,
            )
            with self._manifest_lock:
                self._manifest.entries[company] = entry
                write_manifest(self.root, self._manifest, step=self._step)
            with self._metrics_lock:
                self.pipeline.metrics.policies_minted += 1
            report.minted.append(company)
        report.seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # Fleet queries
    # ------------------------------------------------------------------

    def _roster(self, companies) -> list[str]:
        if companies is None:
            roster = self.companies()
        else:
            roster = [str(c) for c in companies]
            missing = [c for c in roster if c not in self]
            if missing:
                raise RegistryError(
                    f"companies not registered: {missing}; "
                    f"registered: {len(self)}"
                )
        if not roster:
            raise RegistryError("fleet query needs at least one company")
        return roster

    def _fleet_runner(
        self, question: str, roster: list[str], config, journal_step
    ) -> JobRunner:
        identity = fleet_identity(
            [(c, self.entry(c).revision) for c in roster]
        )

        def query_fn(index, tagged_question, certify, heartbeat):
            company = roster[index]
            try:
                model = self.get_model(company)
            except SnapshotError as exc:
                # Per-company isolation: the runner converts this into
                # the company's ErrorOutcome; tag the stage so reports
                # say the *registry* (not the query) failed.
                exc.pipeline_stage = "registry"
                raise
            return self.pipeline.query(model, question, certify=certify)

        return JobRunner(
            self.pipeline,
            identity,
            config if config is not None else JobConfig(handle_signals=False),
            query_fn=query_fn,
            journal_step=journal_step,
        )

    def _count_fanout(self, roster: list[str]) -> None:
        with self._metrics_lock:
            self.pipeline.metrics.fleet_queries += 1
            self.pipeline.metrics.fleet_companies += len(roster)

    def query_fleet(
        self,
        question: str,
        companies=None,
        *,
        config: JobConfig | None = None,
        journal_step: StepHook | None = None,
    ) -> FleetReport:
        """Fan ``question`` across the fleet; one supervised job run.

        ``companies`` defaults to every registered company (sorted).
        ``config`` is a :class:`~repro.jobs.config.JobConfig`; give it a
        ``checkpoint_dir`` to make the fleet resumable via
        :meth:`resume_fleet` after a crash or drain.
        """
        roster = self._roster(companies)
        runner = self._fleet_runner(question, roster, config, journal_step)
        suite = [fleet_question(c, question) for c in roster]
        self._count_fanout(roster)
        result = runner.run(suite)
        return FleetReport(question=question, companies=roster, job=result)

    def resume_fleet(
        self,
        question: str,
        companies=None,
        *,
        config: JobConfig,
        journal_step: StepHook | None = None,
    ) -> FleetReport:
        """Resume a checkpointed fleet: restore committed verdicts,
        query only the companies still pending.

        The journal header must match this exact fleet — same question,
        same roster, same revisions — or the runner's identity/digest
        guards refuse, rather than mixing verdicts across compositions.
        """
        roster = self._roster(companies)
        runner = self._fleet_runner(question, roster, config, journal_step)
        suite = [fleet_question(c, question) for c in roster]
        self._count_fanout(roster)
        result = runner.resume(suite)
        return FleetReport(question=question, companies=roster, job=result)
