"""Sector flavours for minted registry corpora.

The mint path stamps each generated company with one of these profiles so
a fleet is not a hundred clones of the same policy: every sector adds its
own data types and user actions to the generator pools (mirroring the
bundled TikTak/MetaBook/MediTrack profiles in
:mod:`repro.corpus.policies`) and contributes a CamelCase name stem the
registry numbers deterministically (``StreamNest000``,
``CareVault001``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SectorProfile:
    """Generator flavour for one industry sector."""

    key: str
    name_stem: str
    extra_data: tuple[str, ...]
    extra_user_actions: tuple[str, ...]


SECTOR_PROFILES: dict[str, SectorProfile] = {
    profile.key: profile
    for profile in (
        SectorProfile(
            key="social",
            name_stem="StreamNest",
            extra_data=(
                "watch history",
                "video content",
                "comments",
                "direct messages",
                "follower lists",
                "reaction history",
            ),
            extra_user_actions=(
                "record a video",
                "follow a creator",
                "react to a post",
            ),
        ),
        SectorProfile(
            key="health",
            name_stem="CareVault",
            extra_data=(
                "medical history",
                "prescription records",
                "appointment notes",
                "insurance member identifiers",
                "lab results",
                "symptom logs",
            ),
            extra_user_actions=(
                "book an appointment",
                "message a clinician",
                "refill a prescription",
            ),
        ),
        SectorProfile(
            key="retail",
            name_stem="CartWhale",
            extra_data=(
                "purchase history",
                "shipping address",
                "wishlist contents",
                "loyalty tier",
                "return history",
                "product reviews",
            ),
            extra_user_actions=(
                "place an order",
                "save an item to a wishlist",
                "write a review",
            ),
        ),
        SectorProfile(
            key="fintech",
            name_stem="LedgerLark",
            extra_data=(
                "account balances",
                "transaction history",
                "linked bank account details",
                "credit score range",
                "spending categories",
                "payee lists",
            ),
            extra_user_actions=(
                "link a bank account",
                "send a payment",
                "set a budget",
            ),
        ),
        SectorProfile(
            key="travel",
            name_stem="RoamHeron",
            extra_data=(
                "itinerary details",
                "passport numbers",
                "frequent flyer numbers",
                "seat preferences",
                "trip companions",
                "hotel stay history",
            ),
            extra_user_actions=(
                "book a trip",
                "check in online",
                "store a travel document",
            ),
        ),
    )
}

#: Default mint rotation: every sector, in a stable order.
DEFAULT_SECTORS: tuple[str, ...] = tuple(SECTOR_PROFILES)
