"""Bounded LRU of warm policy models with single-flight shard loads.

Loading a shard from disk costs tens of milliseconds and megabytes of
resident model; a fleet query over hundreds of companies cannot keep them
all warm.  :class:`WarmCache` bounds residency with a strict LRU and
guarantees that concurrent readers of a *cold* key trigger exactly one
disk load (single-flight): the first caller loads, everyone else waiting
on that key blocks on its load gate and is then served the freshly
cached value as a hit.

Lock ordering (the anti-deadlock contract, see DESIGN §10): a thread
acquires the per-key **load gate first**, then the global **table lock**
— never the reverse — and the loader itself runs with only the gate
held, so a slow load of one shard never blocks hits (or loads) on any
other shard.  Gates are created under the table lock and live for the
cache's lifetime (one small ``threading.Lock`` per key ever seen);
recycling them on eviction would open a window where two threads hold
*different* gates for the same key and load it twice concurrently.

Eviction order is a pure function of the access sequence: every ``get``
moves its key to the MRU end under the table lock, and inserting beyond
``capacity`` pops LRU keys.  Counters (``hits`` / ``misses`` /
``evictions``) are maintained under the table lock; the registry mirrors
them into :class:`~repro.core.metrics.PipelineMetrics`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, TypeVar

T = TypeVar("T")


class WarmCache:
    """Thread-safe bounded LRU with single-flight loads per key."""

    def __init__(
        self,
        capacity: int,
        *,
        on_evict: Callable[[str], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("WarmCache capacity must be >= 1")
        self.capacity = capacity
        self._on_evict = on_evict
        self._table_lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._gates: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._table_lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._table_lock:
            return key in self._entries

    def warm_keys(self) -> list[str]:
        """Resident keys in eviction order (LRU first, MRU last)."""
        with self._table_lock:
            return list(self._entries)

    def get(self, key: str, loader: Callable[[], T]) -> tuple[T, bool]:
        """Return ``(value, was_hit)``; load at most once per cold key.

        A caller that blocked on another thread's in-flight load of the
        same key counts as a hit — it never touched disk.
        """
        with self._table_lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key], True  # type: ignore[return-value]
            gate = self._gates.get(key)
            if gate is None:
                gate = self._gates[key] = threading.Lock()
        with gate:
            # Re-check: whoever held the gate before us may have loaded it.
            with self._table_lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True  # type: ignore[return-value]
                self.misses += 1
            value = loader()  # only the gate held: other shards unaffected
            evicted: list[str] = []
            with self._table_lock:
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    old_key, _ = self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted.append(old_key)
            if self._on_evict is not None:
                for old_key in evicted:
                    self._on_evict(old_key)
            return value, False

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` if resident (after a re-mint/update); no eviction
        counter — the caller asked, the bound didn't."""
        with self._table_lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._table_lock:
            self._entries.clear()
