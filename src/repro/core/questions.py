"""Interrogative-to-declarative query normalization.

Users phrase queries as questions ("Does TikTok share my email with
advertisers?"); the extraction prompt expects declarative data-practice
statements.  This module rewrites the common question shapes:

* ``Does/Do/Did X VERB ...?``      -> ``X VERB-s ...``
* ``Can/May/Will/Would X VERB ...?`` -> ``X VERB-s ...``
* ``Is X VERB-ing ...?``           -> ``X VERB-s ...``
* ``Who receives my email?``       -> ``Someone receives my email.``

First/second-person possessives are normalized to "the" so the extracted
data type matches policy vocabulary ("my email" -> "the email").
"""

from __future__ import annotations

import re

from repro.nlp.lexicon import ACTION_VERBS
from repro.nlp.morphology import lemmatize_verb

_AUX_QUESTION_RE = re.compile(
    r"^(?:does|do|did|can|could|may|might|will|would|shall|should)\s+(.*)$",
    re.IGNORECASE,
)
_IS_GERUND_RE = re.compile(r"^(?:is|are|was|were)\s+(\S+)\s+(\w+ing)\b(.*)$", re.IGNORECASE)
_WHO_RE = re.compile(r"^who\s+(.*)$", re.IGNORECASE)
_POSSESSIVE_RE = re.compile(r"\b(?:my|our)\b", re.IGNORECASE)


def _third_person(verb: str) -> str:
    """Inflect a base-form verb for a third-person-singular subject."""
    base = lemmatize_verb(verb)
    if base.endswith(("s", "sh", "ch", "x", "z")):
        return base + "es"
    if base.endswith("y") and len(base) > 1 and base[-2] not in "aeiou":
        return base[:-1] + "ies"
    return base + "s"


def _inflect_first_verb(clause: str) -> str:
    """Find the first action verb in ``clause`` and inflect it."""
    words = clause.split()
    for i, word in enumerate(words):
        if lemmatize_verb(word.lower()) in ACTION_VERBS:
            words[i] = _third_person(word)
            return " ".join(words)
    return clause


def is_question(text: str) -> bool:
    """Cheap check: does ``text`` look like a question?"""
    stripped = text.strip()
    if stripped.endswith("?"):
        return True
    return bool(
        _AUX_QUESTION_RE.match(stripped)
        or _IS_GERUND_RE.match(stripped)
        or _WHO_RE.match(stripped)
    )


def normalize_question(text: str) -> str:
    """Rewrite a question as the declarative statement it asks about.

    Declarative inputs pass through unchanged apart from possessive
    normalization.
    """
    stripped = text.strip().rstrip("?").rstrip(".").strip()

    match = _AUX_QUESTION_RE.match(stripped)
    if match:
        stripped = _inflect_first_verb(match.group(1))
    else:
        gerund = _IS_GERUND_RE.match(stripped)
        if gerund:
            subject, verb, rest = gerund.groups()
            # _third_person lemmatizes, so the gerund maps straight to the
            # inflected base ("sharing" -> "shares").
            stripped = f"{subject} {_third_person(verb)}{rest}"
        else:
            who = _WHO_RE.match(stripped)
            if who:
                stripped = "Someone " + who.group(1)

    stripped = _POSSESSIVE_RE.sub("the", stripped)
    if not stripped.endswith("."):
        stripped += "."
    return stripped[0].upper() + stripped[1:]
