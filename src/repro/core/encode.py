"""Phase 3 step 3: FOL encoding of a subgraph and a query.

Encoding scheme (one predicate per action, constants per node):

* every entity node becomes an ``Entity`` constant, every data node a
  ``Data`` constant;
* a permitted unconditional edge ``[s] -a-> [d]`` becomes the fact
  ``a(s, d)``;
* a permitted conditional edge becomes ``cond -> a(s, d)`` where ``cond``
  is the conjunction of the edge's vague-term predicates (uninterpreted
  booleans carrying the verbatim policy text);
* a denied edge becomes ``not a(s, d)`` (guarded by its condition when one
  is present — this is how exception patterns avoid formal contradiction);
* hierarchy edges add the inheritance axiom
  ``forall x: Entity. a(x, parent) -> a(x, child)`` for every action in the
  subgraph, the quantified part that explodes under grounding;
* the query becomes a ground atom when its sender is known and an
  existential ``exists x: Entity. a(x, d)`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.subgraph import Subgraph
from repro.errors import QueryError
from repro.fol.builder import conjoin, disjoin, exists, forall, implies, negate
from repro.fol.formula import Formula, Predicate, PredicateSymbol
from repro.fol.simplify import simplify
from repro.fol.terms import DATA, ENTITY, Constant, Variable, mangle
from repro.llm.tasks import ExtractedParameters


@dataclass(slots=True)
class EncodedQuery:
    """A compiled verification problem."""

    policy_formulas: list[Formula] = field(default_factory=list)
    query_formula: Formula | None = None
    entity_constants: dict[str, Constant] = field(default_factory=dict)
    data_constants: dict[str, Constant] = field(default_factory=dict)
    action_predicates: dict[str, PredicateSymbol] = field(default_factory=dict)
    uninterpreted: dict[str, str] = field(default_factory=dict)  # name -> source text

    @property
    def num_policy_formulas(self) -> int:
        return len(self.policy_formulas)


class _SymbolTable:
    """Interns constants and predicates, avoiding mangling collisions."""

    def __init__(self, encoded: EncodedQuery) -> None:
        self.encoded = encoded
        self._names: set[str] = set()

    def _unique(self, base: str) -> str:
        name = base
        suffix = 2
        while name in self._names:
            name = f"{base}_{suffix}"
            suffix += 1
        self._names.add(name)
        return name

    def entity(self, text: str) -> Constant:
        text = text.lower()
        const = self.encoded.entity_constants.get(text)
        if const is None:
            const = Constant(self._unique("e_" + mangle(text)), ENTITY, source_text=text)
            self.encoded.entity_constants[text] = const
        return const

    def data(self, text: str) -> Constant:
        text = text.lower()
        const = self.encoded.data_constants.get(text)
        if const is None:
            const = Constant(self._unique("d_" + mangle(text)), DATA, source_text=text)
            self.encoded.data_constants[text] = const
        return const

    def action(self, text: str) -> PredicateSymbol:
        text = text.lower()
        sym = self.encoded.action_predicates.get(text)
        if sym is None:
            sym = PredicateSymbol(self._unique("a_" + mangle(text)), (ENTITY, DATA))
            self.encoded.action_predicates[text] = sym
        return sym

    def vague(self, phrase: str, canonical: str) -> Predicate:
        name = canonical
        existing_source = self.encoded.uninterpreted.get(name)
        if existing_source is None:
            self.encoded.uninterpreted[name] = phrase
        sym = PredicateSymbol(name, (), uninterpreted=True, source_text=phrase)
        return sym()


def _condition_formula(
    condition: str | None,
    vague_terms: tuple[tuple[str, str], ...],
    table: _SymbolTable,
) -> Formula | None:
    """Boolean guard for an edge, respecting AND/OR structure.

    Every condition — vague or merely external — is undefined from the
    formal perspective, so each atom becomes a named uninterpreted
    predicate.  Recognized vague phrases get canonical names; anything else
    is named by its mangled text, keeping the incompleteness explicit
    either way.  Top-level "or"/"and" connectives in the preserved text map
    to logical disjunction/conjunction of those predicates.
    """
    if condition is None:
        return None
    from repro.core.conditions import (
        ConditionAnd,
        ConditionAtom,
        ConditionOr,
        parse_condition,
    )

    def build(expr) -> Formula:
        if isinstance(expr, ConditionAtom):
            return table.vague(expr.text, expr.predicate)
        parts = [build(op) for op in expr.operands]
        if isinstance(expr, ConditionAnd):
            return conjoin(parts)
        return disjoin(parts)

    return build(parse_condition(condition))


def encode_query(
    subgraph: Subgraph,
    query: ExtractedParameters,
    *,
    include_hierarchy_axioms: bool = True,
    simplify_formulas: bool = True,
) -> EncodedQuery:
    """Compile a subgraph and query parameters into FOL formulas."""
    encoded = EncodedQuery()
    table = _SymbolTable(encoded)

    for edge in subgraph.edges:
        sender = table.entity(edge.source)
        data = table.data(edge.target)
        action = table.action(edge.action)
        atom = action(sender, data)
        guard = _condition_formula(edge.condition, edge.vague_terms, table)
        if edge.permission:
            formula: Formula = atom if guard is None else implies(guard, atom)
        else:
            body = negate(atom)
            formula = body if guard is None else implies(guard, body)
        encoded.policy_formulas.append(formula)

    if include_hierarchy_axioms and subgraph.hierarchy_edges:
        x = Variable("x", ENTITY)
        for parent, child in subgraph.hierarchy_edges:
            parent_const = table.data(parent)
            child_const = table.data(child)
            for action_sym in list(encoded.action_predicates.values()):
                encoded.policy_formulas.append(
                    forall(
                        x,
                        implies(
                            action_sym(x, parent_const),
                            action_sym(x, child_const),
                        ),
                    )
                )

    encoded.query_formula = _encode_query_atom(query, table)
    if simplify_formulas:
        encoded.policy_formulas = [simplify(f) for f in encoded.policy_formulas]
        encoded.query_formula = simplify(encoded.query_formula)
    return encoded


_GENERIC_SENDERS = frozenset({"", "someone", "anyone", "any entity", "any party"})


def _encode_query_atom(query: ExtractedParameters, table: _SymbolTable) -> Formula:
    """The query as a ground atom or an existential, per the paper."""
    if not query.data_type:
        raise QueryError("query has no data type to verify")
    data = table.data(query.data_type)
    action = table.action(query.action)
    conjuncts: list[Formula] = []
    sender = (query.sender or "").lower()
    if sender in _GENERIC_SENDERS:
        x = Variable("q", ENTITY)
        conjuncts.append(exists(x, action(x, data)))
    else:
        conjuncts.append(action(table.entity(sender), data))
    if query.receiver:
        receive = table.action("receive")
        conjuncts.append(receive(table.entity(query.receiver), data))
    return conjoin(conjuncts)
