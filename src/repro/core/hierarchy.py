"""Phase 2: Chain-of-Layer taxonomy induction.

Builds a taxonomy iteratively, layer by layer: each round asks the LLM
which remaining terms are *direct* subcategories of nodes already in the
taxonomy.  Terms whose natural parent has not yet been placed wait for a
later round.  An optional embedding-similarity filter (the paper uses
SciBERT scores) rejects implausible parent assignments, which then fall
back to the root.  The construction guarantees every term appears exactly
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embeddings.model import EmbeddingModel
from repro.errors import HierarchyError
from repro.llm.tasks import TaskRunner

_MAX_LAYERS = 12


@dataclass(slots=True)
class Taxonomy:
    """A rooted tree over terms; every term has exactly one parent."""

    root: str
    _parent: dict[str, str] = field(default_factory=dict)
    _children: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._children.setdefault(self.root, [])

    def add(self, term: str, parent: str) -> None:
        """Attach ``term`` under ``parent`` (which must already exist)."""
        if term == self.root or term in self._parent:
            raise HierarchyError(f"term {term!r} already present in taxonomy")
        if parent != self.root and parent not in self._parent:
            raise HierarchyError(f"parent {parent!r} not present in taxonomy")
        self._parent[term] = parent
        self._children.setdefault(parent, []).append(term)
        self._children.setdefault(term, [])

    def __contains__(self, term: str) -> bool:
        return term == self.root or term in self._parent

    def __len__(self) -> int:
        """Number of nodes including the root."""
        return 1 + len(self._parent)

    @property
    def terms(self) -> list[str]:
        """All nodes including the root."""
        return [self.root, *self._parent.keys()]

    def parent(self, term: str) -> str | None:
        return self._parent.get(term)

    def children(self, term: str) -> list[str]:
        return list(self._children.get(term, []))

    def ancestors(self, term: str) -> list[str]:
        """Chain of parents from ``term`` (exclusive) up to the root.

        The chain ends at the root because the root is the only node with
        no parent entry.
        """
        out = []
        current = self._parent.get(term)
        while current is not None:
            out.append(current)
            current = self._parent.get(current)
        return out

    def descendants(self, term: str) -> list[str]:
        """All terms below ``term``, breadth-first."""
        out: list[str] = []
        frontier = self.children(term)
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            frontier.extend(self.children(node))
        return out

    def depth(self, term: str) -> int:
        """Distance from the root (root itself has depth 0)."""
        if term == self.root:
            return 0
        return len([a for a in self.ancestors(term)])

    def max_depth(self) -> int:
        return max((self.depth(t) for t in self.terms), default=0)

    def is_ancestor(self, ancestor: str, term: str) -> bool:
        return ancestor == self.root or ancestor in self.ancestors(term)

    def as_edges(self) -> list[tuple[str, str]]:
        """(parent, child) pairs."""
        return [(p, c) for c, p in self._parent.items()]

    def validate(self) -> None:
        """Raise :class:`HierarchyError` on any structural inconsistency."""
        for term in self._parent:
            seen = {term}
            current = self._parent.get(term)
            while current is not None:
                if current in seen:
                    raise HierarchyError(f"cycle through {current!r}")
                seen.add(current)
                current = self._parent.get(current)
        for parent, kids in self._children.items():
            for child in kids:
                if self._parent.get(child) != parent:
                    raise HierarchyError(
                        f"child link {parent!r}->{child!r} without parent link"
                    )


def chain_of_layer(
    runner: TaskRunner,
    terms: list[str],
    root: str,
    *,
    similarity_model: EmbeddingModel | None = None,
    similarity_threshold: float = 0.0,
    max_layers: int = _MAX_LAYERS,
) -> Taxonomy:
    """Build a taxonomy over ``terms`` rooted at ``root``.

    Args:
        runner: LLM task interface used for the per-layer prompts.
        terms: vocabulary to organize (duplicates and the root are ignored).
        root: root concept ("data" or "entity").
        similarity_model: when given, parent assignments whose
            term/parent similarity falls below ``similarity_threshold`` are
            rejected (the SciBERT filter); rejected terms attach to the root.
        max_layers: safety bound on CoL iterations.

    The final taxonomy contains every input term exactly once.
    """
    taxonomy = Taxonomy(root=root)
    remaining: list[str] = []
    seen: set[str] = set()
    for term in terms:
        lowered = term.strip().lower()
        if lowered and lowered != root and lowered not in seen:
            seen.add(lowered)
            remaining.append(lowered)

    for _layer in range(max_layers):
        if not remaining:
            break
        response = runner.taxonomy_layer(root, taxonomy.terms, remaining)
        progress = False
        placed: set[str] = set()
        for term, parent in response.assignments:
            term = term.lower()
            parent = parent.lower() if parent != root else parent
            if term in taxonomy or term in placed or term not in seen:
                continue
            if (
                similarity_model is not None
                and parent != root
                and similarity_model.similarity(term, parent) < similarity_threshold
            ):
                parent = root  # filtered: fall back rather than force a bad link
            if parent not in taxonomy:
                # The LLM proposed a new intermediate category; it becomes a
                # first-layer node (this is how "personal data" etc. enter).
                taxonomy.add(parent, root)
            taxonomy.add(term, parent)
            placed.add(term)
            progress = True
        remaining = [t for t in remaining if t not in placed]
        if not progress:
            break

    # Everything still unplaced attaches to the root: the guarantee that all
    # terms are incorporated.
    for term in remaining:
        if term not in taxonomy:
            taxonomy.add(term, root)
    taxonomy.validate()
    return taxonomy


def extend_taxonomy(
    runner: TaskRunner,
    taxonomy: Taxonomy,
    new_terms: list[str],
    *,
    max_layers: int = _MAX_LAYERS,
) -> int:
    """Incrementally place ``new_terms`` into an existing taxonomy.

    This is the Phase 2 incremental-update path: "when text changes, we
    identify affected nodes through segment tracking and update only those
    branches."  Existing placements are untouched; only the new terms run
    through the Chain-of-Layer prompts.  Returns the number of terms added.
    """
    remaining = []
    seen: set[str] = set()
    for term in new_terms:
        lowered = term.strip().lower()
        if lowered and lowered not in taxonomy and lowered not in seen:
            seen.add(lowered)
            remaining.append(lowered)
    added = 0
    for _layer in range(max_layers):
        if not remaining:
            break
        response = runner.taxonomy_layer(taxonomy.root, taxonomy.terms, remaining)
        placed: set[str] = set()
        for term, parent in response.assignments:
            term = term.lower()
            parent = parent.lower() if parent != taxonomy.root else parent
            if term in taxonomy or term in placed or term not in seen:
                continue
            if parent not in taxonomy:
                taxonomy.add(parent, taxonomy.root)
            taxonomy.add(term, parent)
            placed.add(term)
            added += 1
        remaining = [t for t in remaining if t not in placed]
        if not placed:
            break
    for term in remaining:
        if term not in taxonomy:
            taxonomy.add(term, taxonomy.root)
            added += 1
    taxonomy.validate()
    return added
