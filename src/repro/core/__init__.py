"""The paper's contribution: the three-phase extraction/verification pipeline.

Phase 1 (:mod:`extraction`): company-name extraction, coreference
resolution, content-hashed segmentation, and LLM semantic-parameter
extraction with vague-term preservation.

Phase 2 (:mod:`hierarchy`, :mod:`graphs`): Chain-of-Layer taxonomy
induction over the extracted entity and data vocabularies, and the
entity–data practice graph with conditions as boolean predicates on edges.

Phase 3 (:mod:`translation`, :mod:`subgraph`, :mod:`encode`,
:mod:`verify`): embedding-based query translation, relevant-subgraph
extraction, FOL encoding, SMT-LIB compilation, and solver-backed
verification that reports VALID / INVALID / UNKNOWN together with the
uninterpreted (vague) predicates the verdict depends on.

:class:`~repro.core.pipeline.PolicyPipeline` orchestrates all of it,
including caching and incremental updates.
"""

from repro.core.segmenter import Segment, diff_segments, segment_policy
from repro.core.parameters import AnnotatedPractice
from repro.core.extraction import ExtractionResult, extract_policy
from repro.core.hierarchy import Taxonomy, chain_of_layer
from repro.core.graphs import PolicyGraph, GraphStatistics
from repro.core.translation import TranslationResult, translate_query_terms
from repro.core.subgraph import Subgraph, extract_subgraph
from repro.core.encode import EncodedQuery, encode_query
from repro.core.verify import (
    Verdict,
    VerificationResult,
    is_certification_failure,
    verify_encoded,
)
from repro.core.pipeline import PipelineConfig, PolicyModel, PolicyPipeline

__all__ = [
    "Segment",
    "segment_policy",
    "diff_segments",
    "AnnotatedPractice",
    "ExtractionResult",
    "extract_policy",
    "Taxonomy",
    "chain_of_layer",
    "PolicyGraph",
    "GraphStatistics",
    "TranslationResult",
    "translate_query_terms",
    "Subgraph",
    "extract_subgraph",
    "EncodedQuery",
    "encode_query",
    "Verdict",
    "VerificationResult",
    "is_certification_failure",
    "verify_encoded",
    "PolicyPipeline",
    "PolicyModel",
    "PipelineConfig",
]
