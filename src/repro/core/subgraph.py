"""Phase 3 step 2: relevant-subgraph extraction.

For a translated query we collect the edges that could bear on it: every
practice edge whose object lies in the hierarchy closure of the query's
data term (the term itself, its ancestors, and its descendants in G_DD),
plus edges incident to the query's entities.  New queries reuse the
existing hierarchy with local traversal — no reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.graphs import PolicyGraph, PracticeEdge


@dataclass(slots=True)
class Subgraph:
    """The slice of the policy graph a query will be verified against."""

    edges: list[PracticeEdge] = field(default_factory=list)
    data_terms: set[str] = field(default_factory=set)
    entity_terms: set[str] = field(default_factory=set)
    hierarchy_edges: list[tuple[str, str]] = field(default_factory=list)  # (parent, child)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def describe(self, limit: int = 20) -> str:
        lines = [e.describe() for e in self.edges[:limit]]
        if len(self.edges) > limit:
            lines.append(f"... and {len(self.edges) - limit} more edges")
        return "\n".join(lines)


def subgraph_cache_key(
    data_terms: list[str],
    entity_terms: list[str],
    *,
    use_hierarchy: bool,
    max_edges: int | None,
    revision: int = 0,
) -> tuple:
    """Canonical memoization key for :func:`extract_subgraph`.

    Extraction is order-insensitive in its term lists (closures are set
    unions, traversal is sorted), so the key lowers and sorts them; the
    model ``revision`` is embedded so cached slices die with the graph
    version that produced them.
    """
    return (
        tuple(sorted({t.lower() for t in data_terms})),
        tuple(sorted({t.lower() for t in entity_terms})),
        bool(use_hierarchy),
        max_edges,
        revision,
    )


def split_components(subgraph: Subgraph) -> list[Subgraph]:
    """Partition a subgraph into independent data-branch components.

    Two practice edges land in the same component when their data terms are
    connected — directly (same term) or through the subgraph's hierarchy
    edges (same taxonomy branch).  Entity nodes are deliberately *not*
    connectors: the policy's own organization appears as the sender of
    nearly every edge, so entity connectivity would collapse everything
    into one component, while data-branch connectivity mirrors how the
    paper decomposes compound statements into per-data-type edges.

    Each component carries its own slice of the hierarchy edges, so
    per-component encoding re-grounds only that branch's inheritance
    axioms — the mechanism by which the degradation ladder shrinks a
    policy-sized solver problem back to query size.  Every edge of the
    input appears in exactly one component; components are ordered largest
    first (ties broken by smallest data term) so the split is
    deterministic.
    """
    parent: dict[str, str] = {}

    def find(term: str) -> str:
        parent.setdefault(term, term)
        while parent[term] != term:
            parent[term] = parent[parent[term]]
            term = parent[term]
        return term

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for parent_term, child_term in subgraph.hierarchy_edges:
        union(parent_term, child_term)
    for edge in subgraph.edges:
        find(edge.target)

    grouped: dict[str, Subgraph] = {}
    for edge in subgraph.edges:
        root = find(edge.target)
        component = grouped.get(root)
        if component is None:
            component = grouped[root] = Subgraph()
        component.edges.append(edge)
        component.data_terms.add(edge.target)
        component.entity_terms.add(edge.source)
        if edge.receiver:
            component.entity_terms.add(edge.receiver)
    for parent_term, child_term in subgraph.hierarchy_edges:
        component = grouped.get(find(parent_term))
        if component is not None:
            component.hierarchy_edges.append((parent_term, child_term))
            component.data_terms.update((parent_term, child_term))
    return sorted(
        grouped.values(),
        key=lambda c: (-c.num_edges, min(c.data_terms, default="")),
    )


def component_for_terms(
    components: list[Subgraph], terms: Iterable[str]
) -> Subgraph | None:
    """The first component containing any of ``terms`` (lowered), if any."""
    wanted = {t.lower() for t in terms if t}
    for component in components:
        if component.data_terms & wanted:
            return component
    return None


def extract_subgraph(
    graph: PolicyGraph,
    data_terms: list[str],
    entity_terms: list[str],
    *,
    use_hierarchy: bool = True,
    max_edges: int | None = None,
) -> Subgraph:
    """Collect the edges relevant to the query terms.

    Args:
        use_hierarchy: when False the closure step is skipped (the A1
            ablation: hierarchy-blind matching).
        max_edges: optional cap, used by the solver-limit experiments to
            sweep encoded-subgraph size.
    """
    sub = Subgraph()
    closure: set[str] = set()
    for term in data_terms:
        term = term.lower()
        if use_hierarchy:
            closure |= graph.data_closure(term)
        else:
            closure.add(term)
    sub.data_terms = set(closure)
    sub.entity_terms = {e.lower() for e in entity_terms}

    def admit(edge: PracticeEdge, seen: set[int]) -> None:
        marker = id(edge)
        if marker in seen:
            return
        seen.add(marker)
        sub.edges.append(edge)
        sub.data_terms.add(edge.target)
        sub.entity_terms.add(edge.source)
        if edge.receiver:
            sub.entity_terms.add(edge.receiver)

    seen: set[int] = set()
    # Data relevance: every edge acting on a term in the closure.
    for term in sorted(closure):
        for edge in graph.edges_touching(term):
            if edge.target in closure:
                admit(edge, seen)
            if max_edges is not None and len(sub.edges) >= max_edges:
                break
        if max_edges is not None and len(sub.edges) >= max_edges:
            break
    # Entity-only queries ("does law enforcement receive anything?") fall
    # back to the edges incident to the named entities.
    if not closure:
        for ent in sorted({e.lower() for e in entity_terms}):
            for edge in graph.edges_touching(ent):
                admit(edge, seen)
                if max_edges is not None and len(sub.edges) >= max_edges:
                    break

    if use_hierarchy and graph.data_taxonomy is not None:
        taxonomy = graph.data_taxonomy
        for child in sorted(sub.data_terms):
            parent = taxonomy.parent(child)
            if parent and parent != taxonomy.root and parent in sub.data_terms:
                sub.hierarchy_edges.append((parent, child))
    return sub
