"""Phase 1: per-segment semantic-parameter extraction.

Implements lines 1–10 of Algorithm 1: extract the company name from the
policy opening, resolve first-person coreferences, segment, and run the
extraction prompt per segment, tagging each result with OPP-115 categories
and vague-term annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.opp115 import match_categories
from repro.core.parameters import AnnotatedPractice, annotate
from repro.core.segmenter import Segment, segment_policy
from repro.errors import ExtractionError
from repro.llm.tasks import TaskRunner

_COMPANY_WINDOW = 1000


@dataclass(slots=True)
class ExtractionResult:
    """Everything Phase 1 produces for one policy version."""

    company: str
    segments: list[Segment] = field(default_factory=list)
    practices: list[AnnotatedPractice] = field(default_factory=list)
    practices_by_segment: dict[str, list[AnnotatedPractice]] = field(
        default_factory=dict
    )

    @property
    def num_practices(self) -> int:
        return len(self.practices)


def extract_company(runner: TaskRunner, policy_text: str) -> str:
    """Company name from the policy's first 1000 characters."""
    name = runner.extract_company_name(policy_text[:_COMPANY_WINDOW])
    if not name.strip():
        raise ExtractionError("empty company name extracted")
    return name.strip()


def extract_segment(
    runner: TaskRunner, segment: Segment, company: str
) -> list[AnnotatedPractice]:
    """Extract the data practices of a single segment.

    Coreference resolution runs first so the extraction prompt sees the
    company name instead of "we"/"our"; the OPP-115 match runs on the
    original text (Algorithm 1 line 8).
    """
    resolved = runner.resolve_coreferences(segment.text, company)
    categories = tuple(match_categories(segment.text))
    raw = runner.extract_parameters(resolved, company)
    return [
        annotate(
            params,
            segment_id=segment.segment_id,
            segment_index=segment.index,
            section=segment.section,
            opp115_categories=categories,
        )
        for params in raw
    ]


def extract_policy(
    runner: TaskRunner,
    policy_text: str,
    *,
    company: str | None = None,
    cached: dict[str, list[AnnotatedPractice]] | None = None,
) -> ExtractionResult:
    """Run Phase 1 over a full policy.

    Args:
        runner: the LLM task interface.
        policy_text: raw policy text.
        company: skip company extraction when already known.
        cached: previously extracted practices keyed by segment id; segments
            whose id appears here are reused without an LLM call, which is
            the incremental-update mechanism.
    """
    company = company or extract_company(runner, policy_text)
    segments = segment_policy(policy_text)
    result = ExtractionResult(company=company, segments=segments)
    cached = cached or {}
    for segment in segments:
        if segment.segment_id in cached:
            practices = [
                _rehome(p, segment) for p in cached[segment.segment_id]
            ]
        else:
            practices = extract_segment(runner, segment, company)
        result.practices_by_segment[segment.segment_id] = practices
        result.practices.extend(practices)
    return result


def _rehome(practice: AnnotatedPractice, segment: Segment) -> AnnotatedPractice:
    """Refresh positional provenance on a cache-reused practice."""
    if (
        practice.segment_index == segment.index
        and practice.section == segment.section
    ):
        return practice
    return AnnotatedPractice(
        params=practice.params,
        segment_id=segment.segment_id,
        segment_index=segment.index,
        section=segment.section,
        opp115_categories=practice.opp115_categories,
        vague_terms=practice.vague_terms,
    )
