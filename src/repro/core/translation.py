"""Phase 3 step 1: translate query vocabulary into policy vocabulary.

The multi-step translation the paper describes: cosine similarity between
each query term and all policy terms proposes top-k (k=10) candidates, and
an LLM equivalence prompt confirms or rejects each candidate.  Confirmed
candidates win by similarity rank; with no confirmation the original term
is kept (and will simply fail to match policy statements, surfacing as an
INVALID verdict rather than a silent wrong answer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.caches import ModelCaches
from repro.core.metrics import PipelineMetrics
from repro.embeddings.search import DEFAULT_TOP_K, top_k
from repro.embeddings.store import EmbeddingStore
from repro.errors import TranslationError
from repro.llm.tasks import TaskRunner


@dataclass(frozen=True, slots=True)
class TranslationResult:
    """Outcome of translating one query term."""

    original: str
    translated: str
    similarity: float
    verified: bool  # confirmed by the LLM equivalence prompt

    @property
    def changed(self) -> bool:
        return self.original != self.translated

    @property
    def fell_back(self) -> bool:
        """Did the term keep its raw form for lack of a confirmed match?"""
        return not self.verified and self.original == self.translated

    @property
    def untranslatable(self) -> bool:
        """No candidate cleared the similarity floor at all."""
        return self.fell_back and self.similarity == 0.0


def translate_term(
    runner: TaskRunner,
    store: EmbeddingStore,
    term: str,
    *,
    vocabulary: set[str] | None = None,
    k: int = DEFAULT_TOP_K,
    min_similarity: float = 0.3,
) -> TranslationResult:
    """Translate one term into the policy's vocabulary.

    Args:
        vocabulary: when given, only hits inside this set are considered
            (used to restrict matches to graph node names, excluding the
            edge-text keys that share the store).
    """
    lowered = term.strip().lower()
    if vocabulary is not None and lowered in vocabulary:
        return TranslationResult(lowered, lowered, 1.0, True)
    if vocabulary is None and lowered in store:
        return TranslationResult(lowered, lowered, 1.0, True)

    # Over-fetch before the vocabulary filter: the store also holds
    # edge-text keys, which would otherwise crowd node terms out of the
    # top-k window.
    hits = top_k(store, lowered, k=max(3 * k, 30), min_score=min_similarity)
    if vocabulary is not None:
        hits = [h for h in hits if h.key in vocabulary]
    hits = hits[:k]
    for hit in hits:
        if runner.semantic_equivalence(lowered, hit.key):
            return TranslationResult(lowered, hit.key, hit.score, True)
    if hits:
        # No candidate survived verification; report the best rejected one
        # for diagnostics but keep the original term.
        return TranslationResult(lowered, lowered, hits[0].score, False)
    return TranslationResult(lowered, lowered, 0.0, False)


def translation_cache_key(
    term: str, *, k: int, min_similarity: float, revision: int = 0
) -> tuple[str, int, float, int]:
    """Canonical cache key for one term translation.

    The key embeds the model's vocabulary ``revision`` so entries cached
    before an incremental update can never answer queries against the
    updated vocabulary.
    """
    return (term.strip().lower(), k, min_similarity, revision)


def translate_query_terms(
    runner: TaskRunner,
    store: EmbeddingStore,
    terms: list[str],
    *,
    vocabulary: set[str] | None = None,
    k: int = DEFAULT_TOP_K,
    min_similarity: float = 0.3,
    cache: ModelCaches | None = None,
    revision: int = 0,
    metrics: PipelineMetrics | None = None,
    strict: bool = False,
) -> dict[str, TranslationResult]:
    """Translate several query terms; returns a per-term result map.

    With a ``cache``, each term is looked up by
    :func:`translation_cache_key` first; misses are computed and stored.
    :class:`TranslationResult` is frozen, so cached instances are safely
    shared across concurrent queries.

    Terms that keep their raw form are counted in
    ``metrics.translation_fallbacks``.  With ``strict=True``, terms with
    *no* candidate above ``min_similarity`` raise
    :class:`~repro.errors.TranslationError` (carrying every such term)
    instead of silently falling back — cache hits included, so strictness
    does not depend on cache temperature.
    """
    results: dict[str, TranslationResult] = {}
    untranslatable: list[str] = []
    for term in terms:
        if not term or not term.strip():
            continue
        key = translation_cache_key(
            term, k=k, min_similarity=min_similarity, revision=revision
        )
        def run_translate(term: str = term) -> TranslationResult:
            return translate_term(
                runner,
                store,
                term,
                vocabulary=vocabulary,
                k=k,
                min_similarity=min_similarity,
            )

        if cache is not None:
            result, computed = cache.get_or_compute(
                "translation", key, run_translate
            )
            if metrics is not None:
                if computed:
                    metrics.translation_misses += 1
                else:
                    metrics.translation_hits += 1
        else:
            result = run_translate()
            if metrics is not None:
                metrics.translation_misses += 1
        if result.fell_back and metrics is not None:
            metrics.translation_fallbacks += 1
        if result.untranslatable:
            untranslatable.append(result.original)
        results[term] = result
    if strict and untranslatable:
        raise TranslationError(
            "no policy-vocabulary candidate above similarity "
            f"{min_similarity:g} for: " + ", ".join(sorted(untranslatable)),
            terms=tuple(sorted(untranslatable)),
        )
    return results
