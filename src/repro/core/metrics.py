"""Per-query and per-batch pipeline metrics.

Phase 3 is a four-stage pipeline (translate, subgraph, encode, verify)
preceded by LLM parameter extraction.  :class:`PipelineMetrics` records the
wall time each stage cost, how often the per-model memoization caches
answered instead, and the solver work the verification stage performed.
One instance is attached to every :class:`~repro.core.pipeline.QueryOutcome`;
:meth:`PipelineMetrics.merge` folds the per-query instances into the
:class:`~repro.core.pipeline.BatchOutcome` summary.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, fields


class LatencyReservoir:
    """Deterministic bounded latency sketch with mergeable percentiles.

    Stage-seconds sums answer "how much did the batch cost" but not "what
    did the slowest 1% of requests see" — the question a serving daemon's
    SLO lives on.  This reservoir records samples into log-spaced buckets
    (:data:`PER_OCTAVE` per factor of two above a 1 µs floor), so it is:

    * **bounded** — a fixed array of integers, independent of sample count;
    * **deterministic** — the same multiset of samples produces the same
      state regardless of arrival or merge order (no RNG, unlike classic
      reservoir sampling);
    * **mergeable** — :meth:`merge` adds bucket counts elementwise, so
      per-worker reservoirs fold into one exact-as-if-central sketch.

    Quantiles interpolate geometrically inside the winning bucket, so the
    relative error is bounded by the bucket width (≈ 2^(1/8) ≈ 9%); count,
    sum, min, and max are tracked exactly.  Thread-safe: concurrent
    ``record`` calls from server worker threads take a small lock.
    """

    PER_OCTAVE = 8
    _FLOOR = 1e-6  # 1 µs: everything faster lands in bucket 0
    _OCTAVES = 40  # ceiling ≈ 1e-6 * 2^40 s ≈ 12.7 days
    BUCKETS = PER_OCTAVE * _OCTAVES

    __slots__ = ("_lock", "_buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * self.BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def _index(self, seconds: float) -> int:
        if seconds <= self._FLOOR:
            return 0
        index = int(math.log2(seconds / self._FLOOR) * self.PER_OCTAVE)
        return min(index, self.BUCKETS - 1)

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._buckets[self._index(seconds)] += 1
            self.count += 1
            self.sum += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    def merge(self, other: "LatencyReservoir") -> None:
        """Fold ``other`` in; the result equals a single central reservoir
        that saw both sample streams (merge-order independent)."""
        with other._lock:
            buckets = list(other._buckets)
            count, total = other.count, other.sum
            lo, hi = other.min, other.max
        with self._lock:
            for i, n in enumerate(buckets):
                if n:
                    self._buckets[i] += n
            self.count += count
            self.sum += total
            self.min = min(self.min, lo)
            self.max = max(self.max, hi)

    def quantile(self, q: float) -> float:
        """The latency at rank ``ceil(q * count)`` (0 for an empty sketch)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            seen = 0
            for index, n in enumerate(self._buckets):
                if n == 0:
                    continue
                if seen + n >= rank:
                    lo = self._FLOOR * 2 ** (index / self.PER_OCTAVE)
                    hi = lo * 2 ** (1 / self.PER_OCTAVE)
                    # Geometric interpolation by position within the bucket,
                    # clamped to the exact extremes the sketch tracked.
                    position = (rank - seen) / n
                    value = lo * (hi / lo) ** position
                    return min(max(value, self.min), self.max)
                seen += n
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "mean_seconds": round(self.mean, 6),
            "min_seconds": round(self.min, 6) if self.count else 0.0,
            "max_seconds": round(self.max, 6),
            "p50_seconds": round(self.p50, 6),
            "p95_seconds": round(self.p95, 6),
            "p99_seconds": round(self.p99, 6),
        }


@dataclass(slots=True)
class PipelineMetrics:
    """Cost accounting for one query (or, merged, for one batch)."""

    queries: int = 1
    parse_seconds: float = 0.0  # normalization + LLM parameter extraction
    translate_seconds: float = 0.0
    subgraph_seconds: float = 0.0
    encode_seconds: float = 0.0
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    translation_hits: int = 0
    translation_misses: int = 0
    subgraph_hits: int = 0
    subgraph_misses: int = 0
    verification_hits: int = 0
    verification_misses: int = 0
    solver_conflicts: int = 0
    solver_propagations: int = 0
    translation_fallbacks: int = 0  # terms kept verbatim for lack of a match
    query_errors: int = 0  # queries isolated as ErrorOutcome in a batch
    degraded_queries: int = 0  # queries that entered the degradation ladder
    ladder_escalations: int = 0  # budget-escalation rungs executed
    ladder_decompositions: int = 0  # decomposition rungs executed
    ladder_rescues: int = 0  # degraded queries that reached a decided verdict
    certifications_run: int = 0  # verifications that ran the certifier
    certification_failures: int = 0  # soundness alarms (verdict demoted to UNKNOWN)
    certification_quarantines: int = 0  # offending formulas persisted to disk
    # Model-store accounting (tracked on PolicyPipeline.metrics, which
    # covers the pipeline's whole lifetime rather than one query).
    snapshot_saves: int = 0  # snapshots committed through save_model
    snapshot_loads: int = 0  # warm starts served from a snapshot
    snapshot_quarantines: int = 0  # corrupt snapshots quarantined during loads
    snapshot_rebuilds: int = 0  # loads that fell back to policy-text re-extraction
    snapshot_journal_recoveries: int = 0  # journal roll-forward/back events
    audits_run: int = 0  # structural/parity audits executed
    audit_failures: int = 0  # audits that reported findings
    audit_heals: int = 0  # models auto-healed after a failed parity audit
    # Job-supervision accounting (repro.jobs): per-run counters attached
    # to each JobResult.metrics.
    queue_high_water: int = 0  # peak admission-queue depth (merged by max)
    shed_queries: int = 0  # queries refused by admission control
    stalled_queries: int = 0  # hung queries converted to UNKNOWN + StallReport
    workers_replaced: int = 0  # workers the watchdog cancelled and replaced
    checkpoint_records: int = 0  # outcomes appended to the checkpoint journal
    checkpoint_restored: int = 0  # outcomes restored from the journal on resume
    jobs_aborted: int = 0  # graceful drains (SIGINT/SIGTERM or request_drain)
    # Multi-policy registry accounting (repro.registry): tracked on
    # PolicyPipeline.metrics, like the snapshot counters above.
    registry_hits: int = 0  # get_model served from the warm LRU
    registry_misses: int = 0  # get_model that had to load a shard from disk
    registry_evictions: int = 0  # warm models evicted by the LRU bound
    policies_minted: int = 0  # policies generated + committed by mint
    fleet_queries: int = 0  # query_fleet invocations
    fleet_companies: int = 0  # per-company queries fanned out by query_fleet
    # Serving-daemon accounting (repro.server): tracked on the server's
    # own PipelineMetrics and merged with the pipeline's for /stats.
    server_requests: int = 0  # requests admitted and executed
    server_reloads: int = 0  # hot epoch swaps performed by /reload
    server_drains: int = 0  # graceful drains begun (signal or /drain)
    deadline_refusals: int = 0  # requests refused because the deadline expired
    queue_depth: int = 0  # admission depth gauge (merged by max, like high-water)
    # Process-pool execution backend accounting (repro.procpool): per-query
    # counters attached by the pipeline's process-backend script runner.
    procpool_units: int = 0  # worker attempts dispatched (incl. retries/races)
    procpool_kills: int = 0  # hard kills (deadline, stall, RSS, cancellation)
    procpool_crashes: int = 0  # units whose retry also died (surfaced UNKNOWN)
    procpool_retries: int = 0  # crashed units replayed on a replacement worker
    procpool_rescues: int = 0  # budget-limited verdicts decided by the portfolio
    # LLM provider boundary accounting (repro.providers + repro.resilience):
    # synced onto PolicyPipeline.metrics from the wrapper stack's UsageStats
    # by sync_resilience_metrics(), so they are lifetime absolutes like the
    # snapshot counters above.
    llm_retries: int = 0  # failed completions replayed by RetryingLLM
    llm_giveups: int = 0  # completions abandoned after the retry budget
    retry_after_honored: int = 0  # retries that slept on a server-advised hint
    breaker_state: int = 0  # gauge: 0 closed, 1 half-open, 2 open (merged by max)
    provider_calls: int = 0  # completions served by a remote HTTP provider
    provider_rate_limited: int = 0  # 429 rejections the provider surfaced
    cassette_records: int = 0  # prompt->completion pairs appended to a cassette
    cassette_replays: int = 0  # completions served from a cassette
    cassette_misses: int = 0  # replay lookups the cassette could not serve
    # Fleet-integrity accounting (repro.integrity): typed damage findings
    # surfaced by loads/scans, repairs that healed them, and background
    # scrubber progress.  Tracked on PolicyPipeline.metrics (lifetime
    # absolutes) and on the serving daemon's own metrics for the scrubber.
    integrity_findings: int = 0  # typed damage findings surfaced
    integrity_repairs: int = 0  # findings healed (quarantine + fallback/rebuild)
    integrity_unrepairable: int = 0  # findings with no valid artifact to heal from
    scrub_passes: int = 0  # full sweeps the background scrubber completed
    scrub_paused: int = 0  # scrub ticks skipped because queries were in flight
    scrub_artifacts: int = 0  # snapshots hash-verified by the scrubber
    #: Tail-latency sketch (p50/p95/p99) for served requests; ``None``
    #: everywhere metrics must stay byte-identical to prior releases —
    #: only the serving layer allocates one.
    latency: "LatencyReservoir | None" = None

    @property
    def cache_hits(self) -> int:
        return self.translation_hits + self.subgraph_hits + self.verification_hits

    @property
    def cache_misses(self) -> int:
        return (
            self.translation_misses
            + self.subgraph_misses
            + self.verification_misses
        )

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    #: Gauges folded by max instead of sum: a batch's peak queue depth is
    #: the largest any constituent saw, not their total; a merged breaker
    #: state reports the most degraded constituent (open > half-open >
    #: closed, by encoding).
    _MAX_MERGED = frozenset({"queue_high_water", "queue_depth", "breaker_state"})

    #: Human-readable names for the ``breaker_state`` gauge encoding.
    BREAKER_STATES = ("closed", "half-open", "open")

    def merge(self, other: "PipelineMetrics") -> None:
        """Fold ``other`` into this instance (counters add, gauges max,
        latency reservoirs bucket-merge)."""
        for spec in fields(self):
            mine, theirs = getattr(self, spec.name), getattr(other, spec.name)
            if spec.name == "latency":
                if theirs is not None:
                    if mine is None:
                        mine = LatencyReservoir()
                        self.latency = mine
                    mine.merge(theirs)
            elif spec.name in self._MAX_MERGED:
                setattr(self, spec.name, max(mine, theirs))
            else:
                setattr(self, spec.name, mine + theirs)

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "latency":
                # Omitted when absent so traces without a serving layer
                # stay byte-identical to prior releases.
                if value is not None:
                    out[spec.name] = value.as_dict()
                continue
            if spec.name == "breaker_state":
                out[spec.name] = self.BREAKER_STATES[value]
                continue
            out[spec.name] = round(value, 6) if isinstance(value, float) else value
        out["cache_hit_rate"] = round(self.hit_rate, 4)
        return out

    def render(self) -> str:
        """Human-readable block for the CLI ``--stats`` flag."""
        lines = [
            f"queries: {self.queries}",
            "stage seconds: "
            f"parse {self.parse_seconds:.3f}, "
            f"translate {self.translate_seconds:.3f}, "
            f"subgraph {self.subgraph_seconds:.3f}, "
            f"encode {self.encode_seconds:.3f}, "
            f"verify {self.verify_seconds:.3f} "
            f"(total {self.total_seconds:.3f})",
            f"translation cache: {self.translation_hits} hits / "
            f"{self.translation_misses} misses",
            f"subgraph cache: {self.subgraph_hits} hits / "
            f"{self.subgraph_misses} misses",
            f"verification cache: {self.verification_hits} hits / "
            f"{self.verification_misses} misses",
            f"solver: {self.solver_conflicts} conflicts, "
            f"{self.solver_propagations} propagations",
            f"resilience: {self.query_errors} errors, "
            f"{self.degraded_queries} degraded "
            f"({self.ladder_rescues} rescued via "
            f"{self.ladder_escalations} escalations / "
            f"{self.ladder_decompositions} decompositions), "
            f"{self.translation_fallbacks} translation fallbacks",
            f"certification: {self.certifications_run} run, "
            f"{self.certification_failures} soundness alarms "
            f"({self.certification_quarantines} quarantined)",
            f"store: {self.snapshot_saves} saves, {self.snapshot_loads} loads "
            f"({self.snapshot_quarantines} quarantined, "
            f"{self.snapshot_rebuilds} rebuilt, "
            f"{self.snapshot_journal_recoveries} journal recoveries); "
            f"audits: {self.audits_run} run, {self.audit_failures} failed, "
            f"{self.audit_heals} healed",
            f"jobs: queue high-water {self.queue_high_water}, "
            f"{self.shed_queries} shed, {self.stalled_queries} stalled "
            f"({self.workers_replaced} workers replaced); "
            f"checkpoint: {self.checkpoint_records} written, "
            f"{self.checkpoint_restored} restored, "
            f"{self.jobs_aborted} drains",
            f"registry: {self.registry_hits} warm hits / "
            f"{self.registry_misses} shard loads "
            f"({self.registry_evictions} evicted); "
            f"{self.policies_minted} minted; "
            f"fleet: {self.fleet_queries} fan-outs over "
            f"{self.fleet_companies} companies",
            f"serving: {self.server_requests} served, "
            f"{self.deadline_refusals} deadline refusals, "
            f"{self.server_reloads} reloads, {self.server_drains} drains; "
            f"queue depth {self.queue_depth}",
            f"procpool: {self.procpool_units} units, "
            f"{self.procpool_kills} kills, {self.procpool_crashes} crashes "
            f"({self.procpool_retries} retried), "
            f"{self.procpool_rescues} portfolio rescues",
            f"llm boundary: breaker {self.BREAKER_STATES[self.breaker_state]}; "
            f"{self.llm_retries} retries "
            f"({self.retry_after_honored} on server hints), "
            f"{self.llm_giveups} giveups; "
            f"provider: {self.provider_calls} calls, "
            f"{self.provider_rate_limited} rate-limited; "
            f"cassette: {self.cassette_records} recorded, "
            f"{self.cassette_replays} replayed, "
            f"{self.cassette_misses} misses",
            f"integrity: {self.integrity_findings} findings "
            f"({self.integrity_repairs} repaired, "
            f"{self.integrity_unrepairable} unrepairable); "
            f"scrub: {self.scrub_passes} passes, "
            f"{self.scrub_artifacts} artifacts verified, "
            f"{self.scrub_paused} paused ticks",
        ]
        if self.latency is not None and self.latency.count:
            lines.append(
                f"latency: p50 {self.latency.p50 * 1e3:.1f} ms, "
                f"p95 {self.latency.p95 * 1e3:.1f} ms, "
                f"p99 {self.latency.p99 * 1e3:.1f} ms "
                f"({self.latency.count} samples)"
            )
        return "\n".join(lines)


def merged(parts: list[PipelineMetrics]) -> PipelineMetrics:
    """Sum a list of per-query metrics into one batch summary."""
    total = PipelineMetrics(queries=0)
    for part in parts:
        total.merge(part)
    return total
