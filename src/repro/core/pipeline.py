"""Algorithm 1 end to end: the :class:`PolicyPipeline` orchestrator.

``process`` runs Phases 1 and 2 over a policy and returns a
:class:`PolicyModel`; ``query`` runs Phase 3 against a model;
``query_batch`` runs many Phase 3 queries concurrently against one model,
sharing repeated work through the model's memoization caches; ``update``
applies a new policy version incrementally, re-extracting only segments
whose content hash changed.  Artifacts (segments, practices, graphs,
embeddings) can be persisted as JSON for inspection, mirroring the paper's
per-stage caching.

Concurrency contract: a :class:`PolicyModel` and its substrates
(:class:`~repro.embeddings.store.EmbeddingStore`,
:class:`~repro.llm.client.CachedLLM`, :class:`~repro.core.caches.ModelCaches`)
are safe to share across query workers; each verification builds its own
:class:`~repro.solver.interface.Solver`, which is single-thread-owned.
``process`` and ``update`` are not concurrent-safe against in-flight
queries on the same model — batch boundaries are the synchronization
points.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.caches import ModelCaches
from repro.core.encode import EncodedQuery, encode_query
from repro.core.extraction import ExtractionResult, extract_policy
from repro.core.graphs import NODE_DATA, NODE_ENTITY, PolicyGraph
from repro.core.hierarchy import Taxonomy, chain_of_layer
from repro.core.metrics import PipelineMetrics, merged
from repro.core.segmenter import diff_segments, segment_policy
from repro.core.subgraph import Subgraph, extract_subgraph, subgraph_cache_key
from repro.core.translation import TranslationResult, translate_query_terms
from repro.core.verify import (
    VerificationResult,
    Verdict,
    compile_script_text,
    is_certification_failure,
    verification_cache_key,
    verify_encoded,
)
from repro.embeddings.model import EmbeddingModel
from repro.embeddings.search import edge_text
from repro.embeddings.store import EmbeddingStore
from repro.errors import QueryError
from repro.llm.client import CachedLLM, LLMClient
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import TaskRunner
from repro.resilience.degradation import (
    BudgetLadder,
    DegradationReport,
    execute_ladder,
    is_budget_limited,
)
from repro.solver.interface import CertificationConfig, SolverBudget

DEFAULT_BATCH_WORKERS = 8


@contextmanager
def _stage(name: str):
    """Tag exceptions escaping a Phase 3 stage for batch fault isolation.

    The first stage to see an exception wins (an exception re-raised
    through outer stages keeps its original tag), so an
    :class:`ErrorOutcome` can report where a query died without the
    pipeline threading stage state through every call.
    """
    try:
        yield
    except BaseException as exc:
        if getattr(exc, "pipeline_stage", None) is None:
            try:
                exc.pipeline_stage = name
            except Exception:  # noqa: BLE001 - tagging must never mask the error
                pass
        raise


@dataclass(slots=True)
class PipelineConfig:
    """Tunables for the three phases; defaults follow the paper."""

    top_k: int = 10
    min_similarity: float = 0.3
    col_similarity_threshold: float = 0.0  # 0 disables the SciBERT-style filter
    include_hierarchy_axioms: bool = True
    simplify_formulas: bool = True
    use_smtlib_roundtrip: bool = True
    check_conditional: bool = True
    solver_budget: SolverBudget = field(default_factory=SolverBudget)
    max_subgraph_edges: int | None = None
    enable_query_caches: bool = True  # per-model Phase 3 memoization
    # Degradation ladder for budget-limited UNKNOWN verdicts; None disables
    # it (the default keeps query traces byte-identical to prior releases).
    budget_ladder: BudgetLadder | None = None
    # Raise TranslationError for terms with no embedding candidate at all
    # instead of silently keeping the raw term.
    strict_translation: bool = False
    # After every update(in_place=True), run the incremental-vs-rebuild
    # parity audit (repro.store.audit) and attach its report to the
    # UpdateStats; with auto_heal, a failed audit replaces the patched
    # state with the rebuild instead of letting drift reach queries.
    audit_updates: bool = False
    auto_heal: bool = False
    # Trust-but-verify certification of solver verdicts: re-validate SAT
    # answers against the original formulas, replay UNSAT proofs, and
    # demote any verdict whose certificate fails to UNKNOWN (soundness
    # alarm).  Single queries certify by default; batches sample every
    # batch_certify_stride-th question (1 = every question).
    certify: bool = True
    certification: CertificationConfig = field(default_factory=CertificationConfig)
    batch_certify_stride: int = 4
    # Directory for quarantined formulas whose verdict failed
    # certification; None disables quarantine (the alarm still fires).
    certification_quarantine_dir: str | Path | None = None
    # Default supervision settings for run_job/resume_job (watchdog,
    # admission control, checkpointing); None means plain JobConfig()
    # defaults.  Annotated lazily to keep repro.jobs import-free here —
    # the jobs package imports this module, never the reverse.
    jobs: "JobConfig | None" = None  # noqa: F821 - resolved lazily
    # Execution backend for the main verification solve.  "thread" (the
    # default) solves in-process as before; "process" ships the SMT-LIB
    # script to a supervised worker process that can be hard-killed on
    # deadline/stall/RSS and replaced after a crash (repro.procpool).
    # Traces are byte-identical across backends.  ``procpool`` tunes the
    # pool (None = ProcPoolConfig() defaults); ``portfolio`` arms the
    # VSIDS-seed race that rescues budget-limited UNKNOWNs (process
    # backend only).  Lazy annotations, same reasoning as ``jobs``.
    execution_backend: str = "thread"
    procpool: "ProcPoolConfig | None" = None  # noqa: F821 - resolved lazily
    portfolio: "PortfolioConfig | None" = None  # noqa: F821 - resolved lazily

    def __post_init__(self) -> None:
        if self.execution_backend not in ("thread", "process"):
            raise ValueError(
                "execution_backend must be 'thread' or 'process', got "
                f"{self.execution_backend!r}"
            )


@dataclass(slots=True)
class PolicyModel:
    """Everything Phases 1 and 2 know about one policy version."""

    company: str
    extraction: ExtractionResult
    data_taxonomy: Taxonomy
    entity_taxonomy: Taxonomy
    graph: PolicyGraph
    store: EmbeddingStore
    node_vocabulary: set[str] = field(default_factory=set)
    revision: int = 0  # bumped by every update; embedded in cache keys
    caches: ModelCaches = field(default_factory=ModelCaches)
    #: Ground-truth metadata for generated corpora (JSON-safe dict): the
    #: injected exception pairs and showcase statements the analysis
    #: experiments score against.  ``None`` for models built from real
    #: policy text; round-trips through snapshot save/load.
    provenance: dict | None = None

    @property
    def statistics(self):
        return self.graph.statistics()


@dataclass(slots=True)
class UpdateStats:
    """Cost accounting for one incremental update."""

    segments_total: int = 0
    segments_reused: int = 0
    segments_reextracted: int = 0
    segments_removed: int = 0
    seconds: float = 0.0
    audited: bool = False  # parity audit ran (PipelineConfig.audit_updates)
    audit_findings: int = 0
    healed: bool = False  # drift found and auto-healed from the rebuild
    audit_report: object | None = None  # repro.store.audit.AuditReport

    @property
    def reuse_fraction(self) -> float:
        if self.segments_total == 0:
            return 1.0
        return self.segments_reused / self.segments_total


@dataclass(slots=True)
class QueryOutcome:
    """Full Phase 3 trace for one query."""

    question: str
    translations: dict[str, TranslationResult]
    subgraph: Subgraph
    encoded: EncodedQuery
    verification: VerificationResult
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    degradation: DegradationReport | None = None

    @property
    def verdict(self):
        return self.verification.verdict

    @property
    def failed(self) -> bool:
        """False: this query produced a verdict (see :class:`ErrorOutcome`)."""
        return False

    def summary(self) -> str:
        lines = [f"query: {self.question}"]
        changed = [t for t in self.translations.values() if t.changed]
        if changed:
            lines.append("translated terms:")
            lines.extend(
                f"  {t.original!r} -> {t.translated!r} (similarity {t.similarity:.3f})"
                for t in changed
            )
        lines.append(f"relevant subgraph: {self.subgraph.num_edges} edges")
        lines.append(self.verification.summary())
        if self.degradation is not None:
            lines.append(self.degradation.summary())
        return "\n".join(lines)

    def as_dict(self, *, include_metrics: bool = False) -> dict[str, object]:
        """JSON-serializable trace of the full Phase 3 run.

        Metrics (wall times, cache counters) are excluded by default so
        traces of equivalent runs compare byte-identical; pass
        ``include_metrics=True`` for the full accounting.
        """
        trace: dict[str, object] = {
            "question": self.question,
            "translations": {
                term: {
                    "translated": t.translated,
                    "similarity": round(t.similarity, 4),
                    "verified": t.verified,
                }
                for term, t in self.translations.items()
            },
            "subgraph_edges": self.subgraph.num_edges,
            "policy_formulas": self.encoded.num_policy_formulas,
            "verification": self.verification.as_dict(),
        }
        if self.degradation is not None:
            trace["degradation"] = self.degradation.as_dict()
        if include_metrics:
            trace["metrics"] = self.metrics.as_dict()
        return trace


@dataclass(slots=True)
class ErrorOutcome:
    """Structured failure record for one query in a fault-isolated batch.

    Takes a :class:`QueryOutcome`'s place in
    :class:`BatchOutcome.outcomes` when that query raised: the batch keeps
    its order and its other verdicts, and the failure is reduced to what a
    caller can act on — which question, which pipeline stage, which
    exception.
    """

    question: str
    stage: str
    error_type: str
    message: str
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)

    @property
    def verdict(self) -> Verdict:
        return Verdict.ERROR

    @property
    def failed(self) -> bool:
        return True

    def summary(self) -> str:
        return (
            f"query: {self.question}\n"
            f"ERROR in {self.stage} stage: {self.error_type}: {self.message}"
        )

    def as_dict(self, *, include_metrics: bool = False) -> dict[str, object]:
        trace: dict[str, object] = {
            "question": self.question,
            "error": {
                "stage": self.stage,
                "type": self.error_type,
                "message": self.message,
            },
        }
        if include_metrics:
            trace["metrics"] = self.metrics.as_dict()
        return trace


@dataclass(slots=True)
class BatchOutcome:
    """The outcomes of one :meth:`PolicyPipeline.query_batch` run.

    ``outcomes`` preserves the order of the input questions; ``metrics``
    is the sum of every query's :class:`PipelineMetrics`.
    """

    outcomes: list[QueryOutcome | ErrorOutcome]
    metrics: PipelineMetrics
    seconds: float
    max_workers: int

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def verdicts(self):
        return [o.verdict for o in self.outcomes]

    @property
    def errors(self) -> list[ErrorOutcome]:
        """The fault-isolated failures, in input order."""
        return [o for o in self.outcomes if isinstance(o, ErrorOutcome)]

    @property
    def succeeded(self) -> list[QueryOutcome]:
        """The queries that produced a verdict, in input order."""
        return [o for o in self.outcomes if isinstance(o, QueryOutcome)]

    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            name = outcome.verdict.value
            counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> str:
        counts = ", ".join(
            f"{n} {v}" for v, n in sorted(self.verdict_counts().items())
        )
        line = (
            f"{len(self.outcomes)} queries in {self.seconds:.2f}s "
            f"({self.max_workers} workers): {counts or 'no verdicts'}; "
            f"cache hit rate {self.metrics.hit_rate:.1%} "
            f"({self.metrics.cache_hits} hits / {self.metrics.cache_misses} misses)"
        )
        errors = self.errors
        if errors:
            line += f"; {len(errors)} isolated failures"
        return line

    def as_dict(self) -> dict[str, object]:
        return {
            "queries": len(self.outcomes),
            "errors": len(self.errors),
            "seconds": round(self.seconds, 6),
            "max_workers": self.max_workers,
            "verdicts": self.verdict_counts(),
            "metrics": self.metrics.as_dict(),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }


class PolicyPipeline:
    """The paper's system: LLM extraction -> graphs -> FOL -> SMT."""

    def __init__(
        self,
        llm: LLMClient | None = None,
        embedding_model: EmbeddingModel | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        # Explicit None check: CachedLLM reports its entry count via
        # __len__, so a freshly-constructed (empty) wrapper is falsy and
        # `llm or default` would silently discard it.
        self.llm = llm if llm is not None else CachedLLM(SimulatedLLM())
        self.runner = TaskRunner(self.llm)
        self.embedding_model = embedding_model or EmbeddingModel()
        self.config = config or PipelineConfig()
        # Pipeline-lifetime accounting for model-store and audit events
        # (per-query metrics ride on each QueryOutcome instead).
        self.metrics = PipelineMetrics(queries=0)
        # Bounded log of typed integrity findings surfaced by loads (the
        # newest 64; the serving daemon exposes them under /stats).
        self.integrity_log: list = []
        # Lazily-started worker supervisor for the process execution
        # backend; shared by every query/batch/job/fleet call on this
        # pipeline so worker processes stay warm across requests.
        self._supervisor = None
        self._supervisor_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Execution backend
    # ------------------------------------------------------------------

    def _execution_supervisor(self):
        """The shared process-pool supervisor (created on first use)."""
        from repro.procpool.supervisor import WorkerSupervisor

        with self._supervisor_lock:
            if self._supervisor is None or self._supervisor.closed:
                self._supervisor = WorkerSupervisor(self.config.procpool)
            return self._supervisor

    def execution_stats(self) -> dict[str, object] | None:
        """Pool gauges for ``/stats``; None when no worker pool exists."""
        with self._supervisor_lock:
            supervisor = self._supervisor
        return None if supervisor is None else supervisor.stats()

    def sync_resilience_metrics(self) -> dict[str, object]:
        """Fold the LLM wrapper stack's current state into ``self.metrics``.

        Walks the composed stack (cache, breaker, retry, provider,
        cassette, profile injector — whatever this pipeline was built
        with), aggregates the usage counters, and sets the provider/
        breaker fields on the lifetime metrics as absolutes (idempotent
        under repeated calls).  Returns the raw stack view for callers
        that surface it directly, like the daemon's ``/stats``.
        """
        from repro.providers.introspect import sync_resilience_metrics

        return sync_resilience_metrics(self.llm, self.metrics)

    def shutdown(self) -> None:
        """Reap the worker pool (no-op for the thread backend).

        Idempotent; the next process-backend query transparently starts a
        fresh pool.  The serving daemon calls this at the tail of a drain
        so no worker process ever outlives the server.
        """
        with self._supervisor_lock:
            supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.shutdown()

    # ------------------------------------------------------------------
    # Phases 1 + 2
    # ------------------------------------------------------------------

    def process(self, policy_text: str, *, company: str | None = None) -> PolicyModel:
        """Extract, organize, and index one policy version."""
        extraction = extract_policy(self.runner, policy_text, company=company)
        return self._build_model(extraction)

    def _build_model(self, extraction: ExtractionResult) -> PolicyModel:
        entities: list[str] = []
        data_types: list[str] = []
        seen: set[str] = set()
        provisional = PolicyGraph(extraction.company)
        for practice in extraction.practices:
            provisional.add_practice(practice)
        for node, attrs in provisional.graph.nodes(data=True):
            if node in seen:
                continue
            seen.add(node)
            if attrs.get("kind") == NODE_ENTITY:
                entities.append(node)
            elif attrs.get("kind") == NODE_DATA:
                data_types.append(node)

        similarity_model = (
            self.embedding_model if self.config.col_similarity_threshold > 0 else None
        )
        data_taxonomy = chain_of_layer(
            self.runner,
            data_types,
            "data",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )
        entity_taxonomy = chain_of_layer(
            self.runner,
            entities,
            "entity",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )

        graph = PolicyGraph(
            extraction.company,
            data_taxonomy=data_taxonomy,
            entity_taxonomy=entity_taxonomy,
        )
        graph.add_practices(extraction.practices)

        store = EmbeddingStore(self.embedding_model)
        vocabulary: set[str] = set()
        self._index_graph_embeddings(store, vocabulary, graph)

        return PolicyModel(
            company=extraction.company,
            extraction=extraction,
            data_taxonomy=data_taxonomy,
            entity_taxonomy=entity_taxonomy,
            graph=graph,
            store=store,
            node_vocabulary=vocabulary,
        )

    @staticmethod
    def _index_graph_embeddings(
        store: EmbeddingStore, vocabulary: set[str], graph: PolicyGraph
    ) -> None:
        """Index a graph's nodes and edge texts into the embedding store.

        Both fresh builds and in-place patches go through this helper, so
        the two paths produce identical store entries: node names enter the
        query vocabulary, and every materialized edge (including derived
        ``receive`` edges) contributes its canonical edge text.
        """
        for node in graph.graph.nodes:
            store.add(node)
            vocabulary.add(node)
        for edge in graph.edges():
            store.add(edge_text(edge.source, edge.action, edge.target))

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------

    def update(
        self,
        model: PolicyModel,
        new_policy_text: str,
        *,
        in_place: bool = False,
    ) -> tuple[PolicyModel, UpdateStats]:
        """Apply a new policy version, re-extracting only changed segments.

        With ``in_place=False`` (default) a fresh model is rebuilt from the
        (mostly cached) extraction.  With ``in_place=True`` the existing
        model is *patched*: edges of removed segments are dropped, practices
        of added segments are inserted, and only genuinely new vocabulary
        runs through Chain-of-Layer — the paper's "update only those
        branches" behaviour.  The passed-in model object is mutated and
        returned.
        """
        start = time.monotonic()
        old_segments = model.extraction.segments
        new_segments = segment_policy(new_policy_text)
        diff = diff_segments(old_segments, new_segments)

        cached = {
            seg.segment_id: model.extraction.practices_by_segment[seg.segment_id]
            for seg in diff.unchanged
            if seg.segment_id in model.extraction.practices_by_segment
        }
        extraction = extract_policy(
            self.runner,
            new_policy_text,
            company=model.company,
            cached=cached,
        )
        if in_place:
            new_model = self._patch_model(model, extraction, diff)
        else:
            new_model = self._build_model(extraction)
        # Invalidate Phase 3 memoization: the revision bump retires every
        # cache key derived from the old vocabulary/graph, and the clear
        # releases the stale entries eagerly.
        new_model.revision = model.revision + 1
        new_model.caches.clear()
        stats = UpdateStats(
            segments_total=len(new_segments),
            segments_reused=len(diff.unchanged),
            segments_reextracted=len(diff.added),
            segments_removed=len(diff.removed),
        )
        if in_place and self.config.audit_updates:
            self._audit_update(new_model, extraction, stats)
        stats.seconds = time.monotonic() - start
        return new_model, stats

    def _audit_update(self, model: PolicyModel, extraction, stats: UpdateStats) -> None:
        """Parity-check a patched model against a from-scratch rebuild.

        The rebuild reuses the (fully cached) extraction, so its cost is
        taxonomy induction plus re-indexing — no LLM re-extraction.  On a
        failed audit with ``PipelineConfig.auto_heal``, the rebuild
        *replaces* the patched state in place, so drift never reaches a
        query.
        """
        from repro.store.audit import audit_parity, heal_model

        rebuilt = self._build_model(extraction)
        rebuilt.revision = model.revision
        report = audit_parity(model, rebuilt)
        stats.audited = True
        stats.audit_report = report
        stats.audit_findings = len(report.findings)
        self.metrics.audits_run += 1
        if not report.passed:
            self.metrics.audit_failures += 1
            if self.config.auto_heal:
                heal_model(model, rebuilt)
                stats.healed = True
                self.metrics.audit_heals += 1

    def _patch_model(
        self, model: PolicyModel, extraction: ExtractionResult, diff
    ) -> PolicyModel:
        """Mutate ``model`` to reflect a new extraction incrementally."""
        graph = model.graph
        nodes_before = set(graph.graph.nodes)
        for segment in diff.removed:
            graph.remove_segment(segment.segment_id)

        added_ids = {seg.segment_id for seg in diff.added}
        new_practices = [
            p for p in extraction.practices if p.segment_id in added_ids
        ]
        candidate_graph = PolicyGraph(model.company)
        candidate_graph.add_practices(new_practices)
        graph.add_practices(new_practices)

        # Chain-of-Layer placement is context-dependent: a term's parent can
        # change when *other* vocabulary enters or leaves (e.g. "usage
        # information" reparents under a newly disclosed "usage data"), and
        # removed terms would otherwise linger in the hierarchy forever.  So
        # whenever the node set changed at all, both taxonomies are re-induced
        # over the merged vocabulary — the prompts run through the cached LLM,
        # so unchanged layers cost no completions — which keeps a patched
        # model's hierarchies identical (as edge sets) to a from-scratch
        # rebuild's.  Segment re-extraction, the expensive phase, stays
        # incremental.
        if set(graph.graph.nodes) != nodes_before:
            self._rebuild_taxonomies(model)
        # The candidate graph materialized the same edges (primary and
        # derived) the main graph just gained, so indexing it keeps the
        # store identical to what a fresh build would produce.
        self._index_graph_embeddings(model.store, model.node_vocabulary, candidate_graph)
        # Nodes orphaned by removed segments left the graph; drop them from
        # the query vocabulary too so a patched model translates terms
        # exactly like a rebuilt one (the store keeps their vectors, but
        # the vocabulary filter excludes them from matching).
        model.node_vocabulary.intersection_update(graph.graph.nodes)
        model.extraction = extraction
        return model

    def _rebuild_taxonomies(self, model: PolicyModel) -> None:
        """Re-induce both hierarchies over the model's current vocabulary.

        The graph holds references to the taxonomy objects (closure queries
        go through them), so both the model fields and the graph fields are
        re-pointed together.
        """
        entities = [
            n
            for n, attrs in model.graph.graph.nodes(data=True)
            if attrs.get("kind") == NODE_ENTITY
        ]
        data_types = [
            n
            for n, attrs in model.graph.graph.nodes(data=True)
            if attrs.get("kind") == NODE_DATA
        ]
        similarity_model = (
            self.embedding_model if self.config.col_similarity_threshold > 0 else None
        )
        model.data_taxonomy = chain_of_layer(
            self.runner,
            data_types,
            "data",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )
        model.entity_taxonomy = chain_of_layer(
            self.runner,
            entities,
            "entity",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )
        model.graph.data_taxonomy = model.data_taxonomy
        model.graph.entity_taxonomy = model.entity_taxonomy

    # ------------------------------------------------------------------
    # Phase 3
    # ------------------------------------------------------------------

    def query(
        self,
        model: PolicyModel,
        question: str,
        *,
        budget: SolverBudget | None = None,
        certify: bool | None = None,
        cancel: threading.Event | None = None,
    ) -> QueryOutcome:
        """Verify a data-practice question against the model.

        Accepts both declarative statements ("TikTak collects the email.")
        and questions ("Does TikTak collect my email?"), which are
        normalized before extraction.  Repeated work is shared through the
        model's memoization caches (disable with
        ``PipelineConfig.enable_query_caches=False``); the attached
        :class:`PipelineMetrics` records per-stage wall time, cache
        hits/misses, and solver work.

        ``budget`` overrides ``PipelineConfig.solver_budget`` for this one
        query.  When ``PipelineConfig.budget_ladder`` is set and the
        verification comes back UNKNOWN for budget reasons, the ladder
        escalates (and, failing that, decomposes) before answering; the
        attempt trail is attached as :attr:`QueryOutcome.degradation`.

        ``certify`` overrides ``PipelineConfig.certify`` for this one
        query: the solver's verdict is re-validated by the independent
        certification layer, and a failed certificate is demoted to
        UNKNOWN (soundness alarm) rather than surfaced — never escalated
        by the degradation ladder.

        ``cancel`` is an optional abort seam honoured by the *process*
        execution backend: when the event fires mid-solve the worker
        process is hard-killed and the query raises
        :class:`repro.errors.QueryCancelledError` (never cached).  The
        job watchdog passes its stall-cancellation event here, so a
        stalled solve actually frees its CPU instead of running to
        completion on an abandoned thread (the thread backend's
        documented limitation).
        """
        from repro.core.questions import is_question, normalize_question

        metrics = PipelineMetrics()
        caches = model.caches if self.config.enable_query_caches else None
        started = time.perf_counter()

        with _stage("parse"):
            normalized = question
            if is_question(question):
                normalized = normalize_question(question)
            resolved = self.runner.resolve_coreferences(normalized, model.company)
            candidates = self.runner.extract_parameters(resolved, model.company)
            if not candidates:
                raise QueryError(
                    f"could not extract a data practice from query: {question!r}"
                )
            params = candidates[0]
        metrics.parse_seconds = time.perf_counter() - started

        stage = time.perf_counter()
        terms = [params.data_type]
        if params.sender:
            terms.append(params.sender)
        if params.receiver:
            terms.append(params.receiver)
        with _stage("translate"):
            translations = translate_query_terms(
                self.runner,
                model.store,
                terms,
                vocabulary=model.node_vocabulary,
                k=self.config.top_k,
                min_similarity=self.config.min_similarity,
                cache=caches,
                revision=model.revision,
                metrics=metrics,
                strict=self.config.strict_translation,
            )
        metrics.translate_seconds = time.perf_counter() - stage

        def translated(term: str | None) -> str | None:
            if term is None:
                return None
            result = translations.get(term)
            return result.translated if result else term

        from repro.llm.tasks import ExtractedParameters

        translated_params = ExtractedParameters(
            sender=translated(params.sender) or params.sender,
            receiver=translated(params.receiver),
            subject=params.subject,
            data_type=translated(params.data_type) or params.data_type,
            action=params.action,
            condition=params.condition,
            permission=params.permission,
        )

        stage = time.perf_counter()
        with _stage("subgraph"):
            subgraph = self._relevant_subgraph(
                model, translated_params, caches, metrics
            )
        metrics.subgraph_seconds = time.perf_counter() - stage

        stage = time.perf_counter()
        with _stage("encode"):
            encoded = encode_query(
                subgraph,
                translated_params,
                include_hierarchy_axioms=self.config.include_hierarchy_axioms,
                simplify_formulas=self.config.simplify_formulas,
            )
        metrics.encode_seconds = time.perf_counter() - stage

        stage = time.perf_counter()
        effective_budget = (
            budget if budget is not None else self.config.solver_budget
        )
        effective_certify = (
            certify if certify is not None else self.config.certify
        )
        degradation: DegradationReport | None = None
        with _stage("verify"):
            verification = self._verify(
                encoded,
                caches,
                metrics,
                budget=effective_budget,
                certify=effective_certify,
                cancel=cancel,
            )
            ladder = self.config.budget_ladder
            if ladder is not None and is_budget_limited(verification):
                verification, degradation = execute_ladder(
                    subgraph,
                    translated_params,
                    verification,
                    ladder=ladder,
                    base_budget=effective_budget,
                    encoded=encoded,
                    include_hierarchy_axioms=self.config.include_hierarchy_axioms,
                    simplify_formulas=self.config.simplify_formulas,
                    via_smtlib=self.config.use_smtlib_roundtrip,
                    check_conditional=self.config.check_conditional,
                    verify=lambda enc, b: self._verify(
                        enc,
                        caches,
                        metrics,
                        budget=b,
                        certify=effective_certify,
                        cancel=cancel,
                    ),
                )
                metrics.degraded_queries += 1
                metrics.ladder_escalations += degradation.escalations
                metrics.ladder_decompositions += degradation.decompositions
                if degradation.rescued:
                    metrics.ladder_rescues += 1
        metrics.verify_seconds = time.perf_counter() - stage
        metrics.total_seconds = time.perf_counter() - started

        return QueryOutcome(
            question=question,
            translations=translations,
            subgraph=subgraph,
            encoded=encoded,
            verification=verification,
            metrics=metrics,
            degradation=degradation,
        )

    def _relevant_subgraph(
        self,
        model: PolicyModel,
        params,
        caches: ModelCaches | None,
        metrics: PipelineMetrics,
    ) -> Subgraph:
        """Extract (or reuse) the subgraph for translated query params."""
        data_terms = [params.data_type]
        entity_terms = [t for t in (params.sender, params.receiver) if t]
        key = subgraph_cache_key(
            data_terms,
            entity_terms,
            use_hierarchy=self.config.include_hierarchy_axioms,
            max_edges=self.config.max_subgraph_edges,
            revision=model.revision,
        )
        def run_extract() -> Subgraph:
            return extract_subgraph(
                model.graph,
                data_terms,
                entity_terms,
                use_hierarchy=self.config.include_hierarchy_axioms,
                max_edges=self.config.max_subgraph_edges,
            )

        if caches is not None:
            subgraph, computed = caches.get_or_compute(
                "subgraph", key, run_extract
            )
            if computed:
                metrics.subgraph_misses += 1
            else:
                metrics.subgraph_hits += 1
            return subgraph
        subgraph = run_extract()
        metrics.subgraph_misses += 1
        return subgraph

    def _verify(
        self,
        encoded: EncodedQuery,
        caches: ModelCaches | None,
        metrics: PipelineMetrics,
        *,
        budget: SolverBudget | None = None,
        certify: bool = False,
        cancel: threading.Event | None = None,
    ) -> VerificationResult:
        """Verify (or reuse) an encoded query.

        Each miss builds fresh :class:`~repro.solver.interface.Solver`
        instances inside :func:`verify_encoded`, so concurrent workers
        never share solver state; hits skip the solver entirely and are
        not counted in the solver totals.  Concurrent workers on the same
        uncached problem share one single-flight solve (the followers
        count as hits — they ran no solver).  The cache key embeds
        ``budget`` and ``certify``, so results obtained under escalated
        (or starved) budgets never answer for the default one, and an
        uncertified verdict never answers for a certified request.

        With ``PipelineConfig.execution_backend == "process"`` the main
        check-sat script is shipped to the worker pool instead of solved
        in-process (the ancillary consistency/conditional probes stay
        in-process — they are query-sized).  A cancellation raises
        :class:`~repro.errors.QueryCancelledError` out of the
        single-flight leader, which clears the flight without caching, so
        an aborted solve can never poison the verification cache.
        """
        if budget is None:
            budget = self.config.solver_budget
        script_text = compile_script_text(encoded)
        key = verification_cache_key(
            script_text,
            budget,
            via_smtlib=self.config.use_smtlib_roundtrip,
            check_conditional=self.config.check_conditional,
            certify=certify,
        )
        run_script = (
            self._pooled_run_script(metrics, cancel)
            if self.config.execution_backend == "process"
            and self.config.use_smtlib_roundtrip
            else None
        )

        def run_solver() -> VerificationResult:
            return verify_encoded(
                encoded,
                budget=budget,
                via_smtlib=self.config.use_smtlib_roundtrip,
                check_conditional=self.config.check_conditional,
                script_text=script_text,
                certification=self.config.certification if certify else None,
                quarantine_dir=self.config.certification_quarantine_dir
                if certify
                else None,
                run_script=run_script,
            )

        if caches is not None:
            verification, computed = caches.get_or_compute(
                "verification", key, run_solver
            )
            if not computed:
                metrics.verification_hits += 1
                return verification
        else:
            verification = run_solver()
        metrics.verification_misses += 1
        stats = verification.solver_result.statistics
        metrics.solver_conflicts += stats.conflicts
        metrics.solver_propagations += stats.propagations
        if certify:
            metrics.certifications_run += 1
            if is_certification_failure(verification):
                metrics.certification_failures += 1
                if verification.quarantined_to is not None:
                    metrics.certification_quarantines += 1
        return verification

    def _pooled_run_script(self, metrics: PipelineMetrics, cancel):
        """Build the ``verify_encoded`` seam for the process backend.

        The returned callable ships an SMT-LIB script to the supervised
        worker pool (with the portfolio rescue armed when configured) and
        maps the :class:`~repro.procpool.unit.UnitOutcome` back onto the
        thread backend's contract: solver results on success, the
        original exception type re-raised on solver errors, a synthesized
        UNKNOWN on an unrecoverable worker crash, and
        :class:`~repro.errors.QueryCancelledError` on cancellation.
        """
        import repro.errors as errors_module
        from repro.errors import ExecutionError, QueryCancelledError
        from repro.procpool.unit import WorkUnit
        from repro.solver.result import SatResult, SolverResult, SolverStatistics

        def run_script(text, budget, certification):
            supervisor = self._execution_supervisor()
            unit = WorkUnit(
                script_text=text, budget=budget, certification=certification
            )
            outcome = supervisor.run_rescued(
                unit, portfolio=self.config.portfolio, cancel=cancel
            )
            metrics.procpool_units += outcome.attempts
            metrics.procpool_kills += outcome.kills
            metrics.procpool_crashes += len(outcome.crashes)
            if outcome.retried:
                metrics.procpool_retries += 1
            if outcome.rescued_seed is not None:
                metrics.procpool_rescues += 1
            if outcome.cancelled:
                raise QueryCancelledError(
                    "query cancelled: solver worker killed mid-solve"
                )
            if outcome.error is not None:
                type_name, message = outcome.error
                exc_class = getattr(errors_module, type_name, None)
                if isinstance(exc_class, type) and issubclass(exc_class, Exception):
                    raise exc_class(message)
                raise ExecutionError(f"{type_name}: {message}")
            if outcome.results is not None:
                return outcome.results
            # Crash that exhausted its retry: degrade to UNKNOWN so the
            # query keeps its slot in the batch instead of erroring out.
            crash = outcome.crash
            detail = crash.summary() if crash is not None else "worker lost"
            return [
                SolverResult(
                    status=SatResult.UNKNOWN,
                    reason=f"worker crashed: {detail}",
                    statistics=SolverStatistics(),
                )
            ]

        return run_script

    def query_batch(
        self,
        model: PolicyModel,
        questions: Iterable[str],
        *,
        max_workers: int | None = None,
        isolate_faults: bool = True,
    ) -> BatchOutcome:
        """Verify many questions against one model concurrently.

        Questions fan out over a :class:`ThreadPoolExecutor`; outcomes come
        back in input order and are verdict-identical to a sequential
        :meth:`query` loop — workers only share the model's memoization
        caches and the thread-safe substrates, and every stage is
        deterministic.  ``max_workers`` defaults to
        ``min(DEFAULT_BATCH_WORKERS, len(questions))``.

        With ``isolate_faults=True`` (the default) a query that raises is
        converted into an :class:`ErrorOutcome` in its input slot — naming
        the failing stage and exception — instead of aborting the executor
        and discarding the verdicts of every other query.  Pass
        ``isolate_faults=False`` to re-raise the first failure instead.
        Isolation stops at :class:`Exception`: ``KeyboardInterrupt``,
        ``SystemExit``, and other :class:`BaseException`\\ s raised inside a
        worker propagate as batch cancellation (pending queries are
        cancelled, the executor shut down) — an operator interrupt must
        never be laundered into a per-query ERROR verdict.  For batches
        that should *survive* interruption, use
        :meth:`run_job`/:class:`repro.jobs.JobRunner`, which drains
        gracefully and checkpoints instead.

        Certification is *sampled* in batches: with
        ``PipelineConfig.certify`` on, every
        ``PipelineConfig.batch_certify_stride``-th question (by input
        index, so the sample is deterministic and thread-order-free) runs
        the certifier; set the stride to 1 to certify every question.
        """
        questions = list(questions)
        if max_workers is None:
            max_workers = min(DEFAULT_BATCH_WORKERS, max(1, len(questions)))
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        stride = max(1, self.config.batch_certify_stride)

        def run(index: int, q: str) -> QueryOutcome | ErrorOutcome:
            certify = self.config.certify and index % stride == 0
            if not isolate_faults:
                return self.query(model, q, certify=certify)
            try:
                return self.query(model, q, certify=certify)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                error_metrics = PipelineMetrics()
                error_metrics.query_errors = 1
                return ErrorOutcome(
                    question=q,
                    stage=getattr(exc, "pipeline_stage", None) or "query",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    metrics=error_metrics,
                )

        started = time.perf_counter()
        if max_workers == 1 or len(questions) <= 1:
            outcomes = [run(i, q) for i, q in enumerate(questions)]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                try:
                    outcomes = list(pool.map(run, range(len(questions)), questions))
                except BaseException:
                    # A worker re-raised a non-Exception (KeyboardInterrupt,
                    # SystemExit, a simulated kill): cancel everything not
                    # yet started so the interrupt is honoured promptly
                    # instead of burning through the remaining fan-out.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        return BatchOutcome(
            outcomes=outcomes,
            metrics=merged([o.metrics for o in outcomes]),
            seconds=time.perf_counter() - started,
            max_workers=max_workers,
        )

    # ------------------------------------------------------------------
    # Supervised jobs
    # ------------------------------------------------------------------

    def run_job(
        self,
        model: PolicyModel,
        questions: Iterable[str],
        *,
        job_config=None,
    ):
        """Run a question suite under supervision (see :mod:`repro.jobs`).

        The supervised twin of :meth:`query_batch`: heartbeat watchdog,
        bounded admission, graceful drain on SIGINT/SIGTERM, and — with a
        checkpoint directory configured — crash-resumable journaling.
        ``job_config`` overrides :attr:`PipelineConfig.jobs` for this run.
        Returns a :class:`repro.jobs.JobResult`.
        """
        from repro.jobs.runner import JobRunner

        return JobRunner(self, model, job_config).run(questions)

    def resume_job(self, model: PolicyModel, *, job_config=None):
        """Resume a checkpointed job: restore committed results, run the rest.

        Requires a checkpoint directory (on ``job_config`` or
        :attr:`PipelineConfig.jobs`) whose journal header names the
        original question suite.  Restored outcomes are byte-identical
        (trace for trace) to what the interrupted run committed; only
        pending queries execute.
        """
        from repro.jobs.runner import JobRunner

        return JobRunner(self, model, job_config).resume()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_artifacts(self, model: PolicyModel, directory: str | Path) -> None:
        """Write inspectable JSON artifacts for every pipeline stage.

        Every file goes through the atomic writer (temp file + fsync +
        rename), so re-dumping over an existing artifact directory can
        never leave a truncated JSON file behind, no matter where a crash
        lands.  For durable, hash-verified, *loadable* persistence use
        :meth:`save_model` instead — this dump is for human inspection.
        """
        from repro.store.atomic import atomic_write_json, atomic_write_text

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            directory / "segments.json",
            [
                {
                    "segment_id": s.segment_id,
                    "index": s.index,
                    "section": s.section,
                    "text": s.text,
                }
                for s in model.extraction.segments
            ],
        )
        atomic_write_json(
            directory / "practices.json",
            [p.as_dict() for p in model.extraction.practices],
        )
        atomic_write_json(
            directory / "data_taxonomy.json", model.data_taxonomy.as_edges()
        )
        atomic_write_json(
            directory / "entity_taxonomy.json", model.entity_taxonomy.as_edges()
        )
        atomic_write_json(
            directory / "graph_stats.json", model.statistics.as_dict()
        )
        atomic_write_text(
            directory / "graph.dot", model.graph.to_dot(max_edges=500)
        )
        model.store.save(directory / "embeddings.npz")

    def save_model(
        self, model: PolicyModel, directory: str | Path, *, journaled: bool = False
    ):
        """Commit ``model`` to the crash-safe snapshot store at ``directory``.

        With ``journaled=True`` the commit is bracketed by the write-ahead
        journal (use after :meth:`update` so a crash recovers to exactly
        the pre- or post-update snapshot).  Returns the
        :class:`~repro.store.snapshot.SnapshotInfo` of the new snapshot.
        """
        from repro.store.snapshot import SnapshotStore

        store = SnapshotStore(directory)
        info = store.commit_update(model) if journaled else store.commit(model)
        self.metrics.snapshot_saves += 1
        return info

    def load_model(
        self,
        directory: str | Path,
        *,
        policy_text: str | None = None,
        company: str | None = None,
    ) -> PolicyModel:
        """Warm-start a model from the snapshot store at ``directory``.

        Every artifact is hash-verified against the snapshot manifest;
        corrupt snapshots are quarantined and the newest valid one wins.
        When no valid snapshot survives (or none was ever committed) and
        ``policy_text`` is given, the model is rebuilt from scratch and
        re-committed so the next start is warm again; without
        ``policy_text`` the :class:`~repro.errors.SnapshotError` escapes.
        """
        from repro.errors import SnapshotError
        from repro.store.snapshot import SnapshotStore

        store = SnapshotStore(directory)
        try:
            result = store.load()
        except SnapshotError as exc:
            # Every quarantine report on the error is a typed integrity
            # finding; rebuild-from-text repairs them, otherwise they
            # escape as unrepairable (this is the single counting point —
            # registry loads funnel through here too).
            damage = len(getattr(exc, "reports", ()))
            self.metrics.integrity_findings += damage
            if policy_text is None:
                self.metrics.integrity_unrepairable += damage
                raise
            model = self.process(policy_text, company=company)
            store.commit(model)
            self.metrics.snapshot_rebuilds += 1
            self.metrics.snapshot_saves += 1
            self.metrics.integrity_repairs += damage
            self._note_integrity(exc_reports=getattr(exc, "reports", ()), store_root=directory)
            return model
        self.metrics.snapshot_loads += 1
        self.metrics.snapshot_quarantines += len(result.quarantined)
        if result.quarantined:
            # Served after quarantining damage and falling back to the
            # newest valid snapshot: findings surfaced AND healed.
            self.metrics.integrity_findings += len(result.quarantined)
            self.metrics.integrity_repairs += len(result.quarantined)
            self._note_integrity(
                exc_reports=result.quarantined, store_root=directory
            )
        if result.journal_recovery is not None:
            self.metrics.snapshot_journal_recoveries += 1
        return result.model

    def _note_integrity(self, *, exc_reports, store_root) -> None:
        """Keep a bounded log of typed findings for ``/stats`` surfacing."""
        from repro.integrity.findings import findings_from_quarantine

        self.integrity_log.extend(
            findings_from_quarantine(exc_reports, str(store_root))
        )
        del self.integrity_log[:-64]
