"""Algorithm 1 end to end: the :class:`PolicyPipeline` orchestrator.

``process`` runs Phases 1 and 2 over a policy and returns a
:class:`PolicyModel`; ``query`` runs Phase 3 against a model; ``update``
applies a new policy version incrementally, re-extracting only segments
whose content hash changed.  Artifacts (segments, practices, graphs,
embeddings) can be persisted as JSON for inspection, mirroring the paper's
per-stage caching.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.encode import EncodedQuery, encode_query
from repro.core.extraction import ExtractionResult, extract_policy
from repro.core.graphs import NODE_DATA, NODE_ENTITY, PolicyGraph
from repro.core.hierarchy import Taxonomy, chain_of_layer
from repro.core.segmenter import diff_segments, segment_policy
from repro.core.subgraph import Subgraph, extract_subgraph
from repro.core.translation import TranslationResult, translate_query_terms
from repro.core.verify import VerificationResult, verify_encoded
from repro.embeddings.model import EmbeddingModel
from repro.embeddings.search import edge_text
from repro.embeddings.store import EmbeddingStore
from repro.errors import QueryError
from repro.llm.client import CachedLLM, LLMClient
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import TaskRunner
from repro.solver.interface import SolverBudget


@dataclass(slots=True)
class PipelineConfig:
    """Tunables for the three phases; defaults follow the paper."""

    top_k: int = 10
    min_similarity: float = 0.3
    col_similarity_threshold: float = 0.0  # 0 disables the SciBERT-style filter
    include_hierarchy_axioms: bool = True
    simplify_formulas: bool = True
    use_smtlib_roundtrip: bool = True
    check_conditional: bool = True
    solver_budget: SolverBudget = field(default_factory=SolverBudget)
    max_subgraph_edges: int | None = None


@dataclass(slots=True)
class PolicyModel:
    """Everything Phases 1 and 2 know about one policy version."""

    company: str
    extraction: ExtractionResult
    data_taxonomy: Taxonomy
    entity_taxonomy: Taxonomy
    graph: PolicyGraph
    store: EmbeddingStore
    node_vocabulary: set[str] = field(default_factory=set)

    @property
    def statistics(self):
        return self.graph.statistics()


@dataclass(slots=True)
class UpdateStats:
    """Cost accounting for one incremental update."""

    segments_total: int = 0
    segments_reused: int = 0
    segments_reextracted: int = 0
    segments_removed: int = 0
    seconds: float = 0.0

    @property
    def reuse_fraction(self) -> float:
        if self.segments_total == 0:
            return 1.0
        return self.segments_reused / self.segments_total


@dataclass(slots=True)
class QueryOutcome:
    """Full Phase 3 trace for one query."""

    question: str
    translations: dict[str, TranslationResult]
    subgraph: Subgraph
    encoded: EncodedQuery
    verification: VerificationResult

    @property
    def verdict(self):
        return self.verification.verdict

    def summary(self) -> str:
        lines = [f"query: {self.question}"]
        changed = [t for t in self.translations.values() if t.changed]
        if changed:
            lines.append("translated terms:")
            lines.extend(
                f"  {t.original!r} -> {t.translated!r} (similarity {t.similarity:.3f})"
                for t in changed
            )
        lines.append(f"relevant subgraph: {self.subgraph.num_edges} edges")
        lines.append(self.verification.summary())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable trace of the full Phase 3 run."""
        return {
            "question": self.question,
            "translations": {
                term: {
                    "translated": t.translated,
                    "similarity": round(t.similarity, 4),
                    "verified": t.verified,
                }
                for term, t in self.translations.items()
            },
            "subgraph_edges": self.subgraph.num_edges,
            "policy_formulas": self.encoded.num_policy_formulas,
            "verification": self.verification.as_dict(),
        }


class PolicyPipeline:
    """The paper's system: LLM extraction -> graphs -> FOL -> SMT."""

    def __init__(
        self,
        llm: LLMClient | None = None,
        embedding_model: EmbeddingModel | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        self.llm = llm or CachedLLM(SimulatedLLM())
        self.runner = TaskRunner(self.llm)
        self.embedding_model = embedding_model or EmbeddingModel()
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------
    # Phases 1 + 2
    # ------------------------------------------------------------------

    def process(self, policy_text: str, *, company: str | None = None) -> PolicyModel:
        """Extract, organize, and index one policy version."""
        extraction = extract_policy(self.runner, policy_text, company=company)
        return self._build_model(extraction)

    def _build_model(self, extraction: ExtractionResult) -> PolicyModel:
        entities: list[str] = []
        data_types: list[str] = []
        seen: set[str] = set()
        provisional = PolicyGraph(extraction.company)
        for practice in extraction.practices:
            provisional.add_practice(practice)
        for node, attrs in provisional.graph.nodes(data=True):
            if node in seen:
                continue
            seen.add(node)
            if attrs.get("kind") == NODE_ENTITY:
                entities.append(node)
            elif attrs.get("kind") == NODE_DATA:
                data_types.append(node)

        similarity_model = (
            self.embedding_model if self.config.col_similarity_threshold > 0 else None
        )
        data_taxonomy = chain_of_layer(
            self.runner,
            data_types,
            "data",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )
        entity_taxonomy = chain_of_layer(
            self.runner,
            entities,
            "entity",
            similarity_model=similarity_model,
            similarity_threshold=self.config.col_similarity_threshold,
        )

        graph = PolicyGraph(
            extraction.company,
            data_taxonomy=data_taxonomy,
            entity_taxonomy=entity_taxonomy,
        )
        graph.add_practices(extraction.practices)

        store = EmbeddingStore(self.embedding_model)
        vocabulary: set[str] = set()
        for node in graph.graph.nodes:
            store.add(node)
            vocabulary.add(node)
        for edge in graph.edges():
            store.add(edge_text(edge.source, edge.action, edge.target))

        return PolicyModel(
            company=extraction.company,
            extraction=extraction,
            data_taxonomy=data_taxonomy,
            entity_taxonomy=entity_taxonomy,
            graph=graph,
            store=store,
            node_vocabulary=vocabulary,
        )

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------

    def update(
        self,
        model: PolicyModel,
        new_policy_text: str,
        *,
        in_place: bool = False,
    ) -> tuple[PolicyModel, UpdateStats]:
        """Apply a new policy version, re-extracting only changed segments.

        With ``in_place=False`` (default) a fresh model is rebuilt from the
        (mostly cached) extraction.  With ``in_place=True`` the existing
        model is *patched*: edges of removed segments are dropped, practices
        of added segments are inserted, and only genuinely new vocabulary
        runs through Chain-of-Layer — the paper's "update only those
        branches" behaviour.  The passed-in model object is mutated and
        returned.
        """
        start = time.monotonic()
        old_segments = model.extraction.segments
        new_segments = segment_policy(new_policy_text)
        diff = diff_segments(old_segments, new_segments)

        cached = {
            seg.segment_id: model.extraction.practices_by_segment[seg.segment_id]
            for seg in diff.unchanged
            if seg.segment_id in model.extraction.practices_by_segment
        }
        extraction = extract_policy(
            self.runner,
            new_policy_text,
            company=model.company,
            cached=cached,
        )
        if in_place:
            new_model = self._patch_model(model, extraction, diff)
        else:
            new_model = self._build_model(extraction)
        stats = UpdateStats(
            segments_total=len(new_segments),
            segments_reused=len(diff.unchanged),
            segments_reextracted=len(diff.added),
            segments_removed=len(diff.removed),
            seconds=time.monotonic() - start,
        )
        return new_model, stats

    def _patch_model(
        self, model: PolicyModel, extraction: ExtractionResult, diff
    ) -> PolicyModel:
        """Mutate ``model`` to reflect a new extraction incrementally."""
        from repro.core.hierarchy import extend_taxonomy

        graph = model.graph
        for segment in diff.removed:
            graph.remove_segment(segment.segment_id)

        added_ids = {seg.segment_id for seg in diff.added}
        new_practices = [
            p for p in extraction.practices if p.segment_id in added_ids
        ]
        # Place genuinely new vocabulary before adding edges so closure
        # queries see consistent hierarchies.
        candidate_graph = PolicyGraph(model.company)
        candidate_graph.add_practices(new_practices)
        new_data, new_entities = [], []
        for node, attrs in candidate_graph.graph.nodes(data=True):
            if node in graph.graph:
                continue
            if attrs.get("kind") == NODE_DATA:
                new_data.append(node)
            elif attrs.get("kind") == NODE_ENTITY:
                new_entities.append(node)
        if new_data:
            extend_taxonomy(self.runner, model.data_taxonomy, new_data)
        if new_entities:
            extend_taxonomy(self.runner, model.entity_taxonomy, new_entities)

        graph.add_practices(new_practices)
        for node in candidate_graph.graph.nodes:
            model.store.add(node)
            model.node_vocabulary.add(node)
        for edge in new_practices:
            model.store.add(
                edge_text(edge.sender.lower(), edge.action.lower(), edge.data_type.lower())
            )
        model.extraction = extraction
        return model

    # ------------------------------------------------------------------
    # Phase 3
    # ------------------------------------------------------------------

    def query(self, model: PolicyModel, question: str) -> QueryOutcome:
        """Verify a data-practice question against the model.

        Accepts both declarative statements ("TikTak collects the email.")
        and questions ("Does TikTak collect my email?"), which are
        normalized before extraction.
        """
        from repro.core.questions import is_question, normalize_question

        normalized = question
        if is_question(question):
            normalized = normalize_question(question)
        resolved = self.runner.resolve_coreferences(normalized, model.company)
        candidates = self.runner.extract_parameters(resolved, model.company)
        if not candidates:
            raise QueryError(
                f"could not extract a data practice from query: {question!r}"
            )
        params = candidates[0]

        terms = [params.data_type]
        if params.sender:
            terms.append(params.sender)
        if params.receiver:
            terms.append(params.receiver)
        translations = translate_query_terms(
            self.runner,
            model.store,
            terms,
            vocabulary=model.node_vocabulary,
            k=self.config.top_k,
            min_similarity=self.config.min_similarity,
        )

        def translated(term: str | None) -> str | None:
            if term is None:
                return None
            result = translations.get(term)
            return result.translated if result else term

        from repro.llm.tasks import ExtractedParameters

        translated_params = ExtractedParameters(
            sender=translated(params.sender) or params.sender,
            receiver=translated(params.receiver),
            subject=params.subject,
            data_type=translated(params.data_type) or params.data_type,
            action=params.action,
            condition=params.condition,
            permission=params.permission,
        )

        subgraph = extract_subgraph(
            model.graph,
            [translated_params.data_type],
            [t for t in (translated_params.sender, translated_params.receiver) if t],
            use_hierarchy=self.config.include_hierarchy_axioms,
            max_edges=self.config.max_subgraph_edges,
        )
        encoded = encode_query(
            subgraph,
            translated_params,
            include_hierarchy_axioms=self.config.include_hierarchy_axioms,
            simplify_formulas=self.config.simplify_formulas,
        )
        verification = verify_encoded(
            encoded,
            budget=self.config.solver_budget,
            via_smtlib=self.config.use_smtlib_roundtrip,
            check_conditional=self.config.check_conditional,
        )
        return QueryOutcome(
            question=question,
            translations=translations,
            subgraph=subgraph,
            encoded=encoded,
            verification=verification,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_artifacts(self, model: PolicyModel, directory: str | Path) -> None:
        """Write inspectable JSON artifacts for every pipeline stage."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "segments.json").write_text(
            json.dumps(
                [
                    {
                        "segment_id": s.segment_id,
                        "index": s.index,
                        "section": s.section,
                        "text": s.text,
                    }
                    for s in model.extraction.segments
                ],
                indent=1,
            ),
            "utf-8",
        )
        (directory / "practices.json").write_text(
            json.dumps(
                [p.as_dict() for p in model.extraction.practices], indent=1
            ),
            "utf-8",
        )
        (directory / "data_taxonomy.json").write_text(
            json.dumps(model.data_taxonomy.as_edges(), indent=1), "utf-8"
        )
        (directory / "entity_taxonomy.json").write_text(
            json.dumps(model.entity_taxonomy.as_edges(), indent=1), "utf-8"
        )
        (directory / "graph_stats.json").write_text(
            json.dumps(model.statistics.as_dict(), indent=1), "utf-8"
        )
        (directory / "graph.dot").write_text(
            model.graph.to_dot(max_edges=500), "utf-8"
        )
        model.store.save(directory / "embeddings.npz")
