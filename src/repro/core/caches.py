"""Per-model memoization caches shared across Phase 3 queries.

A :class:`ModelCaches` instance rides on every
:class:`~repro.core.pipeline.PolicyModel` and lets
:meth:`~repro.core.pipeline.PolicyPipeline.query_batch` share repeated work
between queries:

* **translation** — term -> :class:`~repro.core.translation.TranslationResult`,
  keyed by the lowered term, the search parameters, and the model's
  vocabulary revision;
* **subgraph** — canonical translated-term key (see
  :func:`repro.core.subgraph.subgraph_cache_key`) -> extracted
  :class:`~repro.core.subgraph.Subgraph`;
* **verification** — stable hash of the compiled SMT-LIB script plus the
  solver budget -> :class:`~repro.core.verify.VerificationResult`.

Every key embeds the model's ``revision`` counter, so entries surviving an
incremental update can never be served stale; :meth:`clear` additionally
drops them eagerly.  Lookups and stores are lock-guarded; computations run
outside the lock.  :meth:`get_or_compute` is additionally *single-flight*
per key: concurrent callers of an uncached key elect one leader to compute
while the rest park on an event and reuse its result — a batch of repeated
queries pays for each distinct problem exactly once, no matter how the
thread pool interleaves them.  If the leader's computation raises, waiters
are woken to elect a new leader rather than inheriting the failure.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

_MISS = object()


class ModelCaches:
    """Thread-safe translation/subgraph/verification caches for one model."""

    KINDS = ("translation", "subgraph", "verification")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: dict[str, dict[Any, Any]] = {kind: {} for kind in self.KINDS}
        self._inflight: dict[str, dict[Any, threading.Event]] = {
            kind: {} for kind in self.KINDS
        }
        self.hits: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: dict[str, int] = {kind: 0 for kind in self.KINDS}

    def get(self, kind: str, key: Any) -> Any:
        """Cached value for ``key``, or the :data:`MISS` sentinel."""
        with self._lock:
            value = self._tables[kind].get(key, _MISS)
            if value is _MISS:
                self.misses[kind] += 1
            else:
                self.hits[kind] += 1
            return value

    def put(self, kind: str, key: Any, value: Any) -> None:
        with self._lock:
            self._tables[kind][key] = value

    def get_or_compute(
        self, kind: str, key: Any, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """``(value, computed)`` — single-flight per key.

        Concurrent callers of an uncached key elect one leader; the rest
        wait on its event and return the leader's cached result.
        ``computed`` is True only for the caller that actually ran
        ``compute``, so callers can attribute hit/miss (and any
        per-computation side accounting) correctly.  A leader whose
        ``compute`` raises clears the flight before re-raising; parked
        waiters wake, re-check the table, and elect a new leader.
        """
        while True:
            with self._lock:
                value = self._tables[kind].get(key, _MISS)
                if value is not _MISS:
                    self.hits[kind] += 1
                    return value, False
                flight = self._inflight[kind].get(key)
                if flight is None:
                    flight = self._inflight[kind][key] = threading.Event()
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.wait()
                continue  # value present now, or the leader failed: re-check
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._inflight[kind].pop(key, None)
                flight.set()
                raise
            with self._lock:
                self._tables[kind][key] = value
                self._inflight[kind].pop(key, None)
                self.misses[kind] += 1
            flight.set()
            return value, True

    def clear(self) -> None:
        """Drop every entry (called on incremental model updates)."""
        with self._lock:
            for table in self._tables.values():
                table.clear()

    def size(self, kind: str) -> int:
        with self._lock:
            return len(self._tables[kind])

    def __len__(self) -> int:
        with self._lock:
            return sum(len(table) for table in self._tables.values())


MISS = _MISS
