"""Per-model memoization caches shared across Phase 3 queries.

A :class:`ModelCaches` instance rides on every
:class:`~repro.core.pipeline.PolicyModel` and lets
:meth:`~repro.core.pipeline.PolicyPipeline.query_batch` share repeated work
between queries:

* **translation** — term -> :class:`~repro.core.translation.TranslationResult`,
  keyed by the lowered term, the search parameters, and the model's
  vocabulary revision;
* **subgraph** — canonical translated-term key (see
  :func:`repro.core.subgraph.subgraph_cache_key`) -> extracted
  :class:`~repro.core.subgraph.Subgraph`;
* **verification** — stable hash of the compiled SMT-LIB script plus the
  solver budget -> :class:`~repro.core.verify.VerificationResult`.

Every key embeds the model's ``revision`` counter, so entries surviving an
incremental update can never be served stale; :meth:`clear` additionally
drops them eagerly.  Lookups and stores are lock-guarded; values are
computed outside the lock, so a race costs at most one redundant (but
deterministic, hence identical) computation.
"""

from __future__ import annotations

import threading
from typing import Any

_MISS = object()


class ModelCaches:
    """Thread-safe translation/subgraph/verification caches for one model."""

    KINDS = ("translation", "subgraph", "verification")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: dict[str, dict[Any, Any]] = {kind: {} for kind in self.KINDS}
        self.hits: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: dict[str, int] = {kind: 0 for kind in self.KINDS}

    def get(self, kind: str, key: Any) -> Any:
        """Cached value for ``key``, or the :data:`MISS` sentinel."""
        with self._lock:
            value = self._tables[kind].get(key, _MISS)
            if value is _MISS:
                self.misses[kind] += 1
            else:
                self.hits[kind] += 1
            return value

    def put(self, kind: str, key: Any, value: Any) -> None:
        with self._lock:
            self._tables[kind][key] = value

    def clear(self) -> None:
        """Drop every entry (called on incremental model updates)."""
        with self._lock:
            for table in self._tables.values():
                table.clear()

    def size(self, kind: str) -> int:
        with self._lock:
            return len(self._tables[kind])

    def __len__(self) -> int:
        with self._lock:
            return sum(len(table) for table in self._tables.values())


MISS = _MISS
