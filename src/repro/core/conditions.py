"""Structured condition expressions.

The extraction prompt preserves logical operators in conditions ("with
your consent OR when required by law").  This module parses that structure
so the FOL encoding can respect it: a disjunctive condition becomes an OR
of uninterpreted predicates instead of one opaque blob, which matters for
``check-sat-assuming`` exploration — satisfying *either* disjunct unlocks
the practice.

Grammar (lowest precedence first)::

    expr  ::= conj (" or " conj)*
    conj  ::= atom (" and " atom)*
    atom  ::= any condition text

Each atom maps to a canonical vague-term predicate when one is recognized,
or to a ``cond_<mangled text>`` predicate otherwise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.fol.terms import mangle
from repro.nlp.lexicon import canonical_vague_predicate

_OR_SPLIT_RE = re.compile(r"\s+(?:or|OR)\s+")
_AND_SPLIT_RE = re.compile(r"\s+(?:and|AND)\s+")
_MAX_NAME_LEN = 60


@dataclass(frozen=True, slots=True)
class ConditionAtom:
    """One indivisible condition with its predicate name."""

    text: str
    predicate: str


@dataclass(frozen=True, slots=True)
class ConditionAnd:
    """Conjunction of condition expressions."""

    operands: tuple["ConditionExpr", ...]


@dataclass(frozen=True, slots=True)
class ConditionOr:
    """Disjunction of condition expressions."""

    operands: tuple["ConditionExpr", ...]


ConditionExpr = ConditionAtom | ConditionAnd | ConditionOr


def _atom(text: str) -> ConditionAtom:
    text = text.strip(" ,;")
    canonical = canonical_vague_predicate(text)
    if canonical is None:
        canonical = "cond_" + mangle(text)[:_MAX_NAME_LEN]
    return ConditionAtom(text=text, predicate=canonical)


def parse_condition(text: str) -> ConditionExpr:
    """Parse a condition string into its AND/OR structure.

    A text without top-level connectives parses to a single atom.
    """
    disjuncts = [part for part in _OR_SPLIT_RE.split(text) if part.strip()]

    def conj(part: str) -> ConditionExpr:
        conjuncts = [p for p in _AND_SPLIT_RE.split(part) if p.strip()]
        if len(conjuncts) == 1:
            return _atom(conjuncts[0])
        return ConditionAnd(tuple(_atom(c) for c in conjuncts))

    if len(disjuncts) == 1:
        return conj(disjuncts[0])
    return ConditionOr(tuple(conj(d) for d in disjuncts))


def atoms_of(expr: ConditionExpr) -> list[ConditionAtom]:
    """All atoms of a condition expression, in left-to-right order."""
    if isinstance(expr, ConditionAtom):
        return [expr]
    out: list[ConditionAtom] = []
    for op in expr.operands:
        out.extend(atoms_of(op))
    return out


def describe(expr: ConditionExpr) -> str:
    """Readable rendering of the parsed structure."""
    if isinstance(expr, ConditionAtom):
        return expr.predicate
    joiner = " AND " if isinstance(expr, ConditionAnd) else " OR "
    return "(" + joiner.join(describe(op) for op in expr.operands) + ")"
