"""Phase 3 step 4: SMT-backed verification of an encoded query.

The encoded formulas are compiled to SMT-LIB v2 text, parsed back, and
solved — the same textual round trip the paper's CVC5 integration takes.
``unsat`` means the query necessarily follows from the policy (VALID);
``sat`` means it does not (INVALID); budget exhaustion yields UNKNOWN, the
paper's timeout case.

When a verdict involves uninterpreted predicates, the result reports which
vague terms it depends on, and — when the plain verdict is INVALID — an
additional ``check-sat-assuming`` pass determines whether the query would
follow if every vague condition were resolved in the policy's favour
(CONDITIONALLY VALID).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.encode import EncodedQuery
from repro.errors import QueryError
from repro.fol.builder import negate
from repro.fol.formula import PredicateSymbol
from repro.smtlib.printer import compile_validity_script
from repro.smtlib.parser import execute_script
from repro.solver.interface import CertificationConfig, Solver, SolverBudget
from repro.solver.result import (
    CERTIFICATION_FAILED,
    CertificateReport,
    SatResult,
    SolverResult,
)


class Verdict(enum.Enum):
    """Paper terminology for verification outcomes."""

    VALID = "VALID"
    INVALID = "INVALID"
    UNKNOWN = "UNKNOWN"
    # Not a solver outcome: the verdict of a fault-isolated batch query
    # whose pipeline raised (see repro.core.pipeline.ErrorOutcome).
    ERROR = "ERROR"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class VerificationResult:
    """Verdict plus everything needed to audit it."""

    verdict: Verdict
    solver_result: SolverResult
    smtlib_text: str
    depends_on: dict[str, str] = field(default_factory=dict)  # predicate -> source text
    conditionally_valid: bool | None = None
    policy_consistent: bool | None = None
    counterexample: dict[str, bool] = field(default_factory=dict)
    quarantined_to: str | None = None  # directory of the quarantined formula

    @property
    def has_ambiguity(self) -> bool:
        return bool(self.depends_on)

    @property
    def certificate(self) -> CertificateReport | None:
        """The solver's certification report, when certification ran."""
        return self.solver_result.certificate

    def summary(self) -> str:
        lines = [f"verdict: {self.verdict}"]
        if self.policy_consistent is False:
            lines.append(
                "the relevant policy statements contradict each other; "
                "a human must decide which rule prevails"
            )
        if self.verdict is Verdict.UNKNOWN and self.solver_result.reason:
            lines.append(f"reason: {self.solver_result.reason}")
        if self.certificate is not None and self.certificate.failed:
            lines.append(
                "SOUNDNESS ALARM: the solver's answer failed independent "
                "certification; do not trust this verdict"
            )
            if self.quarantined_to:
                lines.append(f"offending formula quarantined to {self.quarantined_to}")
        if self.conditionally_valid:
            lines.append(
                "conditionally valid: holds if every vague condition is satisfied"
            )
        if self.depends_on:
            lines.append("depends on human interpretation of:")
            lines.extend(
                f"  - {name}: \"{source}\"" for name, source in sorted(self.depends_on.items())
            )
        if self.verdict is Verdict.INVALID and self.counterexample:
            falsified = [k for k, v in sorted(self.counterexample.items()) if not v]
            if falsified:
                lines.append(
                    "counterexample resolves these to false: " + ", ".join(falsified)
                )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view (drops the solver internals)."""
        out: dict[str, object] = {
            "verdict": self.verdict.value,
            "reason": self.solver_result.reason,
            "depends_on": dict(self.depends_on),
            "conditionally_valid": self.conditionally_valid,
            "policy_consistent": self.policy_consistent,
            "counterexample": dict(self.counterexample),
        }
        # A *passing* certificate is cost accounting, not verdict content, so
        # it stays out of the trace — a certified run and an uncertified run
        # of the same query compare byte-identical.  A *failed* certificate
        # is the soundness alarm and must survive serialization.
        if self.certificate is not None and self.certificate.failed:
            out["certificate"] = self.certificate.as_dict()
        if self.quarantined_to is not None:
            out["quarantined_to"] = self.quarantined_to
        return out


def _status_to_verdict(status: SatResult) -> Verdict:
    if status is SatResult.UNSAT:
        return Verdict.VALID
    if status is SatResult.SAT:
        return Verdict.INVALID
    return Verdict.UNKNOWN


def is_certification_failure(verification: VerificationResult) -> bool:
    """Did this verification trip the soundness alarm?

    A certification-failure UNKNOWN is terminal: the solver produced an
    answer that its independent checker could not reproduce, so no amount
    of budget escalation can be trusted to do better (the degradation
    ladder short-circuits on it).
    """
    if verification.verdict is not Verdict.UNKNOWN:
        return False
    reason = verification.solver_result.reason or ""
    return reason.startswith(CERTIFICATION_FAILED)


def quarantine_failure(
    verification: VerificationResult, directory: str | Path
) -> Path:
    """Persist the offending formula and certificate for offline triage.

    Writes ``cert-<digest>/formula.smt2`` (the exact SMT-LIB text whose
    verdict failed certification) and ``report.json`` (the structured
    :class:`CertificateReport` plus the verdict context) through the
    atomic writers, so a crash mid-quarantine never leaves a truncated
    artifact.  Returns the quarantine directory.
    """
    from repro.store.atomic import atomic_write_json, atomic_write_text

    digest = hashlib.sha256(verification.smtlib_text.encode("utf-8")).hexdigest()
    target = Path(directory) / f"cert-{digest[:12]}"
    target.mkdir(parents=True, exist_ok=True)
    atomic_write_text(target / "formula.smt2", verification.smtlib_text)
    report = verification.certificate
    atomic_write_json(
        target / "report.json",
        {
            "reason": verification.solver_result.reason,
            "script_sha256": digest,
            "certificate": report.as_dict() if report is not None else None,
        },
    )
    verification.quarantined_to = str(target)
    return target


def compile_script_text(encoded: EncodedQuery) -> str:
    """The SMT-LIB text of the validity check for ``encoded``.

    This is the stable serialization the verification cache hashes: two
    queries that compile to the same script are the same solver problem.
    """
    if encoded.query_formula is None:
        raise QueryError("encoded query has no query formula")
    return compile_validity_script(
        encoded.policy_formulas, encoded.query_formula
    ).to_text()


def verification_cache_key(
    script_text: str,
    budget: SolverBudget | None,
    *,
    via_smtlib: bool = True,
    check_conditional: bool = True,
    certify: bool = False,
) -> tuple:
    """Memoization key for :func:`verify_encoded`.

    Content-hashing the script makes the key revision-independent: the
    formulas fully determine the verdict, so a subgraph untouched by a
    policy update could even hit across revisions (the pipeline clears
    per-model caches on update regardless).
    """
    digest = hashlib.sha256(script_text.encode("utf-8")).hexdigest()
    return (digest, budget or SolverBudget(), via_smtlib, check_conditional, certify)


def verify_encoded(
    encoded: EncodedQuery,
    *,
    budget: SolverBudget | None = None,
    via_smtlib: bool = True,
    check_conditional: bool = True,
    script_text: str | None = None,
    certification: CertificationConfig | None = None,
    quarantine_dir: str | Path | None = None,
    run_script=None,
) -> VerificationResult:
    """Check whether the encoded policy entails the encoded query.

    ``script_text`` lets callers that already compiled the SMT-LIB script
    (e.g. to build a cache key) pass it in instead of compiling twice.

    ``certification`` arms the solver's trust-but-verify layer on the main
    validity check: the verdict is independently re-validated, and a failed
    certificate surfaces as UNKNOWN with the soundness alarm set (never as
    a possibly-wrong VALID / INVALID).  With ``quarantine_dir``, the
    offending formula and certificate are additionally persisted via
    :func:`quarantine_failure`.

    ``run_script`` is the execution-backend seam: a callable
    ``(script_text, budget, certification) -> list[SolverResult]`` that
    replaces the in-process :func:`execute_script` for the main validity
    check (the budget-dominating solve).  The process-pool backend plugs
    in here — the SMT-LIB text is the wire format, so everything this
    function does with the results (verdict mapping, counterexample
    extraction, quarantine digests over ``smtlib_text``) is identical
    across backends.  The auxiliary consistency and conditional-validity
    probes stay in-process; they are query-sized by construction.
    Requires ``via_smtlib`` (the seam *is* the textual round trip).
    """
    if encoded.query_formula is None:
        raise QueryError("encoded query has no query formula")
    text = script_text if script_text is not None else compile_script_text(encoded)

    if via_smtlib:
        if run_script is not None:
            results = run_script(text, budget, certification)
        else:
            results = execute_script(
                text, budget=budget, certification=certification
            )
        solver_result = results[-1]
    else:
        solver = Solver(budget=budget, certification=certification)
        for formula in encoded.policy_formulas:
            solver.assert_formula(formula)
        solver.assert_formula(negate(encoded.query_formula))
        solver_result = solver.check_sat()

    verdict = _status_to_verdict(solver_result.status)
    certification_failed = (
        solver_result.certificate is not None and solver_result.certificate.failed
    )
    policy_consistent: bool | None = None
    if verdict is Verdict.VALID and not certification_failed:
        # A VALID verdict is vacuous when the policy statements themselves
        # are contradictory (the apparent-contradiction pattern); detect and
        # demote it so a human reviews the conflicting statements instead.
        consistency = Solver(budget=budget)
        for formula in encoded.policy_formulas:
            consistency.assert_formula(formula)
        check = consistency.check_sat()
        if check.status is SatResult.UNSAT:
            policy_consistent = False
            verdict = Verdict.UNKNOWN
            solver_result.reason = (
                "policy statements in the relevant subgraph are mutually "
                "contradictory; human review required"
            )
        elif check.status is SatResult.SAT:
            policy_consistent = True

    result = VerificationResult(
        verdict=verdict,
        solver_result=solver_result,
        smtlib_text=text,
        depends_on=dict(encoded.uninterpreted),
        policy_consistent=policy_consistent,
    )

    if verdict is Verdict.INVALID:
        result.counterexample = _counterexample(encoded, solver_result)
    if (
        check_conditional
        and verdict is Verdict.INVALID
        and encoded.uninterpreted
    ):
        result.conditionally_valid = _conditionally_valid(encoded, budget)
    if certification_failed and quarantine_dir is not None:
        quarantine_failure(result, quarantine_dir)
    return result


def _counterexample(
    encoded: EncodedQuery, solver_result: SolverResult
) -> dict[str, bool]:
    """The SAT witness restricted to the atoms the verdict hinges on.

    An INVALID verdict means the solver found a world consistent with the
    policy where the query fails.  Reporting the query's own atoms plus the
    uninterpreted predicates in that world explains *why* the query does
    not follow — typically "the vague condition was resolved to false".
    """
    if not solver_result.model:
        return {}
    from repro.fol.visitor import atoms
    from repro.solver.cnf import atom_key

    interesting: set[str] = set(encoded.uninterpreted)
    if encoded.query_formula is not None:
        for atom in atoms(encoded.query_formula):
            try:
                interesting.add(atom_key(atom))
            except Exception:  # noqa: BLE001 - quantified query atoms have no key
                continue
    return {
        key: value
        for key, value in solver_result.model.items()
        if key in interesting
    }


def _conditionally_valid(
    encoded: EncodedQuery, budget: SolverBudget | None
) -> bool | None:
    """Would the query follow if all vague conditions were resolved true?

    Uses ``check-sat-assuming`` over the uninterpreted predicates — the
    incremental exploration of query conditions the paper points to as
    future work.
    """
    solver = Solver(budget=budget)
    for formula in encoded.policy_formulas:
        solver.assert_formula(formula)
    solver.assert_formula(negate(encoded.query_formula))
    assumptions = [
        PredicateSymbol(name, (), uninterpreted=True, source_text=source)()
        for name, source in sorted(encoded.uninterpreted.items())
    ]
    outcome = solver.check_sat_assuming(assumptions)
    if outcome.status is SatResult.UNSAT:
        return True
    if outcome.status is SatResult.SAT:
        return False
    return None
