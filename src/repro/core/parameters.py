"""Annotated semantic parameters: the unit of Phase 1 output.

Wraps the raw seven-field extraction with segment provenance, OPP-115
category tags, and the vague terms found in the condition — the explicit
ambiguity markers that later become uninterpreted predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.tasks import ExtractedParameters
from repro.nlp.lexicon import find_vague_terms


@dataclass(frozen=True, slots=True)
class AnnotatedPractice:
    """One extracted data practice with provenance and ambiguity markers."""

    params: ExtractedParameters
    segment_id: str
    segment_index: int
    section: str = ""
    opp115_categories: tuple[str, ...] = ()
    vague_terms: tuple[tuple[str, str], ...] = ()  # (phrase, predicate name)

    @property
    def sender(self) -> str:
        return self.params.sender

    @property
    def receiver(self) -> str | None:
        return self.params.receiver

    @property
    def data_type(self) -> str:
        return self.params.data_type

    @property
    def action(self) -> str:
        return self.params.action

    @property
    def condition(self) -> str | None:
        return self.params.condition

    @property
    def permission(self) -> bool:
        return self.params.permission

    @property
    def is_conditional(self) -> bool:
        return self.params.condition is not None

    @property
    def has_vague_condition(self) -> bool:
        return bool(self.vague_terms)

    def as_dict(self) -> dict[str, object]:
        return {
            **self.params.as_dict(),
            "segment_id": self.segment_id,
            "segment_index": self.segment_index,
            "section": self.section,
            "opp115_categories": list(self.opp115_categories),
            "vague_terms": [list(v) for v in self.vague_terms],
        }


def annotate(
    params: ExtractedParameters,
    *,
    segment_id: str,
    segment_index: int,
    section: str = "",
    opp115_categories: tuple[str, ...] = (),
) -> AnnotatedPractice:
    """Attach provenance and vague-term annotations to raw parameters."""
    vague: tuple[tuple[str, str], ...] = ()
    if params.condition:
        vague = tuple(find_vague_terms(params.condition))
    return AnnotatedPractice(
        params=params,
        segment_id=segment_id,
        segment_index=segment_index,
        section=section,
        opp115_categories=opp115_categories,
        vague_terms=vague,
    )
