"""Phase 2: the entity–data practice graph.

Nodes are entities (companies, users, partners) and data types; each
extracted practice contributes a directed edge ``[sender] -action->
[object]`` carrying its condition (a boolean predicate), permission flag,
vague-term annotations, and segment provenance.  Sharing practices with a
named receiver additionally contribute a derived ``[receiver] -receive->
[data]`` edge, which is how multi-actor flows become individually
queryable.

Segment provenance makes incremental maintenance possible:
:meth:`PolicyGraph.remove_segment` drops exactly the edges a changed
segment produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.hierarchy import Taxonomy
from repro.core.parameters import AnnotatedPractice
from repro.nlp.chunker import is_data_phrase

NODE_ENTITY = "entity"
NODE_DATA = "data"
NODE_OTHER = "other"


@dataclass(frozen=True, slots=True)
class PracticeEdge:
    """One materialized graph edge with full provenance."""

    source: str
    action: str
    target: str
    receiver: str | None
    condition: str | None
    permission: bool
    segment_id: str
    vague_terms: tuple[tuple[str, str], ...] = ()
    derived: bool = False  # True for receiver-side "receive" edges

    @property
    def is_conditional(self) -> bool:
        return self.condition is not None

    def describe(self) -> str:
        arrow = f"[{self.source}] -{self.action}-> [{self.target}]"
        if not self.permission:
            arrow = "NOT " + arrow
        if self.condition:
            arrow += f"  when: {self.condition}"
        return arrow


@dataclass(slots=True)
class GraphStatistics:
    """Table 1 metrics for one policy graph."""

    total_nodes: int
    total_edges: int
    entities: int
    data_types: int
    other_nodes: int
    conditional_edges: int
    negated_edges: int
    vague_edges: int

    def as_dict(self) -> dict[str, int]:
        return {
            "total_nodes": self.total_nodes,
            "total_edges": self.total_edges,
            "entities": self.entities,
            "data_types": self.data_types,
            "other_nodes": self.other_nodes,
            "conditional_edges": self.conditional_edges,
            "negated_edges": self.negated_edges,
            "vague_edges": self.vague_edges,
        }


def classify_node(name: str, company: str) -> str:
    """Node kind: entity, data, or other."""
    lowered = name.lower()
    if lowered in {"user", company.lower()}:
        return NODE_ENTITY
    from repro.nlp.lexicon import ENTITY_TERMS

    if lowered in ENTITY_TERMS:
        return NODE_ENTITY
    if is_data_phrase(lowered):
        return NODE_DATA
    return NODE_OTHER


class PolicyGraph:
    """Entity–data practice graph plus the two taxonomies (G_ED, G_DD)."""

    def __init__(
        self,
        company: str,
        data_taxonomy: Taxonomy | None = None,
        entity_taxonomy: Taxonomy | None = None,
    ) -> None:
        self.company = company
        self.graph = nx.MultiDiGraph()
        self.data_taxonomy = data_taxonomy
        self.entity_taxonomy = entity_taxonomy
        self._edges_by_segment: dict[str, list[tuple[str, str, int]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _ensure_node(self, name: str) -> None:
        if name not in self.graph:
            self.graph.add_node(name, kind=classify_node(name, self.company))

    def _add_edge(self, edge: PracticeEdge) -> None:
        self._ensure_node(edge.source)
        self._ensure_node(edge.target)
        key = self.graph.add_edge(edge.source, edge.target, edge=edge)
        self._edges_by_segment.setdefault(edge.segment_id, []).append(
            (edge.source, edge.target, key)
        )

    def add_practice(self, practice: AnnotatedPractice) -> None:
        """Materialize one extracted practice as one or two edges."""
        primary = PracticeEdge(
            source=practice.sender.lower(),
            action=practice.action.lower(),
            target=practice.data_type.lower(),
            receiver=practice.receiver.lower() if practice.receiver else None,
            condition=practice.condition,
            permission=practice.permission,
            segment_id=practice.segment_id,
            vague_terms=practice.vague_terms,
        )
        self._add_edge(primary)
        if practice.receiver and practice.permission:
            derived = PracticeEdge(
                source=practice.receiver.lower(),
                action="receive",
                target=practice.data_type.lower(),
                receiver=None,
                condition=practice.condition,
                permission=True,
                segment_id=practice.segment_id,
                vague_terms=practice.vague_terms,
                derived=True,
            )
            self._add_edge(derived)

    def add_practices(self, practices: list[AnnotatedPractice]) -> None:
        for practice in practices:
            self.add_practice(practice)

    def restore_edge(self, edge: PracticeEdge) -> None:
        """Re-materialize a previously serialized edge verbatim.

        The snapshot-load path replays edges (primary *and* derived) in
        their original insertion order instead of re-deriving them from
        practices, so a round-tripped graph is structurally identical to
        the one that was saved — including segment provenance, which keeps
        :meth:`remove_segment` working after a warm start.
        """
        self._add_edge(edge)

    def remove_segment(self, segment_id: str) -> int:
        """Drop every edge contributed by ``segment_id``; prune orphan nodes.

        Returns the number of edges removed.
        """
        entries = self._edges_by_segment.pop(segment_id, [])
        removed = 0
        for source, target, key in entries:
            if self.graph.has_edge(source, target, key):
                self.graph.remove_edge(source, target, key)
                removed += 1
        for node in [n for n in self.graph.nodes if self.graph.degree(n) == 0]:
            self.graph.remove_node(node)
        return removed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def edges(self) -> list[PracticeEdge]:
        """All practice edges in insertion order."""
        return [data["edge"] for _u, _v, data in self.graph.edges(data=True)]

    def nodes_of_kind(self, kind: str) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == kind]

    def edges_touching(self, node: str) -> list[PracticeEdge]:
        """Edges incident to ``node`` in either direction."""
        if node not in self.graph:
            return []
        out = [d["edge"] for _u, _v, d in self.graph.out_edges(node, data=True)]
        inc = [d["edge"] for _u, _v, d in self.graph.in_edges(node, data=True)]
        return out + inc

    def data_closure(self, term: str) -> set[str]:
        """``term`` plus its hierarchy ancestors and descendants in G_DD."""
        closure = {term}
        if self.data_taxonomy and term in self.data_taxonomy:
            closure.update(self.data_taxonomy.ancestors(term))
            closure.update(self.data_taxonomy.descendants(term))
            closure.discard(self.data_taxonomy.root)
        return closure

    def to_dot(self, *, max_edges: int | None = None) -> str:
        """Render the practice graph in Graphviz DOT format.

        Node shape encodes kind (entity=box, data=ellipse, other=plaintext);
        denied edges are red and dashed; conditional edges are dotted with
        the condition as the label.
        """
        shapes = {NODE_ENTITY: "box", NODE_DATA: "ellipse", NODE_OTHER: "plaintext"}
        lines = ["digraph policy {", "  rankdir=LR;"]
        for node, attrs in self.graph.nodes(data=True):
            shape = shapes.get(attrs.get("kind", NODE_OTHER), "plaintext")
            lines.append(f'  "{node}" [shape={shape}];')
        for i, edge in enumerate(self.edges()):
            if max_edges is not None and i >= max_edges:
                lines.append(f"  // ... {self.graph.number_of_edges() - max_edges} more edges")
                break
            style = []
            label = edge.action
            if not edge.permission:
                style.append("color=red")
                style.append("style=dashed")
                label = "NOT " + label
            elif edge.is_conditional:
                style.append("style=dotted")
                label += f"\\n[{(edge.condition or '')[:40]}]"
            attr_text = f'label="{label}"'
            if style:
                attr_text += ", " + ", ".join(style)
            lines.append(f'  "{edge.source}" -> "{edge.target}" [{attr_text}];')
        lines.append("}")
        return "\n".join(lines)

    def statistics(self) -> GraphStatistics:
        """Compute the Table 1 metrics for this graph."""
        kinds = nx.get_node_attributes(self.graph, "kind")
        entities = sum(1 for k in kinds.values() if k == NODE_ENTITY)
        data_types = sum(1 for k in kinds.values() if k == NODE_DATA)
        others = sum(1 for k in kinds.values() if k == NODE_OTHER)
        edges = self.edges()
        return GraphStatistics(
            total_nodes=self.graph.number_of_nodes(),
            total_edges=self.graph.number_of_edges(),
            entities=entities,
            data_types=data_types,
            other_nodes=others,
            conditional_edges=sum(1 for e in edges if e.is_conditional),
            negated_edges=sum(1 for e in edges if not e.permission),
            vague_edges=sum(1 for e in edges if e.vague_terms),
        )
