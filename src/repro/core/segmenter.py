"""Policy segmentation with content-hash identifiers.

Each policy statement becomes a :class:`Segment` whose id is a hash of its
normalized content.  Hash-stable ids are what make incremental updates
possible: when a policy changes, unchanged statements keep their ids, so
their cached extractions (and the graph edges derived from them) are
reused, and only modified statements are re-extracted.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.nlp.tokenizer import sentences

_HEADING_RE = re.compile(r"^\d+\.\s+[A-Z][A-Za-z ,/&-]+$")
_MIN_SEGMENT_WORDS = 3


@dataclass(frozen=True, slots=True)
class Segment:
    """One policy statement with a stable content-derived identifier."""

    segment_id: str
    text: str
    index: int
    section: str = ""

    @staticmethod
    def compute_id(text: str) -> str:
        """Content hash of normalized text (whitespace-insensitive)."""
        normalized = " ".join(text.split()).lower()
        return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


def segment_policy(text: str) -> list[Segment]:
    """Split a policy into statement segments.

    Sentences under a numbered heading inherit that heading as their
    section label.  Headings themselves and fragments shorter than
    three words are dropped — they carry no data practices.
    """
    segments: list[Segment] = []
    current_section = ""
    index = 0
    seen_ids: set[str] = set()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if _HEADING_RE.match(stripped):
            current_section = stripped.split(". ", 1)[-1]
            continue
        for sentence in sentences(stripped):
            if len(sentence.split()) < _MIN_SEGMENT_WORDS:
                continue
            seg_id = Segment.compute_id(sentence)
            if seg_id in seen_ids:
                continue  # exact duplicates collapse to one segment
            seen_ids.add(seg_id)
            segments.append(
                Segment(
                    segment_id=seg_id,
                    text=sentence,
                    index=index,
                    section=current_section,
                )
            )
            index += 1
    return segments


@dataclass(frozen=True, slots=True)
class SegmentDiff:
    """Difference between two segmentations, keyed by content id."""

    added: tuple[Segment, ...]
    removed: tuple[Segment, ...]
    unchanged: tuple[Segment, ...]

    @property
    def reuse_fraction(self) -> float:
        total = len(self.added) + len(self.unchanged)
        if total == 0:
            return 1.0
        return len(self.unchanged) / total


def diff_segments(old: list[Segment], new: list[Segment]) -> SegmentDiff:
    """Diff two segment lists by content id.

    "Unchanged" segments are those present in both versions — their cached
    extractions remain valid even if they moved within the document.
    """
    old_ids = {s.segment_id for s in old}
    new_ids = {s.segment_id for s in new}
    return SegmentDiff(
        added=tuple(s for s in new if s.segment_id not in old_ids),
        removed=tuple(s for s in old if s.segment_id not in new_ids),
        unchanged=tuple(s for s in new if s.segment_id in old_ids),
    )
