"""Resilience layer: retries, circuit breaking, and verdict degradation.

Production-scale policy analysis only survives contact with real traffic
when failures are contained and partial results are first-class.  This
package provides the three containment mechanisms the pipeline threads
through its layers:

* the **LLM boundary** — :class:`RetryPolicy` / :class:`RetryingLLM`
  (bounded deterministic backoff) and :class:`CircuitBreaker` (fail fast
  once the backend is down), both implementing
  :class:`~repro.llm.client.LLMClient` and composable with
  :class:`~repro.llm.client.CachedLLM`;
* the **solver boundary** — :class:`BudgetLadder` /
  :func:`execute_ladder`, which escalates budget-limited UNKNOWN verdicts
  and falls back to per-data-branch decomposition, reporting every step in
  a :class:`DegradationReport`;
* the **batch boundary** — fault isolation lives in
  :meth:`repro.core.pipeline.PolicyPipeline.query_batch`, which converts
  per-query failures into structured
  :class:`~repro.core.pipeline.ErrorOutcome` records instead of aborting
  the executor.

Everything here contains failures *inside* one process run; the layer
above it — :mod:`repro.jobs` — supervises the run itself (hung-worker
watchdog, admission control, crash-resumable checkpoints).  The division
of labour: an exception is this package's problem, a hang or a kill is a
job-supervision problem.  Note the isolation contract both layers share:
only :class:`Exception` is ever converted to an
:class:`~repro.core.pipeline.ErrorOutcome`; ``BaseException``
(``KeyboardInterrupt``, ``SystemExit``) always propagates as job
cancellation.

Deterministic fault injectors for chaos testing live in
:mod:`repro.resilience.faults` (imported explicitly, not re-exported here —
they are test infrastructure).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.degradation import (
    BudgetLadder,
    DegradationReport,
    DegradationStep,
    execute_ladder,
    is_budget_limited,
)
from repro.resilience.retry import RetryingLLM, RetryPolicy

__all__ = [
    "BudgetLadder",
    "CircuitBreaker",
    "DegradationReport",
    "DegradationStep",
    "RetryPolicy",
    "RetryingLLM",
    "execute_ladder",
    "is_budget_limited",
]
