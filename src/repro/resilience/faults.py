"""Deterministic fault injection for chaos testing.

The chaos suite needs failures that are *chosen deterministically* yet
land mid-batch under any worker count.  Both injectors here key their
faults on content, never on call order:

* :class:`FaultInjectingLLM` decides per *prompt* (seeded hash of the
  prompt fingerprint, or explicit substring designation), so the set of
  affected completions — and therefore the set of affected queries — is
  identical whether a batch runs on 1 thread or 8.
* :class:`BudgetStarvingPipeline` decides per *question*, verifying
  designated queries under a starved :class:`SolverBudget` that converts
  their verification into UNKNOWN-with-a-budget-reason.

Test infrastructure, not production resilience: nothing in the pipeline
imports this module.
"""

from __future__ import annotations

import hashlib
import threading

from repro.core.pipeline import PolicyModel, PolicyPipeline, QueryOutcome
from repro.errors import InjectedFaultError
from repro.llm.client import LLMClient, prompt_fingerprint
from repro.solver.interface import SolverBudget

#: A budget no verification survives: grounding even a single quantified
#: axiom overdraws the instance budget, and the conflict/propagation caps
#: are zero.  Starvation is deliberately expressed through the
#: *deterministic* resource budgets rather than the wall-clock timeout
#: (which is now enforced as early as grounding and would make the
#: escalation trail depend on scheduler timing).
STARVED_BUDGET = SolverBudget(
    max_conflicts=0,
    max_propagations=0,
    max_ground_instances=1,
    timeout_seconds=None,
)


class FaultInjectingLLM:
    """Wrapper that fails designated prompts deterministically.

    A prompt is designated when its fingerprint hashes under ``rate``
    (seeded, so schedules are reproducible) or when it contains any of
    ``fail_substrings``.  Designated prompts raise
    :class:`~repro.errors.InjectedFaultError` for their first
    ``failures_per_prompt`` attempts — ``None`` means they fail forever,
    which keeps repeated questions deterministic across worker counts;
    a finite count exercises retry-rescue paths.
    """

    def __init__(
        self,
        inner: LLMClient,
        *,
        rate: float = 0.0,
        seed: int = 0,
        fail_substrings: tuple[str, ...] = (),
        failures_per_prompt: int | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self._inner = inner
        self.rate = rate
        self.seed = seed
        self.fail_substrings = tuple(fail_substrings)
        self.failures_per_prompt = failures_per_prompt
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self.calls = 0
        self.faults_injected = 0

    def is_designated(self, prompt: str) -> bool:
        """Would this prompt (ever) be faulted?  Pure content decision."""
        if any(marker in prompt for marker in self.fail_substrings):
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{prompt_fingerprint(prompt)}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.rate

    def complete(self, prompt: str) -> str:
        with self._lock:
            self.calls += 1
            if self.is_designated(prompt):
                key = prompt_fingerprint(prompt)
                attempt = self._attempts.get(key, 0)
                if (
                    self.failures_per_prompt is None
                    or attempt < self.failures_per_prompt
                ):
                    self._attempts[key] = attempt + 1
                    self.faults_injected += 1
                    raise InjectedFaultError(
                        f"injected LLM fault (prompt {key[:12]}, attempt {attempt + 1})"
                    )
        return self._inner.complete(prompt)


class BudgetStarvingPipeline(PolicyPipeline):
    """Pipeline shim that starves the solver for designated questions.

    Designation is by exact question text (case-insensitive), so which
    queries starve is a property of the batch content, not of scheduling.
    Everything else — extraction, translation, caching — behaves exactly
    like the parent pipeline; only the verification budget changes, which
    the verification cache key already accounts for.
    """

    def __init__(
        self,
        *args,
        starve_questions: tuple[str, ...] = (),
        starved_budget: SolverBudget = STARVED_BUDGET,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._starve = {q.strip().lower() for q in starve_questions}
        self._starved_budget = starved_budget

    def is_starved(self, question: str) -> bool:
        return question.strip().lower() in self._starve

    def query(
        self,
        model: PolicyModel,
        question: str,
        *,
        budget: SolverBudget | None = None,
        certify: bool | None = None,
    ) -> QueryOutcome:
        if self.is_starved(question):
            budget = self._starved_budget
        return super().query(model, question, budget=budget, certify=certify)
