"""Bounded, deterministic retries for the LLM boundary.

A production deployment talks to a remote completion API, where transient
failures (timeouts, rate limits, connection resets) are routine.
:class:`RetryingLLM` wraps any :class:`~repro.llm.client.LLMClient` and
replays failed completions on a bounded exponential-backoff schedule.

The schedule is jitter-free on purpose: the tests that hammer the batch
engine with injected faults must observe the exact same retry sequence on
every run, and the paper's pipeline is otherwise fully deterministic.  A
deployment that needs jitter can pass a custom ``sleep`` that adds it at
the boundary without perturbing the policy itself.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import CassetteError, CircuitOpenError, LLMError, PermanentHTTPError
from repro.llm.client import LLMClient, UsageStats


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """When and how often a failed completion is retried.

    ``max_retries`` counts *additional* attempts after the first, so a
    policy with ``max_retries=2`` issues at most three calls.  Delays grow
    geometrically from ``base_delay_seconds`` by ``backoff_multiplier`` and
    are capped at ``max_delay_seconds`` — no jitter, see the module
    docstring.
    """

    max_retries: int = 2
    base_delay_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_delay_seconds: float = 2.0
    retryable: tuple[type[BaseException], ...] = (
        LLMError,
        ConnectionError,
        TimeoutError,
    )

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def delay_schedule(self) -> tuple[float, ...]:
        """The deterministic sleep before each retry, in order."""
        delays = []
        delay = self.base_delay_seconds
        for _ in range(self.max_retries):
            delays.append(min(delay, self.max_delay_seconds))
            delay *= self.backoff_multiplier
        return tuple(delays)

    def is_retryable(self, exc: BaseException) -> bool:
        """Should ``exc`` be retried?

        Open-circuit rejections are never retryable: the breaker has
        already decided the backend is down, and hammering it from inside
        the retry loop would defeat the cooldown.  Permanent provider
        rejections (4xx other than 408/429) and cassette failures are
        likewise refused — the same request fails identically every time,
        so retrying only burns the budget.
        """
        if isinstance(exc, (CircuitOpenError, PermanentHTTPError, CassetteError)):
            return False
        return isinstance(exc, self.retryable)

    def retry_delay(self, schedule_delay: float, exc: BaseException) -> tuple[float, bool]:
        """The sleep before retrying after ``exc``, honoring server hints.

        When a retryable error carries a usable ``retry_after`` attribute
        (a 429's ``Retry-After`` header, surfaced by
        :class:`~repro.errors.RateLimitError`), the geometric schedule is
        raised to at least that hint — but never above
        ``max_delay_seconds``, so a hostile or confused server cannot
        stall the pipeline indefinitely.  Returns ``(delay, honored)``
        where ``honored`` says the hint actually changed the sleep.
        """
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is None:
            return schedule_delay, False
        try:
            hint = float(retry_after)
        except (TypeError, ValueError):
            return schedule_delay, False
        if hint <= schedule_delay:
            return schedule_delay, False
        return min(hint, self.max_delay_seconds), True


class RetryingLLM:
    """Retry wrapper implementing :class:`~repro.llm.client.LLMClient`.

    Composes freely with the other wrappers: under
    :class:`~repro.llm.client.CachedLLM` so only genuine backend calls are
    retried, and under :class:`~repro.resilience.breaker.CircuitBreaker` so
    the breaker observes post-retry failures (one exhausted retry budget is
    one breaker strike, not three).

    ``stats`` may be shared with other wrappers to aggregate counters in
    one :class:`~repro.llm.client.UsageStats`; ``sleep`` is injectable so
    tests can run the full backoff schedule without waiting on it.
    """

    def __init__(
        self,
        inner: LLMClient,
        policy: RetryPolicy | None = None,
        *,
        stats: UsageStats | None = None,
        sleep=time.sleep,
    ) -> None:
        self._inner = inner
        self.policy = policy or RetryPolicy()
        self.stats = stats if stats is not None else UsageStats()
        self._sleep = sleep
        self._lock = threading.Lock()

    def complete(self, prompt: str) -> str:
        delays = self.policy.delay_schedule()
        for attempt in range(self.policy.max_retries + 1):
            try:
                return self._inner.complete(prompt)
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not self.policy.is_retryable(exc):
                    raise
                if attempt == self.policy.max_retries:
                    with self._lock:
                        self.stats.retry_giveups += 1
                    raise
                delay, honored = self.policy.retry_delay(delays[attempt], exc)
                with self._lock:
                    self.stats.retries += 1
                    if honored:
                        self.stats.retry_after_honored += 1
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
