"""UNKNOWN-verdict degradation ladder.

The paper's headline negative result is that full-policy formulas
overwhelm the solver; our :class:`~repro.solver.interface.Solver` converts
that into UNKNOWN-with-a-budget-reason instead of hanging.  This module
turns that dead end into a ladder of increasingly aggressive recoveries:

1. **Escalate** — re-verify the same encoding at 4x, 16x, ... of the
   original :class:`~repro.solver.interface.SolverBudget`.  Cheap when the
   problem was merely near the budget line.
2. **Decompose** — split the subgraph into independent data-branch
   components (:func:`repro.core.subgraph.split_components`) and verify the
   query against its own branch only.  Each branch re-grounds only its own
   hierarchy axioms, so a policy-sized problem shrinks back to query size.
3. **Partial verdict** — when nothing decides, the original UNKNOWN stands,
   but the attached :class:`DegradationReport` records every rung tried,
   its outcome, and its cost, so "genuinely undecidable under vagueness"
   is distinguishable from "ran out of budget at every rung".

Soundness of the decomposition rung: a VALID verdict on the query's
component is sound for the full problem (entailment is monotonic in the
assertion set).  An INVALID verdict is *partial* — formulas outside the
component cannot make the query true, but they could make the whole policy
inconsistent, which the full encoding would have reported as a
contradiction instead.  Steps record this via ``sound``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.encode import EncodedQuery, encode_query
from repro.core.subgraph import Subgraph, component_for_terms, split_components
from repro.core.verify import (
    Verdict,
    VerificationResult,
    is_certification_failure,
    verify_encoded,
)
from repro.llm.tasks import ExtractedParameters
from repro.solver.interface import SolverBudget

#: Substrings identifying UNKNOWN reasons caused by resource budgets, as
#: raised by :class:`repro.errors.BudgetExceededError` call sites.  The
#: contradiction UNKNOWN ("policy statements ... mutually contradictory")
#: is decisive, not budget-bound, and must not trigger escalation.
_BUDGET_MARKERS = ("budget exhausted", "timeout")


def is_budget_limited(verification: VerificationResult) -> bool:
    """Did this verification fail on resources rather than on substance?

    Certification failures are excluded even when their failure text
    happens to mention a budget word (e.g. a certifier error wrapping a
    timeout): the soundness alarm means the solver's answers cannot be
    trusted, which more budget does not fix.
    """
    if verification.verdict is not Verdict.UNKNOWN:
        return False
    if is_certification_failure(verification):
        return False
    reason = verification.solver_result.reason or ""
    return any(marker in reason for marker in _BUDGET_MARKERS)


@dataclass(frozen=True, slots=True)
class BudgetLadder:
    """Configuration of the degradation ladder.

    ``multipliers`` are applied to the query's base budget in order; the
    defaults quadruple twice (1x -> 4x -> 16x).  ``decompose`` enables the
    data-branch fallback after escalation; its verification runs at
    ``decompose_budget_multiplier`` times the base budget (1x by default —
    components are query-sized, the base budget is meant for them).
    """

    multipliers: tuple[float, ...] = (4.0, 16.0)
    decompose: bool = True
    decompose_budget_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if any(m <= 1.0 for m in self.multipliers):
            raise ValueError("escalation multipliers must be > 1")
        if list(self.multipliers) != sorted(self.multipliers):
            raise ValueError("escalation multipliers must be increasing")
        if self.decompose_budget_multiplier <= 0:
            raise ValueError("decompose_budget_multiplier must be > 0")


@dataclass(slots=True)
class DegradationStep:
    """One rung of the ladder: what was tried and what it cost."""

    rung: str  # "escalate" | "decompose"
    detail: str
    verdict: str
    reason: str
    sound: bool = True
    seconds: float = 0.0
    ground_instances: int = 0
    conflicts: int = 0

    def as_dict(self) -> dict[str, object]:
        """Deterministic trace view (wall time deliberately excluded)."""
        return {
            "rung": self.rung,
            "detail": self.detail,
            "verdict": self.verdict,
            "reason": self.reason,
            "sound": self.sound,
        }


@dataclass(slots=True)
class DegradationReport:
    """Everything the ladder did for one query, in order."""

    base_reason: str
    steps: list[DegradationStep] = field(default_factory=list)
    rescued: bool = False
    final_rung: str | None = None

    @property
    def escalations(self) -> int:
        return sum(1 for s in self.steps if s.rung == "escalate")

    @property
    def decompositions(self) -> int:
        return sum(1 for s in self.steps if s.rung == "decompose")

    def as_dict(self) -> dict[str, object]:
        return {
            "base_reason": self.base_reason,
            "rescued": self.rescued,
            "final_rung": self.final_rung,
            "steps": [s.as_dict() for s in self.steps],
        }

    def summary(self) -> str:
        lines = [f"degradation ladder ({self.base_reason}):"]
        for step in self.steps:
            outcome = step.verdict
            if step.reason:
                outcome += f" ({step.reason})"
            if not step.sound:
                outcome += " [partial]"
            lines.append(f"  {step.rung} {step.detail}: {outcome}")
        lines.append(
            "  -> rescued by " + self.final_rung
            if self.rescued
            else "  -> not rescued; UNKNOWN stands"
        )
        return "\n".join(lines)


def execute_ladder(
    subgraph: Subgraph,
    params: ExtractedParameters,
    initial: VerificationResult,
    *,
    ladder: BudgetLadder | None = None,
    base_budget: SolverBudget | None = None,
    encoded: EncodedQuery | None = None,
    include_hierarchy_axioms: bool = True,
    simplify_formulas: bool = True,
    via_smtlib: bool = True,
    check_conditional: bool = True,
    verify=None,
) -> tuple[VerificationResult, DegradationReport]:
    """Run the degradation ladder for a budget-limited UNKNOWN.

    ``verify`` is an optional ``(encoded, budget) -> VerificationResult``
    callable; the pipeline passes its cache-aware verifier, standalone
    callers (benchmarks, tests) get plain :func:`verify_encoded`.  Returns
    the best verification reached plus the step-by-step report; when no
    rung decides, the returned verification is ``initial`` unchanged.

    Escalation rungs run while the current result is still
    budget-limited; the decomposition rung runs for any remaining UNKNOWN —
    including the contradiction demotion, where isolating the query's data
    branch from an unrelated contradictory branch is exactly the recovery
    a human reviewer would attempt.
    """
    if is_certification_failure(initial):
        # Soundness alarm: the solver's verdict failed independent
        # certification, so re-running at a bigger budget would only
        # produce more untrustworthy answers.  The UNKNOWN (with its
        # CertificateReport) stands; the empty report records that no
        # rung was attempted.
        return initial, DegradationReport(
            base_reason=initial.solver_result.reason, rescued=False
        )

    ladder = ladder or BudgetLadder()
    base = base_budget or SolverBudget()
    if verify is None:

        def verify(enc: EncodedQuery, budget: SolverBudget) -> VerificationResult:
            return verify_encoded(
                enc,
                budget=budget,
                via_smtlib=via_smtlib,
                check_conditional=check_conditional,
            )

    report = DegradationReport(base_reason=initial.solver_result.reason)
    current = initial

    def record(rung: str, detail: str, result: VerificationResult, *, sound: bool, seconds: float) -> None:
        stats = result.solver_result.statistics
        report.steps.append(
            DegradationStep(
                rung=rung,
                detail=detail,
                verdict=result.verdict.value,
                reason=result.solver_result.reason,
                sound=sound,
                seconds=seconds,
                ground_instances=stats.ground_instances,
                conflicts=stats.conflicts,
            )
        )

    if encoded is None:
        encoded = encode_query(
            subgraph,
            params,
            include_hierarchy_axioms=include_hierarchy_axioms,
            simplify_formulas=simplify_formulas,
        )

    for multiplier in ladder.multipliers:
        if not is_budget_limited(current):
            break
        started = time.perf_counter()
        attempt = verify(encoded, base.scaled(multiplier))
        record(
            "escalate",
            f"budget x{multiplier:g}",
            attempt,
            sound=True,
            seconds=time.perf_counter() - started,
        )
        current = attempt
        if attempt.verdict is not Verdict.UNKNOWN:
            report.rescued = True
            report.final_rung = "escalate"
            return attempt, report

    if ladder.decompose and current.verdict is Verdict.UNKNOWN:
        components = split_components(subgraph)
        terms = [params.data_type, params.sender or "", params.receiver or ""]
        component = component_for_terms(components, terms)
        if component is None or component.num_edges == subgraph.num_edges:
            detail = (
                "indivisible (1 component)"
                if component is not None
                else f"no component contains the query terms ({len(components)} components)"
            )
            record("decompose", detail, current, sound=True, seconds=0.0)
        else:
            component_encoded = encode_query(
                component,
                params,
                include_hierarchy_axioms=include_hierarchy_axioms,
                simplify_formulas=simplify_formulas,
            )
            started = time.perf_counter()
            attempt = verify(
                component_encoded, base.scaled(ladder.decompose_budget_multiplier)
            )
            sound = attempt.verdict is not Verdict.INVALID
            record(
                "decompose",
                f"component {component.num_edges}/{subgraph.num_edges} edges "
                f"({len(components)} components)",
                attempt,
                sound=sound,
                seconds=time.perf_counter() - started,
            )
            if attempt.verdict is not Verdict.UNKNOWN:
                report.rescued = True
                report.final_rung = "decompose"
                return attempt, report

    return current, report
