"""Circuit breaker for the LLM boundary.

When the completion backend fails repeatedly, continuing to call it slows
every query down by the full timeout-and-retry cost and can pile worker
threads up behind a dead socket.  :class:`CircuitBreaker` implements the
classic three-state automaton around any
:class:`~repro.llm.client.LLMClient`:

* **closed** — calls pass through; consecutive failures are counted;
* **open** — calls are rejected immediately with
  :class:`~repro.errors.CircuitOpenError` (a short-circuit);
* **half-open** — after the cooldown, a single probe call is admitted;
  success closes the circuit, failure re-opens it.

The cooldown is measured in *rejected calls* rather than wall-clock time,
which keeps the automaton fully deterministic for the fault-injection
suite (and independent of how fast the batch executor drains its queue).
A wall-clock cooldown can be layered on by passing ``cooldown_calls=0``
and wrapping ``complete`` — the states and counters stay the same.
"""

from __future__ import annotations

import threading

from repro.errors import CircuitOpenError
from repro.llm.client import LLMClient, UsageStats

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate gate implementing :class:`~repro.llm.client.LLMClient`.

    Thread-safe: state transitions are lock-guarded, and in the half-open
    state exactly one thread wins the probe while the rest keep
    short-circuiting until it resolves.

    Composes with the other wrappers as
    ``CachedLLM(CircuitBreaker(RetryingLLM(backend)))`` — the cache keeps
    hits from touching the breaker at all, and the breaker counts one
    strike per exhausted retry budget rather than per raw attempt.
    """

    def __init__(
        self,
        inner: LLMClient,
        *,
        failure_threshold: int = 5,
        cooldown_calls: int = 10,
        stats: UsageStats | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_calls < 0:
            raise ValueError("cooldown_calls must be >= 0")
        self._inner = inner
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.stats = stats if stats is not None else UsageStats()
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive_failures = 0
        self._rejections_since_open = 0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current automaton state: ``closed``, ``open``, or ``half-open``."""
        with self._lock:
            return self._state

    def complete(self, prompt: str) -> str:
        with self._lock:
            if self._state == _OPEN:
                if self._rejections_since_open >= self.cooldown_calls:
                    self._state = _HALF_OPEN
                else:
                    self._rejections_since_open += 1
                    self.stats.breaker_short_circuits += 1
                    raise CircuitOpenError(
                        "circuit open after "
                        f"{self._consecutive_failures} consecutive failures"
                    )
            if self._state == _HALF_OPEN:
                if self._probe_in_flight:
                    self.stats.breaker_short_circuits += 1
                    raise CircuitOpenError("circuit half-open, probe in flight")
                self._probe_in_flight = True

        try:
            completion = self._inner.complete(prompt)
        except BaseException:  # noqa: BLE001 - any backend failure is a strike
            with self._lock:
                self._probe_in_flight = False
                self._consecutive_failures += 1
                if (
                    self._state == _HALF_OPEN
                    or self._consecutive_failures >= self.failure_threshold
                ):
                    if self._state != _OPEN:
                        self.stats.breaker_opens += 1
                    self._state = _OPEN
                    self._rejections_since_open = 0
            raise

        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures = 0
            self._state = _CLOSED
        return completion
