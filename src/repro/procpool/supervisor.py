"""Worker supervision: hard deadlines, crash containment, portfolio racing.

The :class:`WorkerSupervisor` owns a bounded pool of solver worker
processes (warm-reused between units; a killed worker is never reused)
and runs one :class:`~repro.procpool.unit.WorkUnit` at a time per worker
under four watchers, re-using the PR 5 supervision seams
(:class:`~repro.jobs.watchdog.Clock`, :class:`~repro.jobs.watchdog.Watchdog`,
:class:`~repro.jobs.watchdog.WorkerHeartbeat`) against *pipe* heartbeats
instead of thread heartbeats:

* **hard deadline** — ``budget.timeout_seconds + kill_grace`` after
  submission the worker is SIGKILLed.  The solver's own cooperative
  deadline normally answers first; the hard kill only fires for a solve
  wedged past its checks, and surfaces as a timeout UNKNOWN (no retry —
  the unit deterministically exhausts wall clock).
* **heartbeat stall** — ``stall_after`` seconds of pipe silence means the
  worker is alive but wedged (the watchdog scan makes the call); it is
  killed, replaced, and the unit retried once.
* **RSS ceiling** — a worker whose resident set exceeds ``max_rss_mb``
  is killed; no retry (the unit deterministically re-exceeds it).
* **crash** — process exit without a result (nonzero exit, SIGKILL,
  EOF) or an unpicklable/truncated result payload; the worker is
  replaced and the unit retried exactly once before a structured
  :class:`~repro.procpool.unit.WorkerCrashReport` surfaces as UNKNOWN.

Portfolio mode (:meth:`WorkerSupervisor.run_rescued`) races the unit
under different VSIDS decision seeds after a budget-limited primary
attempt; the decisive certified answer with the lowest seed wins and
losers are cancelled by kill.  Waiting in seed order makes the winning
*value* deterministic even though finish order is not.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, replace

from repro.errors import ExecutionError
from repro.jobs.watchdog import Clock, MonotonicClock, Watchdog, WorkerHeartbeat
from repro.procpool.config import PortfolioConfig, ProcPoolConfig
from repro.procpool.unit import UnitOutcome, WorkerCrashReport, WorkUnit
from repro.procpool.worker import SolverWorker
from repro.solver.interface import CertificationConfig
from repro.solver.result import SatResult

#: UNKNOWN reasons that mark a *resource* failure (mirrors the private
#: marker list in repro.resilience.degradation) — the rescuable cases.
BUDGET_MARKERS = ("budget exhausted", "timeout")

#: Crash kinds that earn the one replacement-worker retry.  Deadline and
#: RSS kills are excluded: the same unit would deterministically exhaust
#: the same ceiling again.
_RETRYABLE_KINDS = frozenset({"exit", "ipc", "stall"})


@dataclass(slots=True)
class _Attempt:
    """What one worker attempt produced (internal to the supervisor)."""

    tag: str  # "ok" | "err" | "crash" | "deadline" | "rss" | "cancelled"
    results: list | None = None
    error: tuple | None = None
    crash: WorkerCrashReport | None = None
    killed: int = 0
    detail: str = ""


class WorkerSupervisor:
    """Bounded pool of supervised solver worker processes.

    Thread-safe: many batch worker threads call :meth:`run_unit`
    concurrently; ``config.workers`` slots bound how many units run at
    once (excess callers queue on the slot semaphore).  ``clock`` is the
    injectable time seam shared with the job watchdog.
    """

    def __init__(
        self,
        config: ProcPoolConfig | None = None,
        *,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ProcPoolConfig()
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._ctx = multiprocessing.get_context(self.config.resolved_start_method())
        self._watchdog = Watchdog(
            stall_after=self.config.stall_after, clock=self.clock
        )
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(self.config.workers)
        self._idle: list[SolverWorker] = []
        self._live: set[SolverWorker] = set()
        self._seq = 0
        self._closed = False
        # Pool-lifetime counters (read under _lock via stats()).
        self.units_run = 0
        self.units_retried = 0
        self.units_rescued = 0
        self.worker_crashes = 0
        self.workers_spawned = 0
        self.workers_killed = 0
        self.stall_kills = 0
        self.deadline_kills = 0
        self.rss_kills = 0
        self.cancelled_units = 0
        self.portfolio_races = 0

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _checkout(self) -> SolverWorker:
        with self._lock:
            if self._closed:
                raise ExecutionError("supervisor is shut down")
            while self._idle:
                worker = self._idle.pop()
                if worker.alive:
                    return worker
                # Died while idle (OOM killer, operator kill): reap quietly.
                worker.kill()
                self._live.discard(worker)
            self._seq += 1
            worker = SolverWorker(
                self._ctx, self._seq, self.config.heartbeat_interval
            )
            self._live.add(worker)
            self.workers_spawned += 1
            return worker

    def _release(self, worker: SolverWorker) -> None:
        with self._lock:
            if self._closed:
                pass  # fall through to shut it down below
            elif worker.alive:
                self._idle.append(worker)
                return
        worker.shutdown(self.config.shutdown_grace)
        with self._lock:
            self._live.discard(worker)

    def _kill(self, worker: SolverWorker) -> None:
        worker.kill()
        with self._lock:
            self._live.discard(worker)
            self.workers_killed += 1

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------

    def run_unit(
        self, unit: WorkUnit, *, cancel: threading.Event | None = None
    ) -> UnitOutcome:
        """Run ``unit`` on a worker; kill/replace/retry per the contract.

        Blocks until the unit resolves (or a slot frees up first if the
        pool is saturated).  ``cancel`` is checked every poll tick; when
        it fires the worker is hard-killed and the outcome comes back
        ``cancelled`` — callers raise instead of caching.
        """
        with self._slots:
            with self._lock:
                self.units_run += 1
            outcome = UnitOutcome()
            attempt = self._attempt(unit, cancel)
            outcome.kills += attempt.killed
            if (
                attempt.tag == "crash"
                and self.config.retry_crashes
                and attempt.crash is not None
                and attempt.crash.kind in _RETRYABLE_KINDS
            ):
                attempt.crash.retried = True
                outcome.crashes.append(attempt.crash)
                outcome.retried = True
                outcome.attempts = 2
                with self._lock:
                    self.units_retried += 1
                attempt = self._attempt(unit, cancel)
                outcome.kills += attempt.killed
            return self._finish(unit, outcome, attempt)

    def _finish(
        self, unit: WorkUnit, outcome: UnitOutcome, attempt: _Attempt
    ) -> UnitOutcome:
        from repro.solver.result import SolverResult, SolverStatistics

        if attempt.tag == "ok":
            outcome.results = attempt.results
        elif attempt.tag == "err":
            outcome.error = attempt.error
        elif attempt.tag == "cancelled":
            outcome.cancelled = True
            with self._lock:
                self.cancelled_units += 1
        elif attempt.tag == "deadline":
            # Synthesized timeout UNKNOWN: the cooperative deadline never
            # fired, so the supervisor's hard kill speaks in its place.
            with self._lock:
                self.deadline_kills += 1
            outcome.results = [
                SolverResult(
                    status=SatResult.UNKNOWN,
                    reason=f"wall-clock timeout ({attempt.detail})",
                    statistics=SolverStatistics(),
                )
            ]
        else:  # "crash" (unretried or retry also crashed) and "rss"
            crash = attempt.crash
            if crash is not None:
                crash.retried = outcome.retried
                outcome.crashes.append(crash)
            outcome.crash = crash
            with self._lock:
                self.worker_crashes += 1
                if crash is not None and crash.kind == "rss":
                    self.rss_kills += 1
        return outcome

    def _attempt(
        self, unit: WorkUnit, cancel: threading.Event | None
    ) -> _Attempt:
        worker = self._checkout()
        try:
            worker.submit(unit)
        except ExecutionError as exc:
            self._kill(worker)
            return _Attempt(
                tag="crash",
                killed=1,
                crash=self._crash(unit, worker, "exit", f"submit failed: {exc}"),
            )
        deadline = None
        budget = unit.budget
        if budget is not None and budget.timeout_seconds is not None:
            deadline = (
                self.clock.now() + budget.timeout_seconds + self.config.kill_grace
            )
        heartbeat = WorkerHeartbeat(worker.worker_id)
        heartbeat.begin(0, unit.label or "solver-unit", self.clock.now())
        rss_limit = (
            None
            if self.config.max_rss_mb is None
            else int(self.config.max_rss_mb * 1024 * 1024)
        )

        while True:
            if cancel is not None and cancel.is_set():
                self._kill(worker)
                return _Attempt(tag="cancelled", killed=1)
            has_message = worker.poll(self.config.poll_interval)
            now = self.clock.now()
            if has_message:
                try:
                    message = worker.recv()
                except (EOFError, OSError):
                    detail = "worker died mid-unit (pipe closed)"
                    exit_code = self._reap(worker)
                    return _Attempt(
                        tag="crash",
                        killed=1,
                        crash=self._crash(
                            unit, worker, "exit", detail, exit_code=exit_code
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 - corrupt payload
                    detail = (
                        "unpicklable result payload: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    self._kill(worker)
                    return _Attempt(
                        tag="crash",
                        killed=1,
                        crash=self._crash(unit, worker, "ipc", detail),
                    )
                kind = message[0]
                if kind == "hb":
                    heartbeat.beat("solve", now)
                    continue
                if kind == "ok":
                    self._release(worker)
                    return _Attempt(tag="ok", results=message[1])
                if kind == "err":
                    self._release(worker)
                    return _Attempt(tag="err", error=(message[1], message[2]))
                self._kill(worker)
                return _Attempt(
                    tag="crash",
                    killed=1,
                    crash=self._crash(
                        unit, worker, "ipc", f"unknown message kind {kind!r}"
                    ),
                )
            if not worker.alive:
                if worker.poll(0):
                    continue  # final message beat the exit; classify above
                exit_code = self._reap(worker)
                return _Attempt(
                    tag="crash",
                    killed=1,
                    crash=self._crash(
                        unit,
                        worker,
                        "exit",
                        "worker exited without sending a result",
                        exit_code=exit_code,
                    ),
                )
            if deadline is not None and now > deadline:
                self._kill(worker)
                return _Attempt(
                    tag="deadline",
                    killed=1,
                    detail=(
                        "worker hard-killed "
                        f"{self.config.kill_grace:.1f}s past its deadline"
                    ),
                )
            if self._watchdog.scan([heartbeat], now=now):
                waited = now - heartbeat.last_beat
                self._kill(worker)
                with self._lock:
                    self.stall_kills += 1
                return _Attempt(
                    tag="crash",
                    killed=1,
                    crash=self._crash(
                        unit,
                        worker,
                        "stall",
                        f"no heartbeat for {waited:.3f}s "
                        f"(threshold {self.config.stall_after:.3f}s)",
                    ),
                )
            if rss_limit is not None:
                rss = worker.rss_bytes()
                if rss is not None and rss > rss_limit:
                    self._kill(worker)
                    return _Attempt(
                        tag="rss",
                        killed=1,
                        crash=self._crash(
                            unit,
                            worker,
                            "rss",
                            f"resident set {rss / 1048576:.1f} MiB exceeds "
                            f"ceiling {self.config.max_rss_mb:.1f} MiB",
                        ),
                    )

    def _reap(self, worker: SolverWorker) -> int | None:
        """Join a worker that died on its own; returns its exit code."""
        worker.process.join(timeout=5.0)
        exit_code = worker.exit_code
        self._kill(worker)  # closes the pipe, discards from the live set
        return exit_code

    def _crash(
        self,
        unit: WorkUnit,
        worker: SolverWorker,
        kind: str,
        detail: str,
        *,
        exit_code: int | None = None,
    ) -> WorkerCrashReport:
        return WorkerCrashReport(
            kind=kind,
            detail=detail,
            label=unit.label,
            decision_seed=unit.decision_seed,
            exit_code=exit_code if exit_code is not None else worker.exit_code,
            worker_pid=worker.pid,
        )

    # ------------------------------------------------------------------
    # Portfolio rescue
    # ------------------------------------------------------------------

    def run_rescued(
        self,
        unit: WorkUnit,
        portfolio: PortfolioConfig | None = None,
        *,
        cancel: threading.Event | None = None,
    ) -> UnitOutcome:
        """Run ``unit``; race seed variants if the primary is budget-bound.

        The primary attempt always runs at seed 0 (the canonical
        trajectory, byte-identical to the thread backend).  Only a
        budget-limited UNKNOWN triggers the race — decisive answers,
        contradiction UNKNOWNs, and certification alarms all stand.
        """
        primary = self.run_unit(unit, cancel=cancel)
        if portfolio is None or (cancel is not None and cancel.is_set()):
            return primary
        if not self._rescuable(primary):
            return primary
        with self._lock:
            self.portfolio_races += 1
        rescue = self._race(unit, portfolio, cancel)
        if rescue is None:
            return primary
        rescue.attempts += primary.attempts
        rescue.kills += primary.kills
        rescue.crashes = primary.crashes + rescue.crashes
        with self._lock:
            self.units_rescued += 1
        return rescue

    @staticmethod
    def _rescuable(outcome: UnitOutcome) -> bool:
        if not outcome.ok or not outcome.results:
            return False
        last = outcome.results[-1]
        if last.status is not SatResult.UNKNOWN:
            return False
        reason = last.reason or ""
        if last.certificate is not None and last.certificate.failed:
            return False  # soundness alarm: more search must not override it
        return any(marker in reason for marker in BUDGET_MARKERS)

    def _race(
        self,
        unit: WorkUnit,
        portfolio: PortfolioConfig,
        outer_cancel: threading.Event | None,
    ) -> UnitOutcome | None:
        """Race seed variants; lowest decisive certified seed wins.

        Every variant runs with certification armed (rescued verdicts are
        only trusted certified), under its own cancel event so losers die
        the moment a lower seed decides.
        """
        seeds = portfolio.seeds
        certification = unit.certification or CertificationConfig()
        outcomes: list[UnitOutcome | None] = [None] * len(seeds)
        cancels = [threading.Event() for _ in seeds]
        threads: list[threading.Thread] = []

        def attempt(index: int, seed: int) -> None:
            variant = replace(
                unit,
                decision_seed=seed,
                certification=certification,
                label=f"{unit.label or 'solver-unit'}#seed{seed}",
            )
            try:
                outcomes[index] = self.run_unit(variant, cancel=cancels[index])
            except ExecutionError:
                outcomes[index] = None  # pool shut down mid-race

        for index, seed in enumerate(seeds):
            thread = threading.Thread(
                target=attempt,
                args=(index, seed),
                name=f"portfolio-seed-{seed}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()

        winner: UnitOutcome | None = None
        winner_index = len(seeds)
        for index, thread in enumerate(threads):
            while thread.is_alive():
                thread.join(timeout=self.config.poll_interval)
                if outer_cancel is not None and outer_cancel.is_set():
                    break
            if outer_cancel is not None and outer_cancel.is_set():
                break
            outcome = outcomes[index]
            if outcome is not None and self._decisive_certified(outcome):
                winner, winner_index = outcome, index
                break
        # Cancel everything after the winner (or everything, on outer
        # cancel); their kills free the CPUs immediately.
        for index in range(len(seeds)):
            if index != winner_index:
                cancels[index].set()
        for thread in threads:
            thread.join()
        if winner is not None:
            winner.rescued_seed = seeds[winner_index]
        return winner

    @staticmethod
    def _decisive_certified(outcome: UnitOutcome) -> bool:
        if not outcome.ok or not outcome.results:
            return False
        last = outcome.results[-1]
        if last.status not in (SatResult.SAT, SatResult.UNSAT):
            return False
        certificate = last.certificate
        return certificate is not None and not certificate.failed

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Pool gauges and counters (the daemon's ``/stats`` pool block)."""
        with self._lock:
            return {
                "workers": self.config.workers,
                "start_method": self.config.resolved_start_method(),
                "workers_live": len(self._live),
                "workers_idle": len(self._idle),
                "workers_spawned": self.workers_spawned,
                "workers_killed": self.workers_killed,
                "units_run": self.units_run,
                "units_retried": self.units_retried,
                "units_rescued": self.units_rescued,
                "worker_crashes": self.worker_crashes,
                "stall_kills": self.stall_kills,
                "deadline_kills": self.deadline_kills,
                "rss_kills": self.rss_kills,
                "cancelled_units": self.cancelled_units,
                "portfolio_races": self.portfolio_races,
            }

    def live_pids(self) -> list[int]:
        """PIDs of every worker process not yet reaped (orphan checks)."""
        with self._lock:
            return [w.pid for w in self._live if w.pid is not None and w.alive]

    def shutdown(self) -> None:
        """Reap every worker: idle ones exit cleanly, busy ones are killed.

        Idempotent.  Callers should drain in-flight units first (the
        serving daemon does); any unit still running when its worker dies
        here resolves through the normal crash path.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            busy = [w for w in self._live if w not in idle]
        for worker in idle:
            worker.shutdown(self.config.shutdown_grace)
        for worker in busy:
            worker.kill()
        with self._lock:
            for worker in idle + busy:
                self._live.discard(worker)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
