"""Tunables for the process-pool execution backend."""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.errors import ExecutionError


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap startup), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True, slots=True)
class ProcPoolConfig:
    """Supervision settings for one :class:`~repro.procpool.WorkerSupervisor`.

    ``workers`` bounds how many worker processes run units concurrently
    (idle workers are kept warm and reused; a killed worker is never
    reused).  ``stall_after`` is the heartbeat-silence threshold beyond
    which a worker is presumed wedged and hard-killed; ``kill_grace`` is
    how far past the unit's own solver deadline the supervisor waits for
    the worker's cooperative timeout before killing it.  ``max_rss_mb``
    arms the per-worker resident-memory ceiling (``None`` disables it;
    enforcement needs ``/proc`` and degrades to disabled elsewhere).
    """

    workers: int = 4
    start_method: str | None = None  # None = fork if available, else spawn
    heartbeat_interval: float = 0.05
    stall_after: float = 2.0
    kill_grace: float = 5.0
    max_rss_mb: float | None = None
    poll_interval: float = 0.01
    retry_crashes: bool = True  # retry a crashed unit once on a fresh worker
    shutdown_grace: float = 2.0  # per-worker wait for a clean exit at drain

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {self.workers}")
        if self.start_method is not None:
            allowed = multiprocessing.get_all_start_methods()
            if self.start_method not in allowed:
                raise ExecutionError(
                    f"start_method {self.start_method!r} not available "
                    f"(choose from {allowed})"
                )
        for name in ("heartbeat_interval", "stall_after", "kill_grace",
                     "poll_interval", "shutdown_grace"):
            value = getattr(self, name)
            if value <= 0:
                raise ExecutionError(f"{name} must be > 0, got {value}")
        if self.stall_after <= self.heartbeat_interval:
            raise ExecutionError(
                "stall_after must exceed heartbeat_interval, got "
                f"{self.stall_after} <= {self.heartbeat_interval}"
            )
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ExecutionError(
                f"max_rss_mb must be > 0 or None, got {self.max_rss_mb}"
            )

    def resolved_start_method(self) -> str:
        return self.start_method or default_start_method()


@dataclass(frozen=True, slots=True)
class PortfolioConfig:
    """VSIDS-seed portfolio rescue for budget-limited UNKNOWNs.

    After the canonical seed-0 attempt comes back UNKNOWN for budget
    reasons, the same unit is raced under every seed in ``seeds``; the
    decisive certified answer with the *lowest* seed wins (determinism),
    and workers still running higher seeds are cancelled by kill.  Seed 0
    is reserved for the primary attempt and may not appear here.
    """

    seeds: tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ExecutionError("portfolio needs at least one seed")
        if 0 in self.seeds:
            raise ExecutionError(
                "seed 0 is the primary attempt; portfolio seeds must be nonzero"
            )
        if len(set(self.seeds)) != len(self.seeds):
            raise ExecutionError(f"duplicate portfolio seeds: {self.seeds}")
