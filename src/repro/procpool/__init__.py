"""Supervised process-pool execution backend for the solver hot path.

Solving is pure-Python and CPU-bound, so the thread-pool batch engine
serializes on the worst queries and a wedged solve can only be abandoned,
never preempted.  This package provides the repo's first true GIL escape:
solver work units (SMT-LIB text in, :class:`~repro.solver.result.SolverResult`
out — the existing printer/parser round trip is the wire format) execute in
worker *processes* that a :class:`WorkerSupervisor` can hard-kill on
deadline expiry, heartbeat stall, or RSS overrun, replace after a crash,
and retry exactly once before surfacing a structured
:class:`WorkerCrashReport` as UNKNOWN.

Portfolio mode races the same unit under different VSIDS decision seeds
(see :func:`repro.solver.sat.seeded_phase`); the first decisive *certified*
answer — lowest seed wins, for determinism — cancels the losers by kill,
rescuing verdicts that exhaust their budget single-process.

Select it with ``PipelineConfig(execution_backend="process")``; the
default thread backend is untouched and traces stay byte-identical across
backends.
"""

from repro.procpool.config import PortfolioConfig, ProcPoolConfig
from repro.procpool.supervisor import WorkerSupervisor
from repro.procpool.unit import UnitOutcome, WorkerCrashReport, WorkUnit

__all__ = [
    "PortfolioConfig",
    "ProcPoolConfig",
    "UnitOutcome",
    "WorkUnit",
    "WorkerCrashReport",
    "WorkerSupervisor",
]
