"""The picklable work unit and its outcome types.

A :class:`WorkUnit` is everything a worker process needs to reproduce a
solver check: the SMT-LIB script text (the same serialization the
verification cache hashes), the resource budget, the certification
config, and the VSIDS decision seed.  Everything that crosses the process
boundary — the unit in, the :class:`~repro.solver.result.SolverResult`
list (with any :class:`~repro.solver.result.CertificateReport`) out — is
plain-dataclass picklable; proofs are replayed *inside* the worker by the
certification layer, so only their verdict (the certificate) rides back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.interface import CertificationConfig, SolverBudget
from repro.solver.result import SolverResult


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One solver check, ready to ship to a worker process."""

    script_text: str
    budget: SolverBudget | None = None
    certification: CertificationConfig | None = None
    decision_seed: int = 0
    label: str = ""
    #: Test-only deterministic crash seam (see :mod:`repro.procpool.faults`);
    #: production callers never set it.
    fault: str | None = None


@dataclass(slots=True)
class WorkerCrashReport:
    """Structured account of a worker that died instead of answering.

    ``kind`` classifies the failure: ``"exit"`` (process died — nonzero
    exit, SIGKILL, or EOF on the result pipe), ``"ipc"`` (the result
    payload arrived unpicklable/truncated), ``"stall"`` (heartbeats
    stopped and the supervisor hard-killed the worker), ``"rss"``
    (resident memory exceeded the ceiling).  ``retried`` records whether
    the unit got its one replacement-worker retry before this report
    surfaced as UNKNOWN.
    """

    kind: str
    detail: str
    label: str = ""
    decision_seed: int = 0
    exit_code: int | None = None
    worker_pid: int | None = None
    retried: bool = False

    def summary(self) -> str:
        parts = [f"{self.kind}: {self.detail}"]
        if self.exit_code is not None:
            parts.append(f"exit code {self.exit_code}")
        if self.worker_pid is not None:
            parts.append(f"pid {self.worker_pid}")
        parts.append("retried once" if self.retried else "not retried")
        return "; ".join(parts)

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "label": self.label,
            "decision_seed": self.decision_seed,
            "exit_code": self.exit_code,
            "worker_pid": self.worker_pid,
            "retried": self.retried,
        }


@dataclass(slots=True)
class UnitOutcome:
    """What the supervisor hands back for one unit.

    Exactly one of three shapes: ``results`` set (the worker answered),
    ``crash`` set (the unit died twice; the caller surfaces it as
    UNKNOWN), or ``cancelled`` True (a cancel event fired and the worker
    was killed mid-solve — the caller raises, never caches).  ``error``
    carries a worker-side solver exception ``(type_name, message)`` to be
    re-raised in the parent, mirroring the thread backend.  ``kills`` and
    ``attempts`` feed the pool metrics; ``rescued_seed`` is set by the
    portfolio when a nonzero seed produced the decisive answer.
    """

    results: list[SolverResult] | None = None
    crash: WorkerCrashReport | None = None
    error: tuple[str, str] | None = None
    cancelled: bool = False
    retried: bool = False
    attempts: int = 1
    kills: int = 0
    rescued_seed: int | None = None
    crashes: list[WorkerCrashReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.results is not None
