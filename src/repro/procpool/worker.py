"""Worker process: child-side execution loop and parent-side handle.

The child is deliberately dumb: receive a :class:`WorkUnit`, run
:func:`repro.smtlib.parser.execute_script` on it (a fresh solver per
unit — no state survives between units beyond warm imports), send back
``("ok", results)`` or ``("err", type_name, message)``, repeat.  A
daemon heartbeat thread sends ``("hb",)`` every ``heartbeat_interval``
seconds so the supervisor can tell "still grinding" from "wedged".

All supervision intelligence (deadlines, stall detection, RSS ceilings,
kill/replace/retry) lives in the parent-side
:class:`~repro.procpool.supervisor.WorkerSupervisor`; the
:class:`SolverWorker` handle here only wraps process + pipe mechanics.
"""

from __future__ import annotations

import os
import threading

from repro.errors import ExecutionError
from repro.procpool import faults
from repro.procpool.unit import WorkUnit

_SHUTDOWN = None  # sentinel the parent sends for a clean worker exit


def _child_main(conn, heartbeat_interval: float) -> None:
    """Run units from ``conn`` until the shutdown sentinel (or EOF)."""
    from repro.smtlib.parser import execute_script

    send_lock = threading.Lock()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is _SHUTDOWN:
            return
        unit: WorkUnit = message
        hb_stop = threading.Event()

        def beat(stop=hb_stop) -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    with send_lock:
                        conn.send(("hb",))
                except (BrokenPipeError, OSError):
                    return

        heartbeat = threading.Thread(target=beat, daemon=True, name="hb")
        heartbeat.start()
        try:
            faults.trigger(unit.fault, "pre-solve", conn=conn, hb_stop=hb_stop)
            results = execute_script(
                unit.script_text,
                budget=unit.budget,
                certification=unit.certification,
                decision_seed=unit.decision_seed,
            )
            payload = ("ok", results)
        except Exception as exc:  # noqa: BLE001 - shipped back, re-raised in parent
            payload = ("err", type(exc).__name__, str(exc))
        hb_stop.set()
        heartbeat.join(timeout=heartbeat_interval * 4)
        try:
            faults.trigger(unit.fault, "post-solve", conn=conn, hb_stop=hb_stop)
            with send_lock:
                conn.send(payload)
        except (BrokenPipeError, OSError):
            return


class SolverWorker:
    """Parent-side handle on one worker process and its result pipe."""

    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

    def __init__(self, ctx, worker_id: int, heartbeat_interval: float) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_child_main,
            args=(child_conn, heartbeat_interval),
            name=f"procpool-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exit_code(self) -> int | None:
        return self.process.exitcode

    def submit(self, unit: WorkUnit) -> None:
        try:
            self.conn.send(unit)
        except (BrokenPipeError, OSError) as exc:
            raise ExecutionError(f"worker {self.worker_id} pipe closed") from exc

    def poll(self, timeout: float) -> bool:
        try:
            return self.conn.poll(timeout)
        except (BrokenPipeError, OSError):
            return False

    def recv(self):
        """Next message; raises EOFError/OSError on a dead pipe and
        whatever unpickling raises on a corrupt payload."""
        return self.conn.recv()

    def rss_bytes(self) -> int | None:
        """Resident set size via ``/proc`` (None where unavailable)."""
        pid = self.process.pid
        if pid is None:
            return None
        try:
            with open(f"/proc/{pid}/statm", "r", encoding="ascii") as fh:
                fields = fh.read().split()
            return int(fields[1]) * self._PAGE_SIZE
        except (OSError, IndexError, ValueError):
            return None

    def kill(self) -> None:
        """SIGKILL + reap + close the pipe.  Idempotent; never blocks long."""
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
        self.process.join(timeout=5.0)
        self._close_conn()

    def shutdown(self, grace: float) -> None:
        """Ask for a clean exit; escalate to kill after ``grace`` seconds."""
        try:
            self.conn.send(_SHUTDOWN)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=grace)
        if self.process.is_alive():
            self.kill()
            return
        self._close_conn()

    def _close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - double close
            pass
