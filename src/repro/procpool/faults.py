"""Deterministic crash seams for the worker kill matrix.

Test infrastructure, not production code — the process-pool counterpart
of :mod:`repro.solver.faults`.  A test sets :attr:`WorkUnit.fault` to one
of the names below; the worker child calls :func:`trigger` at two fixed
points (``pre-solve`` before executing the script, ``post-solve`` after
computing the result payload but before sending it) and the named fault
fires *in the worker process*, reproducing exactly one failure mode the
supervisor must contain:

==================  ====================================================
``sigkill``         SIGKILLs itself mid-solve (pre-solve) — the hard
                    external-kill case: no exit handler, no final send.
``die-pre-result``  exits nonzero after solving, before sending — the
                    result is computed but never arrives.
``truncated-ipc``   writes a valid length header followed by garbage
                    bytes, then exits — the parent's ``recv`` sees an
                    unpicklable payload.
``stall``           silences the heartbeat thread and sleeps forever —
                    the watchdog path: alive but wedged.
``delay-result``    sleeps briefly post-solve, then sends normally —
                    the result-after-kill race when combined with a
                    cancel event on the parent side.
==================  ====================================================

Every fault is deterministic (no randomness, no clocks beyond plain
sleeps), so a caught kill-matrix failure reproduces.
"""

from __future__ import annotations

import os
import signal
import struct
import time

FAULTS = ("sigkill", "die-pre-result", "truncated-ipc", "stall", "delay-result")

#: Exit code used by ``die-pre-result`` so tests can assert the crash
#: report saw the real status, not a generic failure.
DIE_EXIT_CODE = 17

#: How long ``delay-result`` holds the computed result before sending.
RESULT_DELAY_SECONDS = 0.3


def trigger(fault: str | None, point: str, *, conn, hb_stop) -> None:
    """Fire ``fault`` if it is armed for ``point`` (worker-side only)."""
    if fault is None:
        return
    if fault not in FAULTS:
        raise ValueError(f"unknown procpool fault {fault!r}")
    if point == "pre-solve":
        if fault == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault == "stall":
            # Stop beating but stay alive: the supervisor must conclude
            # "wedged" from silence alone and hard-kill us.
            hb_stop.set()
            time.sleep(3600)
    elif point == "post-solve":
        if fault == "die-pre-result":
            os._exit(DIE_EXIT_CODE)
        elif fault == "truncated-ipc":
            # A well-formed length prefix with a garbage body: the parent
            # reads the full "message" and chokes unpickling it.  The
            # heartbeat thread is silenced first so the garbage cannot be
            # interleaved with a valid beat.
            hb_stop.set()
            time.sleep(0.05)
            body = b"not-a-pickle"
            os.write(conn.fileno(), struct.pack("!i", len(body)) + body)
            os._exit(0)
        elif fault == "delay-result":
            time.sleep(RESULT_DELAY_SECONDS)
