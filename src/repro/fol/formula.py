"""Formula AST for many-sorted first-order logic.

All nodes are frozen dataclasses, hence hashable and safe to share.  N-ary
``And``/``Or`` keep argument order (policies are ordered documents and
diagnostics should read in document order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SortMismatchError
from repro.fol.terms import Sort, Term, Variable


class Formula:
    """Base class for all formula nodes."""

    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True, slots=True)
class PredicateSymbol:
    """A predicate symbol with a fixed signature.

    ``uninterpreted=True`` marks the named placeholders the paper preserves
    for vague terms ("legitimate_business_purpose"); ``source_text`` keeps
    the verbatim policy language for human review.
    """

    name: str
    arg_sorts: tuple[Sort, ...] = ()
    uninterpreted: bool = False
    source_text: str = ""

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __call__(self, *args: Term) -> "Predicate":
        return Predicate(self, tuple(args))


@dataclass(frozen=True, slots=True)
class Predicate(Formula):
    """Application of a predicate symbol to terms (an atom)."""

    symbol: PredicateSymbol
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.symbol.arity:
            raise SortMismatchError(
                f"{self.symbol.name} expects {self.symbol.arity} args, got {len(self.args)}"
            )
        for arg, expected in zip(self.args, self.symbol.arg_sorts):
            if arg.sort != expected:
                raise SortMismatchError(
                    f"{self.symbol.name}: argument {arg} has sort {arg.sort}, expected {expected}"
                )


@dataclass(frozen=True, slots=True)
class TrueFormula(Formula):
    """The constant true."""


@dataclass(frozen=True, slots=True)
class FalseFormula(Formula):
    """The constant false."""


@dataclass(frozen=True, slots=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula


@dataclass(frozen=True, slots=True)
class And(Formula):
    """N-ary conjunction."""

    operands: tuple[Formula, ...] = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """N-ary disjunction."""

    operands: tuple[Formula, ...] = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class Implies(Formula):
    """Material implication."""

    antecedent: Formula
    consequent: Formula


@dataclass(frozen=True, slots=True)
class Iff(Formula):
    """Biconditional."""

    left: Formula
    right: Formula


@dataclass(frozen=True, slots=True)
class Forall(Formula):
    """Universal quantification over one variable."""

    variable: Variable
    body: Formula


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    """Existential quantification over one variable."""

    variable: Variable
    body: Formula


TRUE = TrueFormula()
FALSE = FalseFormula()
