"""First-order logic representation.

Immutable AST for many-sorted FOL with uninterpreted predicates, the
formalism the paper compiles policies into.  Vague policy terms become
:class:`~repro.fol.formula.PredicateSymbol` instances flagged as
*uninterpreted*, carrying their original legal text so that "the result
depends on how these vague terms are resolved" can be reported verbatim.
"""

from repro.fol.terms import (
    BOOL,
    DATA,
    ENTITY,
    Constant,
    FunctionSymbol,
    Sort,
    Term,
    Variable,
)
from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
    TrueFormula,
)
from repro.fol.builder import (
    conjoin,
    disjoin,
    exists,
    forall,
    implies,
    negate,
    pred,
    uninterpreted,
)
from repro.fol.printer import pretty
from repro.fol.simplify import simplify, to_nnf
from repro.fol.visitor import (
    collect_constants,
    collect_predicates,
    collect_uninterpreted,
    free_variables,
    substitute,
)

__all__ = [
    "Sort",
    "ENTITY",
    "DATA",
    "BOOL",
    "Term",
    "Variable",
    "Constant",
    "FunctionSymbol",
    "Formula",
    "Predicate",
    "PredicateSymbol",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Forall",
    "Exists",
    "TrueFormula",
    "FalseFormula",
    "pred",
    "uninterpreted",
    "conjoin",
    "disjoin",
    "negate",
    "implies",
    "forall",
    "exists",
    "pretty",
    "simplify",
    "to_nnf",
    "collect_predicates",
    "collect_constants",
    "collect_uninterpreted",
    "free_variables",
    "substitute",
]
