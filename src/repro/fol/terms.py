"""Sorts and terms for many-sorted first-order logic."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SortMismatchError


@dataclass(frozen=True, slots=True)
class Sort:
    """A named sort (type) of individuals."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Sort of actors: companies, users, third parties.
ENTITY = Sort("Entity")
#: Sort of data types: email address, location information, ...
DATA = Sort("Data")
#: Built-in boolean sort (used only for predicate result typing).
BOOL = Sort("Bool")


class Term:
    """Base class for terms; see :class:`Variable` and :class:`Constant`."""

    sort: Sort

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A sorted variable, bound by a quantifier or free."""

    name: str
    sort: Sort

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A sorted constant naming a concrete entity or data type.

    Constant names are mangled identifiers ("email_address"); the original
    policy text is kept in ``source_text`` for reporting.
    """

    name: str
    sort: Sort
    source_text: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FunctionSymbol:
    """An uninterpreted function symbol with a fixed signature."""

    name: str
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __call__(self, *args: Term) -> "Application":
        return Application(self, tuple(args))


@dataclass(frozen=True, slots=True)
class Application(Term):
    """Application of a function symbol to argument terms."""

    symbol: FunctionSymbol
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) != self.symbol.arity:
            raise SortMismatchError(
                f"{self.symbol.name} expects {self.symbol.arity} args, got {len(self.args)}"
            )
        for arg, expected in zip(self.args, self.symbol.arg_sorts):
            if arg.sort != expected:
                raise SortMismatchError(
                    f"{self.symbol.name}: argument {arg} has sort {arg.sort}, expected {expected}"
                )

    @property
    def sort(self) -> Sort:  # type: ignore[override]
        return self.symbol.result_sort

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.symbol.name}({inner})"


def mangle(text: str) -> str:
    """Turn arbitrary policy text into a valid FOL/SMT identifier.

    >>> mangle("email address")
    'email_address'
    >>> mangle("Meta's camera feature")
    'meta_s_camera_feature'
    """
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "_":
            out.append("_")
    ident = "".join(out).strip("_")
    if not ident:
        return "anon"
    if ident[0].isdigit():
        ident = "n_" + ident
    return ident
