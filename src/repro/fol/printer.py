"""Human-readable pretty printer for FOL formulas."""

from __future__ import annotations

from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    TrueFormula,
)

_SYMBOLS = {
    "and": "∧",
    "or": "∨",
    "not": "¬",
    "implies": "→",
    "iff": "↔",
    "forall": "∀",
    "exists": "∃",
    "true": "⊤",
    "false": "⊥",
}


def pretty(formula: Formula, *, unicode_symbols: bool = True) -> str:
    """Render ``formula`` as a readable single-line string."""
    sym = _SYMBOLS if unicode_symbols else {
        "and": "&",
        "or": "|",
        "not": "!",
        "implies": "->",
        "iff": "<->",
        "forall": "forall",
        "exists": "exists",
        "true": "true",
        "false": "false",
    }

    def render(node: Formula, parent_prec: int) -> str:
        text, prec = _render(node, sym, render)
        if prec < parent_prec:
            return f"({text})"
        return text

    return render(formula, 0)


def _render(node: Formula, sym: dict[str, str], render) -> tuple[str, int]:
    # Precedence: atoms 5, not 4, and 3, or 2, implies/iff 1, quantifier 1.
    if isinstance(node, TrueFormula):
        return sym["true"], 5
    if isinstance(node, FalseFormula):
        return sym["false"], 5
    if isinstance(node, Predicate):
        if not node.args:
            mark = "?" if node.symbol.uninterpreted else ""
            return f"{node.symbol.name}{mark}", 5
        inner = ", ".join(str(a) for a in node.args)
        return f"{node.symbol.name}({inner})", 5
    if isinstance(node, Not):
        return f"{sym['not']}{render(node.operand, 5)}", 4
    if isinstance(node, And):
        return f" {sym['and']} ".join(render(op, 4) for op in node.operands), 3
    if isinstance(node, Or):
        return f" {sym['or']} ".join(render(op, 3) for op in node.operands), 2
    if isinstance(node, Implies):
        left = render(node.antecedent, 2)
        right = render(node.consequent, 1)
        return f"{left} {sym['implies']} {right}", 1
    if isinstance(node, Iff):
        return f"{render(node.left, 2)} {sym['iff']} {render(node.right, 2)}", 1
    if isinstance(node, Forall):
        return (
            f"{sym['forall']}{node.variable.name}:{node.variable.sort}. "
            f"{render(node.body, 1)}",
            1,
        )
    if isinstance(node, Exists):
        return (
            f"{sym['exists']}{node.variable.name}:{node.variable.sort}. "
            f"{render(node.body, 1)}",
            1,
        )
    raise TypeError(f"unknown formula node: {node!r}")
