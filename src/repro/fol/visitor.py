"""Traversal utilities over the FOL AST: collection and substitution."""

from __future__ import annotations

from typing import Iterator

from repro.fol.formula import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
)
from repro.fol.terms import Application, Constant, Term, Variable


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Depth-first pre-order iteration over all subformulas."""
    yield formula
    if isinstance(formula, Not):
        yield from subformulas(formula.operand)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            yield from subformulas(op)
    elif isinstance(formula, Implies):
        yield from subformulas(formula.antecedent)
        yield from subformulas(formula.consequent)
    elif isinstance(formula, Iff):
        yield from subformulas(formula.left)
        yield from subformulas(formula.right)
    elif isinstance(formula, (Forall, Exists)):
        yield from subformulas(formula.body)


def _terms_in(term: Term) -> Iterator[Term]:
    yield term
    if isinstance(term, Application):
        for arg in term.args:
            yield from _terms_in(arg)


def atoms(formula: Formula) -> Iterator[Predicate]:
    """All predicate atoms in ``formula``."""
    for sub in subformulas(formula):
        if isinstance(sub, Predicate):
            yield sub


def collect_predicates(formula: Formula) -> set[PredicateSymbol]:
    """Every predicate symbol used anywhere in ``formula``."""
    return {atom.symbol for atom in atoms(formula)}


def collect_uninterpreted(formula: Formula) -> set[PredicateSymbol]:
    """The uninterpreted (vague/external) predicate symbols in ``formula``."""
    return {s for s in collect_predicates(formula) if s.uninterpreted}


def collect_constants(formula: Formula) -> set[Constant]:
    """Every constant appearing as (part of) a predicate argument."""
    found: set[Constant] = set()
    for atom in atoms(formula):
        for arg in atom.args:
            for term in _terms_in(arg):
                if isinstance(term, Constant):
                    found.add(term)
    return found


def free_variables(formula: Formula) -> set[Variable]:
    """Variables occurring free in ``formula``."""

    def walk(node: Formula, bound: frozenset[Variable]) -> set[Variable]:
        if isinstance(node, Predicate):
            out: set[Variable] = set()
            for arg in node.args:
                for term in _terms_in(arg):
                    if isinstance(term, Variable) and term not in bound:
                        out.add(term)
            return out
        if isinstance(node, Not):
            return walk(node.operand, bound)
        if isinstance(node, (And, Or)):
            out = set()
            for op in node.operands:
                out |= walk(op, bound)
            return out
        if isinstance(node, Implies):
            return walk(node.antecedent, bound) | walk(node.consequent, bound)
        if isinstance(node, Iff):
            return walk(node.left, bound) | walk(node.right, bound)
        if isinstance(node, (Forall, Exists)):
            return walk(node.body, bound | {node.variable})
        return set()

    return walk(formula, frozenset())


def _substitute_term(term: Term, mapping: dict[Variable, Term]) -> Term:
    if isinstance(term, Variable):
        return mapping.get(term, term)
    if isinstance(term, Application):
        return Application(
            term.symbol, tuple(_substitute_term(a, mapping) for a in term.args)
        )
    return term


def substitute(formula: Formula, mapping: dict[Variable, Term]) -> Formula:
    """Capture-avoiding substitution of variables by terms.

    Quantified variables shadow the mapping; since all our quantifier
    instantiations substitute ground terms, no renaming is ever needed.
    """
    if isinstance(formula, Predicate):
        return Predicate(
            formula.symbol,
            tuple(_substitute_term(a, mapping) for a in formula.args),
        )
    if isinstance(formula, Not):
        return Not(substitute(formula.operand, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.antecedent, mapping),
            substitute(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, (Forall, Exists)):
        inner = {k: v for k, v in mapping.items() if k != formula.variable}
        cls = type(formula)
        return cls(formula.variable, substitute(formula.body, inner))
    return formula
