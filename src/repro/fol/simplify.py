"""FOL simplification passes.

The paper's future-work list names "FOL formula simplification techniques
such as pruning irrelevant edges before encoding" as the route around solver
timeouts.  These passes implement the logical half of that: flattening,
unit propagation, duplicate elimination, negation normal form, and
predicate-relevance pruning (used by the A2 ablation bench).
"""

from __future__ import annotations

from repro.fol.formula import (
    FALSE,
    TRUE,
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    TrueFormula,
)
from repro.fol.visitor import collect_predicates


def simplify(formula: Formula) -> Formula:
    """Flatten nested connectives, drop units and duplicates, fold constants.

    The result is logically equivalent to the input.
    """
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, And):
        flat: list[Formula] = []
        for op in formula.operands:
            s = simplify(op)
            if isinstance(s, TrueFormula):
                continue
            if isinstance(s, FalseFormula):
                return FALSE
            if isinstance(s, And):
                flat.extend(s.operands)
            else:
                flat.append(s)
        unique = _dedupe(flat)
        if not unique:
            return TRUE
        if len(unique) == 1:
            return unique[0]
        return And(tuple(unique))
    if isinstance(formula, Or):
        flat = []
        for op in formula.operands:
            s = simplify(op)
            if isinstance(s, FalseFormula):
                continue
            if isinstance(s, TrueFormula):
                return TRUE
            if isinstance(s, Or):
                flat.extend(s.operands)
            else:
                flat.append(s)
        unique = _dedupe(flat)
        if not unique:
            return FALSE
        if len(unique) == 1:
            return unique[0]
        return Or(tuple(unique))
    if isinstance(formula, Implies):
        ante = simplify(formula.antecedent)
        cons = simplify(formula.consequent)
        if isinstance(ante, FalseFormula) or isinstance(cons, TrueFormula):
            return TRUE
        if isinstance(ante, TrueFormula):
            return cons
        if isinstance(cons, FalseFormula):
            return simplify(Not(ante))
        return Implies(ante, cons)
    if isinstance(formula, Iff):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == right:
            return TRUE
        return Iff(left, right)
    if isinstance(formula, (Forall, Exists)):
        body = simplify(formula.body)
        if isinstance(body, (TrueFormula, FalseFormula)):
            return body
        return type(formula)(formula.variable, body)
    return formula


def _dedupe(formulas: list[Formula]) -> list[Formula]:
    seen: set[Formula] = set()
    out = []
    for f in formulas:
        if f not in seen:
            seen.add(f)
            out.append(f)
    return out


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed onto atoms, no Implies/Iff."""
    return _nnf(formula, negated=False)


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, TrueFormula):
        return FALSE if negated else TRUE
    if isinstance(formula, FalseFormula):
        return TRUE if negated else FALSE
    if isinstance(formula, Predicate):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negated) for op in formula.operands)
        return Or(parts) if negated else And(parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negated) for op in formula.operands)
        return And(parts) if negated else Or(parts)
    if isinstance(formula, Implies):
        if negated:
            return And((_nnf(formula.antecedent, False), _nnf(formula.consequent, True)))
        return Or((_nnf(formula.antecedent, True), _nnf(formula.consequent, False)))
    if isinstance(formula, Iff):
        # a <-> b  ==  (a -> b) & (b -> a)
        expanded = And(
            (
                Implies(formula.left, formula.right),
                Implies(formula.right, formula.left),
            )
        )
        return _nnf(expanded, negated)
    if isinstance(formula, Forall):
        if negated:
            return Exists(formula.variable, _nnf(formula.body, True))
        return Forall(formula.variable, _nnf(formula.body, False))
    if isinstance(formula, Exists):
        if negated:
            return Forall(formula.variable, _nnf(formula.body, True))
        return Exists(formula.variable, _nnf(formula.body, False))
    raise TypeError(f"unknown formula node: {formula!r}")


def prune_irrelevant(formula: Formula, relevant_names: set[str]) -> Formula:
    """Drop top-level conjuncts that share no predicate with ``relevant_names``.

    This is the "pruning irrelevant edges before encoding" optimisation: a
    policy encoding is a big conjunction of per-edge facts, most of which
    cannot affect a given query.  Sound for validity checking when the query
    only references relevant predicates and the dropped conjuncts share no
    symbols with the kept ones.
    """
    simplified = simplify(formula)
    if not isinstance(simplified, And):
        return simplified
    kept = [
        op
        for op in simplified.operands
        if {s.name for s in collect_predicates(op)} & relevant_names
    ]
    return simplify(And(tuple(kept)))
