"""Convenience constructors for FOL formulas."""

from __future__ import annotations

from repro.fol.formula import (
    FALSE,
    TRUE,
    And,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Predicate,
    PredicateSymbol,
)
from repro.fol.terms import Sort, Term, Variable, mangle


def pred(name: str, *args: Term, arg_sorts: tuple[Sort, ...] | None = None) -> Predicate:
    """Build an interpreted predicate atom, inferring sorts from ``args``."""
    sorts = arg_sorts if arg_sorts is not None else tuple(a.sort for a in args)
    return PredicateSymbol(mangle(name), sorts)(*args)


def uninterpreted(source_text: str) -> Predicate:
    """Build a nullary uninterpreted predicate from vague policy text.

    The predicate name is the mangled text; the original wording is kept on
    the symbol for reporting.

    >>> uninterpreted("legitimate business purposes").symbol.name
    'legitimate_business_purposes'
    """
    symbol = PredicateSymbol(
        mangle(source_text), (), uninterpreted=True, source_text=source_text
    )
    return symbol()


def conjoin(formulas: list[Formula] | tuple[Formula, ...]) -> Formula:
    """Conjunction of ``formulas`` with unit simplification."""
    flat = [f for f in formulas if not isinstance(f, type(TRUE))]
    if any(isinstance(f, type(FALSE)) for f in flat):
        return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(formulas: list[Formula] | tuple[Formula, ...]) -> Formula:
    """Disjunction of ``formulas`` with unit simplification."""
    flat = [f for f in formulas if not isinstance(f, type(FALSE))]
    if any(isinstance(f, type(TRUE)) for f in flat):
        return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def negate(formula: Formula) -> Formula:
    """Negation with double-negation elimination."""
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def implies(antecedent: Formula, consequent: Formula) -> Implies:
    """Material implication."""
    return Implies(antecedent, consequent)


def forall(variables: Variable | list[Variable], body: Formula) -> Formula:
    """Universal closure over one or more variables (innermost last)."""
    if isinstance(variables, Variable):
        variables = [variables]
    result = body
    for var in reversed(variables):
        result = Forall(var, result)
    return result


def exists(variables: Variable | list[Variable], body: Formula) -> Formula:
    """Existential closure over one or more variables (innermost last)."""
    if isinstance(variables, Variable):
        variables = [variables]
    result = body
    for var in reversed(variables):
        result = Exists(var, result)
    return result
