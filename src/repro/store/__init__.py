"""Crash-safe persistence for :class:`~repro.core.pipeline.PolicyModel`.

The paper's Phase 2 leans on content hashing to make policy models
*incrementally maintainable*; this package makes them *durably
recoverable*:

* :mod:`repro.store.atomic` — fsync'd write-to-temp-then-rename file
  primitives with named crash-step hooks;
* :mod:`repro.store.serialize` — full round-trip between a
  :class:`~repro.core.pipeline.PolicyModel` and a set of hashable
  artifact payloads;
* :mod:`repro.store.snapshot` — :class:`SnapshotStore`, a versioned
  snapshot directory with a sha256 manifest per snapshot, an atomic
  commit protocol, a write-ahead journal for incremental updates, and
  quarantine-with-fallback recovery for corrupt snapshots;
* :mod:`repro.store.audit` — structural-invariant and
  incremental-vs-rebuild parity auditing with optional auto-heal;
* :mod:`repro.store.faults` — deterministic crash injection for the
  commit protocol (test infrastructure).
"""

from repro.store.atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.store.audit import (
    AuditFinding,
    AuditReport,
    audit_parity,
    audit_structure,
    heal_model,
)
from repro.store.serialize import MODEL_ARTIFACTS, model_artifacts, model_from_artifacts
from repro.store.snapshot import (
    LoadResult,
    QuarantineReport,
    SnapshotInfo,
    SnapshotStore,
)

__all__ = [
    "SnapshotStore",
    "SnapshotInfo",
    "LoadResult",
    "QuarantineReport",
    "AuditReport",
    "AuditFinding",
    "audit_structure",
    "audit_parity",
    "heal_model",
    "MODEL_ARTIFACTS",
    "model_artifacts",
    "model_from_artifacts",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]
