"""Structural-invariant and incremental-drift auditing for policy models.

Two audits, one report type:

* :func:`audit_structure` checks the invariants every healthy
  :class:`~repro.core.pipeline.PolicyModel` must satisfy — taxonomy
  acyclicity and rooting, graph edges referencing known segments and
  matching the extracted practices, and the embedding index staying in
  sync with the graph (the ``_index_graph_embeddings`` drift class).
* :func:`audit_parity` compares an incrementally patched model against a
  from-scratch rebuild of the same extraction — the paper's "update only
  those branches" promise, checked component by component (graph edge
  multisets, taxonomy edge sets, vocabulary, segments, practices, and the
  embedding-index projection).

Both return an :class:`AuditReport`; :func:`heal_model` is the remedy for
a failed parity audit — it overwrites the patched model's derived state
with the rebuild, in place, so existing references stay valid.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.graphs import NODE_DATA, NODE_ENTITY, PolicyGraph, PracticeEdge
from repro.core.hierarchy import Taxonomy
from repro.core.pipeline import PolicyModel
from repro.embeddings.search import edge_text
from repro.errors import HierarchyError


@dataclass(frozen=True, slots=True)
class AuditFinding:
    """One violated invariant: which check, on what, and the evidence."""

    check: str
    subject: str
    detail: str

    def summary(self) -> str:
        return f"[{self.check}] {self.subject}: {self.detail}"


@dataclass(slots=True)
class AuditReport:
    """Outcome of one audit run."""

    kind: str  # "structure" | "parity"
    checks_run: list[str] = field(default_factory=list)
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings

    def add(self, check: str, subject: str, detail: str) -> None:
        self.findings.append(AuditFinding(check=check, subject=subject, detail=detail))

    def summary(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.findings)} findings)"
        lines = [f"{self.kind} audit: {status}; checks: {', '.join(self.checks_run)}"]
        lines.extend(f"  {f.summary()}" for f in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "passed": self.passed,
            "checks_run": list(self.checks_run),
            "findings": [
                {"check": f.check, "subject": f.subject, "detail": f.detail}
                for f in self.findings
            ],
        }


# ---------------------------------------------------------------------------
# Comparable projections
# ---------------------------------------------------------------------------


def edge_key(edge: PracticeEdge) -> tuple:
    """Order-insensitive identity of one practice edge."""
    return (
        edge.source,
        edge.action,
        edge.target,
        edge.receiver,
        edge.condition,
        edge.permission,
        edge.segment_id,
        tuple(edge.vague_terms),
        edge.derived,
    )


def _expected_edges(model: PolicyModel) -> Counter:
    """The edge multiset the extraction's practices should materialize."""
    expected: Counter = Counter()
    probe = PolicyGraph(model.company)
    probe.add_practices(model.extraction.practices)
    for edge in probe.edges():
        expected[edge_key(edge)] += 1
    return expected


def _required_store_keys(model: PolicyModel) -> set[str]:
    """Every key the embedding index must hold for Phase 3 to see the graph."""
    keys = set(model.graph.graph.nodes)
    keys.update(
        edge_text(edge.source, edge.action, edge.target)
        for edge in model.graph.edges()
    )
    return keys


# ---------------------------------------------------------------------------
# Structural invariants
# ---------------------------------------------------------------------------


def _audit_taxonomy(report: AuditReport, taxonomy: Taxonomy, name: str) -> None:
    try:
        taxonomy.validate()
    except HierarchyError as exc:
        report.add("taxonomy-consistency", name, str(exc))
    if not taxonomy.root:
        report.add("taxonomy-rooting", name, "empty root concept")
    for term in taxonomy.terms:
        if term == taxonomy.root:
            continue
        chain = taxonomy.ancestors(term)
        if not chain or chain[-1] != taxonomy.root:
            report.add(
                "taxonomy-rooting", name, f"term {term!r} does not reach the root"
            )


def audit_structure(model: PolicyModel) -> AuditReport:
    """Check every structural invariant of one model."""
    report = AuditReport(kind="structure")

    report.checks_run.append("taxonomy-consistency")
    report.checks_run.append("taxonomy-rooting")
    _audit_taxonomy(report, model.data_taxonomy, "data_taxonomy")
    _audit_taxonomy(report, model.entity_taxonomy, "entity_taxonomy")

    report.checks_run.append("taxonomy-coverage")
    for node, attrs in model.graph.graph.nodes(data=True):
        kind = attrs.get("kind")
        if kind == NODE_DATA and node not in model.data_taxonomy:
            report.add("taxonomy-coverage", node, "data node missing from G_DD")
        elif kind == NODE_ENTITY and node not in model.entity_taxonomy:
            report.add("taxonomy-coverage", node, "entity node missing from G_ED")

    report.checks_run.append("edge-provenance")
    known_segments = {s.segment_id for s in model.extraction.segments}
    for edge in model.graph.edges():
        if edge.segment_id not in known_segments:
            report.add(
                "edge-provenance",
                edge.describe(),
                f"references unknown segment {edge.segment_id!r}",
            )

    report.checks_run.append("edge-practice-parity")
    actual: Counter = Counter(edge_key(e) for e in model.graph.edges())
    expected = _expected_edges(model)
    for key in (expected - actual):
        report.add("edge-practice-parity", str(key[:3]), "practice edge missing from graph")
    for key in (actual - expected):
        report.add("edge-practice-parity", str(key[:3]), "graph edge not backed by any practice")

    report.checks_run.append("vocabulary-sync")
    nodes = set(model.graph.graph.nodes)
    for term in nodes - model.node_vocabulary:
        report.add("vocabulary-sync", term, "graph node missing from query vocabulary")
    for term in model.node_vocabulary - nodes:
        report.add("vocabulary-sync", term, "vocabulary term is not a graph node")

    report.checks_run.append("embedding-index-sync")
    for key in sorted(_required_store_keys(model)):
        if key not in model.store:
            report.add("embedding-index-sync", key, "graph element missing from embedding store")

    return report


# ---------------------------------------------------------------------------
# Incremental-vs-rebuild parity
# ---------------------------------------------------------------------------


def audit_parity(patched: PolicyModel, rebuilt: PolicyModel) -> AuditReport:
    """Compare a patched model with a from-scratch rebuild, field by field.

    The embedding store is compared as a *projection*: the patched store
    legitimately retains vectors for vocabulary that left the graph (the
    vocabulary filter hides them from queries), so only the keys the graph
    requires are checked for presence on both sides.
    """
    report = AuditReport(kind="parity")

    report.checks_run.append("company")
    if patched.company != rebuilt.company:
        report.add("company", patched.company, f"rebuild says {rebuilt.company!r}")

    report.checks_run.append("segments")
    patched_segments = [s.segment_id for s in patched.extraction.segments]
    rebuilt_segments = [s.segment_id for s in rebuilt.extraction.segments]
    if patched_segments != rebuilt_segments:
        report.add(
            "segments",
            "segment sequence",
            f"{len(patched_segments)} vs {len(rebuilt_segments)} ids diverge",
        )

    report.checks_run.append("practices")
    patched_practices = [p.as_dict() for p in patched.extraction.practices]
    rebuilt_practices = [p.as_dict() for p in rebuilt.extraction.practices]
    if patched_practices != rebuilt_practices:
        report.add(
            "practices",
            "practice list",
            f"{len(patched_practices)} vs {len(rebuilt_practices)} entries diverge",
        )

    report.checks_run.append("graph-edges")
    patched_edges = Counter(edge_key(e) for e in patched.graph.edges())
    rebuilt_edges = Counter(edge_key(e) for e in rebuilt.graph.edges())
    for key in (patched_edges - rebuilt_edges):
        report.add("graph-edges", str(key[:3]), "edge present only in patched model")
    for key in (rebuilt_edges - patched_edges):
        report.add("graph-edges", str(key[:3]), "edge present only in rebuilt model")

    for name in ("data_taxonomy", "entity_taxonomy"):
        report.checks_run.append(name)
        patched_tax: Taxonomy = getattr(patched, name)
        rebuilt_tax: Taxonomy = getattr(rebuilt, name)
        p_edges = set(patched_tax.as_edges())
        r_edges = set(rebuilt_tax.as_edges())
        for parent, child in sorted(p_edges - r_edges):
            report.add(name, child, f"patched places it under {parent!r}; rebuild does not")
        for parent, child in sorted(r_edges - p_edges):
            report.add(name, child, f"rebuild places it under {parent!r}; patch does not")

    report.checks_run.append("vocabulary")
    for term in sorted(patched.node_vocabulary - rebuilt.node_vocabulary):
        report.add("vocabulary", term, "term only in patched vocabulary")
    for term in sorted(rebuilt.node_vocabulary - patched.node_vocabulary):
        report.add("vocabulary", term, "term only in rebuilt vocabulary")

    report.checks_run.append("embedding-index-projection")
    required = _required_store_keys(rebuilt)
    for key in sorted(required):
        if key not in patched.store:
            report.add("embedding-index-projection", key, "missing from patched store")
        if key not in rebuilt.store:
            report.add("embedding-index-projection", key, "missing from rebuilt store")

    return report


def heal_model(patched: PolicyModel, rebuilt: PolicyModel) -> PolicyModel:
    """Overwrite ``patched``'s derived state with ``rebuilt``'s, in place.

    The remedy for a failed parity audit: callers hold references to the
    patched model object, so healing mutates it rather than swapping it
    out.  The revision counter is preserved (healing is not a new policy
    version) and the Phase 3 caches are cleared.
    """
    patched.company = rebuilt.company
    patched.extraction = rebuilt.extraction
    patched.data_taxonomy = rebuilt.data_taxonomy
    patched.entity_taxonomy = rebuilt.entity_taxonomy
    patched.graph = rebuilt.graph
    patched.store = rebuilt.store
    patched.node_vocabulary = rebuilt.node_vocabulary
    patched.caches.clear()
    return patched
