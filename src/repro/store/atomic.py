"""Atomic, fsync'd file-write primitives with named crash steps.

Every durable write in the model store goes through this module: the
payload is written to a temporary file *in the destination directory*,
flushed and fsync'd, renamed over the target, and the directory entry is
fsync'd.  A crash at any instant therefore leaves either the old file or
the new one — never a truncated hybrid.

The ``step`` hook is the crash-injection seam: commit protocols pass a
callable that is invoked *after* each named sub-operation completes
(``write:<label>``, ``rename:<label>``, ``syncdir:<label>``).  Production
code passes ``None``; the fault harness passes an injector that raises at
a designated step, simulating a kill between exactly those two
operations.  See :mod:`repro.store.faults`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable

#: Crash-step hook: called with a step name after that step completes.
StepHook = Callable[[str], None]


def _step(hook: StepHook | None, name: str) -> None:
    if hook is not None:
        hook(name)


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power loss.

    Silently skipped on platforms whose directories cannot be opened for
    reading (Windows); rename atomicity still holds there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def append_durable_line(
    handle,
    line: str,
    *,
    fsync: bool = True,
    step: StepHook | None = None,
    label: str | None = None,
) -> None:
    """Append one newline-terminated record to an open journal handle.

    The complement of :func:`atomic_write_bytes` for append-only logs: the
    line is written, flushed, and (by default) fsync'd before the call
    returns, so a crash after the call can lose at most records appended
    *later*.  A crash *during* the write can leave a torn final line —
    journal readers must therefore recover to the last complete prefix
    (see :mod:`repro.jobs.checkpoint`).  Steps: ``append:<label>``,
    ``sync:<label>``.
    """
    label = label or "line"
    handle.write(line + "\n")
    handle.flush()
    _step(step, f"append:{label}")
    if fsync:
        os.fsync(handle.fileno())
    _step(step, f"sync:{label}")


def atomic_write_bytes(
    path: str | Path,
    payload: bytes,
    *,
    step: StepHook | None = None,
    label: str | None = None,
) -> None:
    """Durably replace ``path`` with ``payload`` via temp-file + rename."""
    path = Path(path)
    label = label or path.name
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        _step(step, f"write:{label}")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _step(step, f"rename:{label}")
    fsync_dir(path.parent)
    _step(step, f"syncdir:{label}")


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    step: StepHook | None = None,
    label: str | None = None,
) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), step=step, label=label)


def atomic_write_json(
    path: str | Path,
    obj: object,
    *,
    indent: int | None = 1,
    step: StepHook | None = None,
    label: str | None = None,
) -> None:
    """JSON variant of :func:`atomic_write_bytes` (sorted, stable keys)."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=False), step=step, label=label
    )
