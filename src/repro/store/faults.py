"""Deterministic crash injection for the snapshot commit protocol.

The store's durable operations report named steps through the
:data:`~repro.store.atomic.StepHook` seam (``serialize``, ``stage_dir``,
``write:<artifact>``, ``rename_snapshot``, ``publish_current``,
``journal_begin``, ``journal_clear``, ...).  :class:`CrashInjector`
raises :class:`SimulatedCrash` the moment a designated step completes,
which models a process kill at that exact boundary: everything up to and
including the step has reached disk, nothing after it has.

:func:`record_steps` runs a commit once with a recording injector to
*enumerate* the schedule, so the crash suite can parametrize over every
boundary without hard-coding the protocol — adding a step to the commit
path automatically adds a kill point to the matrix.

Test infrastructure, not production code: nothing in the store imports
this module.
"""

from __future__ import annotations

from typing import Callable


class SimulatedCrash(BaseException):
    """A simulated process kill inside the commit protocol.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    no ``except Exception`` cleanup path in the code under test can
    swallow it and keep writing — a real ``kill -9`` cannot be caught
    either.
    """

    def __init__(self, step: str) -> None:
        self.step = step
        super().__init__(f"simulated crash at step {step!r}")


class CrashInjector:
    """Step hook that records the schedule and optionally kills one step.

    Args:
        crash_at: step name to crash on, or ``None`` to only record.
        occurrence: crash on the Nth (1-based) time ``crash_at`` fires —
            steps like ``write:CURRENT`` can occur more than once per
            protocol run.
    """

    def __init__(self, crash_at: str | None = None, *, occurrence: int = 1) -> None:
        self.crash_at = crash_at
        self.occurrence = occurrence
        self.steps: list[str] = []

    def __call__(self, name: str) -> None:
        self.steps.append(name)
        if name == self.crash_at:
            if self.steps.count(name) == self.occurrence:
                raise SimulatedCrash(name)


def record_steps(operation: Callable[[CrashInjector], object]) -> list[str]:
    """Run ``operation`` with a recording injector; return its step schedule.

    ``operation`` receives the injector and must thread it into the store
    under test as the ``step`` hook.
    """
    injector = CrashInjector()
    operation(injector)
    return list(injector.steps)


def kill_points(schedule: list[str]) -> list[tuple[str, int]]:
    """Expand a recorded schedule into (step, occurrence) kill coordinates.

    Repeated step names get one coordinate per firing, so a matrix built
    from this covers *every* boundary in the schedule exactly once.
    """
    seen: dict[str, int] = {}
    points: list[tuple[str, int]] = []
    for name in schedule:
        seen[name] = seen.get(name, 0) + 1
        points.append((name, seen[name]))
    return points
