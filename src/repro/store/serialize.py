"""Full round-trip between a :class:`PolicyModel` and artifact payloads.

A model snapshot is a set of named byte payloads, one per pipeline
artifact, each hashed individually in the snapshot manifest:

========================  =====================================================
``meta.json``             company, revision, vocabulary, generator provenance
``segments.json``         Phase 1 segmentation with content-hash ids
``practices.json``        extracted practices grouped by segment (in order)
``data_taxonomy.json``    G_DD as ordered (parent, child) edges
``entity_taxonomy.json``  G_ED as ordered (parent, child) edges
``graph.json``            every materialized practice edge, insertion order
``embeddings.npz``        the embedding store (keys + matrix + model config)
========================  =====================================================

Deserialization *replays* rather than trusts: taxonomies are rebuilt
through :meth:`Taxonomy.add` (which rejects cycles and dangling parents)
and graph edges through :meth:`PolicyGraph.restore_edge` (which rebuilds
segment provenance), so a payload that hashes correctly but is
structurally inconsistent still fails the load instead of producing a
silently broken model.  All structural failures surface as
:class:`~repro.errors.SnapshotCorruptionError`.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.core.extraction import ExtractionResult
from repro.core.hierarchy import Taxonomy
from repro.core.graphs import PolicyGraph, PracticeEdge
from repro.core.parameters import AnnotatedPractice
from repro.core.pipeline import PolicyModel
from repro.core.segmenter import Segment
from repro.embeddings.store import EmbeddingStore
from repro.errors import ReproError, SnapshotCorruptionError
from repro.llm.tasks import ExtractedParameters

#: Artifact names in write order; the manifest hashes each one.
MODEL_ARTIFACTS = (
    "meta.json",
    "segments.json",
    "practices.json",
    "data_taxonomy.json",
    "entity_taxonomy.json",
    "graph.json",
    "embeddings.npz",
)


def _json_bytes(obj: object) -> bytes:
    return json.dumps(obj, indent=1, sort_keys=False).encode("utf-8")


# ---------------------------------------------------------------------------
# Model -> artifacts
# ---------------------------------------------------------------------------


def _taxonomy_payload(taxonomy: Taxonomy) -> dict[str, object]:
    return {"root": taxonomy.root, "edges": [list(e) for e in taxonomy.as_edges()]}


def _edge_payload(edge: PracticeEdge) -> dict[str, object]:
    return {
        "source": edge.source,
        "action": edge.action,
        "target": edge.target,
        "receiver": edge.receiver,
        "condition": edge.condition,
        "permission": edge.permission,
        "segment_id": edge.segment_id,
        "vague_terms": [list(v) for v in edge.vague_terms],
        "derived": edge.derived,
    }


def model_artifacts(model: PolicyModel) -> dict[str, bytes]:
    """Serialize every component of ``model`` to named byte payloads."""
    extraction = model.extraction
    meta: dict[str, object] = {
        "company": model.company,
        "revision": model.revision,
        "vocabulary": sorted(model.node_vocabulary),
    }
    # Generated-corpus ground truth travels with the snapshot; the key is
    # omitted (not nulled) for real-policy models so their meta payload is
    # byte-identical to pre-provenance snapshots.
    if model.provenance is not None:
        meta["provenance"] = model.provenance
    return {
        "meta.json": _json_bytes(meta),
        "segments.json": _json_bytes(
            [
                {
                    "segment_id": s.segment_id,
                    "text": s.text,
                    "index": s.index,
                    "section": s.section,
                }
                for s in extraction.segments
            ]
        ),
        "practices.json": _json_bytes(
            {
                segment_id: [p.as_dict() for p in practices]
                for segment_id, practices in extraction.practices_by_segment.items()
            }
        ),
        "data_taxonomy.json": _json_bytes(_taxonomy_payload(model.data_taxonomy)),
        "entity_taxonomy.json": _json_bytes(_taxonomy_payload(model.entity_taxonomy)),
        "graph.json": _json_bytes(
            {
                "company": model.graph.company,
                "edges": [_edge_payload(e) for e in model.graph.edges()],
            }
        ),
        "embeddings.npz": model.store.to_bytes(),
    }


# ---------------------------------------------------------------------------
# Artifacts -> model
# ---------------------------------------------------------------------------


def _parse_json(payloads: Mapping[str, bytes], name: str) -> object:
    try:
        return json.loads(payloads[name].decode("utf-8"))
    except KeyError:
        raise SnapshotCorruptionError(f"snapshot artifact {name!r} is missing") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptionError(f"artifact {name!r} is not valid JSON: {exc}") from exc


def _restore_taxonomy(raw: object, name: str) -> Taxonomy:
    try:
        taxonomy = Taxonomy(root=str(raw["root"]))
        for parent, child in raw["edges"]:
            taxonomy.add(str(child), str(parent))
        taxonomy.validate()
        return taxonomy
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptionError(f"artifact {name!r} is inconsistent: {exc}") from exc


def _restore_practice(raw: dict[str, object]) -> AnnotatedPractice:
    return AnnotatedPractice(
        params=ExtractedParameters.from_dict(raw),
        segment_id=str(raw["segment_id"]),
        segment_index=int(raw["segment_index"]),
        section=str(raw.get("section", "")),
        opp115_categories=tuple(str(c) for c in raw.get("opp115_categories", [])),
        vague_terms=tuple(
            (str(phrase), str(pred)) for phrase, pred in raw.get("vague_terms", [])
        ),
    )


def _restore_edge(raw: dict[str, object]) -> PracticeEdge:
    return PracticeEdge(
        source=str(raw["source"]),
        action=str(raw["action"]),
        target=str(raw["target"]),
        receiver=None if raw.get("receiver") is None else str(raw["receiver"]),
        condition=None if raw.get("condition") is None else str(raw["condition"]),
        permission=bool(raw["permission"]),
        segment_id=str(raw["segment_id"]),
        vague_terms=tuple(
            (str(phrase), str(pred)) for phrase, pred in raw.get("vague_terms", [])
        ),
        derived=bool(raw.get("derived", False)),
    )


def model_from_artifacts(payloads: Mapping[str, bytes]) -> PolicyModel:
    """Reconstruct a :class:`PolicyModel` from :func:`model_artifacts` output.

    Raises :class:`~repro.errors.SnapshotCorruptionError` on any missing,
    unparsable, or structurally inconsistent payload.
    """
    meta = _parse_json(payloads, "meta.json")
    raw_segments = _parse_json(payloads, "segments.json")
    raw_practices = _parse_json(payloads, "practices.json")
    data_taxonomy = _restore_taxonomy(
        _parse_json(payloads, "data_taxonomy.json"), "data_taxonomy.json"
    )
    entity_taxonomy = _restore_taxonomy(
        _parse_json(payloads, "entity_taxonomy.json"), "entity_taxonomy.json"
    )
    raw_graph = _parse_json(payloads, "graph.json")

    try:
        company = str(meta["company"])
        revision = int(meta["revision"])
        vocabulary = {str(term) for term in meta["vocabulary"]}
        provenance = meta.get("provenance")
        if provenance is not None and not isinstance(provenance, dict):
            raise SnapshotCorruptionError(
                "meta.json provenance must be a JSON object"
            )

        extraction = ExtractionResult(company=company)
        extraction.segments = [
            Segment(
                segment_id=str(s["segment_id"]),
                text=str(s["text"]),
                index=int(s["index"]),
                section=str(s.get("section", "")),
            )
            for s in raw_segments
        ]
        for segment_id, entries in raw_practices.items():
            practices = [_restore_practice(p) for p in entries]
            extraction.practices_by_segment[str(segment_id)] = practices
            extraction.practices.extend(practices)

        graph = PolicyGraph(
            str(raw_graph["company"]),
            data_taxonomy=data_taxonomy,
            entity_taxonomy=entity_taxonomy,
        )
        for raw_edge in raw_graph["edges"]:
            graph.restore_edge(_restore_edge(raw_edge))

        store = EmbeddingStore.from_bytes(payloads["embeddings.npz"])
    except SnapshotCorruptionError:
        raise
    except Exception as exc:  # noqa: BLE001 - any malformed payload is corruption
        raise SnapshotCorruptionError(f"snapshot payload inconsistent: {exc}") from exc

    return PolicyModel(
        company=company,
        extraction=extraction,
        data_taxonomy=data_taxonomy,
        entity_taxonomy=entity_taxonomy,
        graph=graph,
        store=store,
        node_vocabulary=vocabulary,
        revision=revision,
        provenance=provenance,
    )
