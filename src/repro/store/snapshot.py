"""Versioned, hash-verified, crash-safe snapshot store for policy models.

Directory layout::

    <root>/
      CURRENT              # name of the active snapshot (atomic pointer)
      JOURNAL.json         # write-ahead record for in-flight updates
      snapshots/
        snap-000001/
          MANIFEST.json    # per-artifact sha256 + sizes, format version
          meta.json  segments.json  practices.json  data_taxonomy.json
          entity_taxonomy.json  graph.json  embeddings.npz
        .tmp-snap-000002/  # commit in progress (garbage-collected on open)
      quarantine/
        snap-000001/       # corrupt snapshot moved aside, with report.json

**Commit protocol.**  A snapshot is staged in a ``.tmp-`` directory (every
artifact written and fsync'd, then the manifest), renamed to its final
name in one atomic step, and only then *published* by atomically
rewriting ``CURRENT``.  A crash at any boundary leaves ``CURRENT``
pointing at a complete, hash-valid snapshot — old or new, never a hybrid.

**Update journal.**  :meth:`commit_update` brackets the commit with a
write-ahead journal naming the base and successor snapshots.  Recovery
(:meth:`recover`, run automatically by :meth:`load` and every commit)
rolls *forward* when the successor exists complete and hash-valid, and
rolls *back* (dropping partial state) otherwise, then clears the journal.

**Verification & quarantine.**  :meth:`load` re-hashes every artifact
against the manifest and structurally replays the payloads.  A snapshot
that fails is moved to ``quarantine/`` with a structured
:class:`QuarantineReport`, and the store falls back to the newest
remaining snapshot that verifies; only when none survives does it raise
:class:`~repro.errors.SnapshotCorruptionError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import PolicyModel
from repro.errors import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotNotFoundError,
)
from repro.store.atomic import StepHook, atomic_write_json, atomic_write_text, fsync_dir
from repro.store.serialize import MODEL_ARTIFACTS, model_artifacts, model_from_artifacts

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
CURRENT_NAME = "CURRENT"
JOURNAL_NAME = "JOURNAL.json"
_TMP_PREFIX = ".tmp-"
_SNAP_PREFIX = "snap-"


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


@dataclass(slots=True)
class SnapshotInfo:
    """Identity and provenance of one committed snapshot."""

    snapshot_id: str
    sequence: int
    revision: int
    company: str
    path: Path

    def as_dict(self) -> dict[str, object]:
        return {
            "snapshot_id": self.snapshot_id,
            "sequence": self.sequence,
            "revision": self.revision,
            "company": self.company,
            "path": str(self.path),
        }


@dataclass(slots=True)
class QuarantineReport:
    """Structured record of one quarantined (corrupt) snapshot."""

    snapshot_id: str
    reason: str
    failures: list[str] = field(default_factory=list)
    quarantined_to: str | None = None

    def summary(self) -> str:
        lines = [f"quarantined {self.snapshot_id}: {self.reason}"]
        lines.extend(f"  - {failure}" for failure in self.failures)
        if self.quarantined_to:
            lines.append(f"  moved to {self.quarantined_to}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "snapshot_id": self.snapshot_id,
            "reason": self.reason,
            "failures": list(self.failures),
            "quarantined_to": self.quarantined_to,
        }


@dataclass(slots=True)
class LoadResult:
    """Outcome of one :meth:`SnapshotStore.load`."""

    model: PolicyModel
    snapshot_id: str
    fallback_from: str | None = None  # corrupt id we fell back from
    quarantined: list[QuarantineReport] = field(default_factory=list)
    journal_recovery: str | None = None  # "rolled_forward" | "rolled_back"
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """True when no quarantine or journal recovery was needed."""
        return not self.quarantined and self.journal_recovery is None


class SnapshotStore:
    """Crash-safe snapshot directory for one policy's models.

    Args:
        root: store directory (created on first commit).
        keep_snapshots: retention bound — after a commit, only this many
            newest snapshots are kept (the current one always survives).
        step: crash-injection hook forwarded to every durable operation;
            ``None`` in production (see :mod:`repro.store.faults`).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        keep_snapshots: int = 8,
        step: StepHook | None = None,
    ) -> None:
        if keep_snapshots < 1:
            raise SnapshotError("keep_snapshots must be >= 1")
        self.root = Path(root)
        self.keep_snapshots = keep_snapshots
        self._step = step
        self.snapshots_dir = self.root / "snapshots"
        self.quarantine_dir = self.root / "quarantine"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current_id(self) -> str | None:
        """Name of the published snapshot, or ``None``."""
        try:
            text = (self.root / CURRENT_NAME).read_text("utf-8").strip()
        except OSError:
            return None
        return text or None

    def snapshot_ids(self) -> list[str]:
        """Committed snapshot names, oldest first."""
        if not self.snapshots_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.snapshots_dir.iterdir()
            if entry.is_dir() and entry.name.startswith(_SNAP_PREFIX)
        )

    def _next_sequence(self) -> int:
        # Quarantined snapshots count too: their sequence numbers must never
        # be reissued, or a re-quarantine would overwrite forensic evidence.
        names = list(self.snapshot_ids())
        if self.quarantine_dir.is_dir():
            names.extend(
                entry.name
                for entry in self.quarantine_dir.iterdir()
                if entry.name.startswith(_SNAP_PREFIX)
            )
        highest = 0
        for name in names:
            try:
                highest = max(highest, int(name[len(_SNAP_PREFIX) :]))
            except ValueError:
                continue
        return highest + 1

    def manifest(self, snapshot_id: str) -> dict[str, object]:
        path = self.snapshots_dir / snapshot_id / MANIFEST_NAME
        try:
            return json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotCorruptionError(
                f"manifest of {snapshot_id} unreadable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_snapshot(self, snapshot_id: str) -> list[str]:
        """Hash-verify one snapshot; returns failure descriptions (empty = ok)."""
        directory = self.snapshots_dir / snapshot_id
        if not directory.is_dir():
            return [f"snapshot directory {snapshot_id} missing"]
        try:
            manifest = self.manifest(snapshot_id)
        except SnapshotCorruptionError as exc:
            return [str(exc)]
        failures: list[str] = []
        if manifest.get("format_version") != FORMAT_VERSION:
            failures.append(
                f"unsupported format_version {manifest.get('format_version')!r}"
            )
            return failures
        artifacts = manifest.get("artifacts")
        if not isinstance(artifacts, dict) or set(artifacts) != set(MODEL_ARTIFACTS):
            failures.append("manifest artifact list does not match the format")
            return failures
        for name, entry in artifacts.items():
            path = directory / name
            try:
                payload = path.read_bytes()
            except OSError as exc:
                failures.append(f"{name}: unreadable ({exc})")
                continue
            digest = _sha256(payload)
            if digest != entry.get("sha256"):
                failures.append(
                    f"{name}: sha256 mismatch (manifest {entry.get('sha256')!r:.20}, "
                    f"actual {digest!r:.20})"
                )
        return failures

    def _read_model(self, snapshot_id: str) -> PolicyModel:
        directory = self.snapshots_dir / snapshot_id
        payloads = {
            name: (directory / name).read_bytes() for name in MODEL_ARTIFACTS
        }
        return model_from_artifacts(payloads)

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------

    def commit(self, model: PolicyModel) -> SnapshotInfo:
        """Atomically persist ``model`` as a new published snapshot."""
        self.recover()
        return self._commit(model)

    def _commit(self, model: PolicyModel) -> SnapshotInfo:
        payloads = model_artifacts(model)
        self._note("serialize")
        sequence = self._next_sequence()
        snapshot_id = f"{_SNAP_PREFIX}{sequence:06d}"

        self.snapshots_dir.mkdir(parents=True, exist_ok=True)
        staging = self.snapshots_dir / f"{_TMP_PREFIX}{snapshot_id}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        self._note("stage_dir")

        manifest_artifacts: dict[str, dict[str, object]] = {}
        for name in MODEL_ARTIFACTS:
            payload = payloads[name]
            path = staging / name
            with open(path, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            manifest_artifacts[name] = {
                "sha256": _sha256(payload),
                "bytes": len(payload),
            }
            self._note(f"write:{name}")
        manifest = {
            "format_version": FORMAT_VERSION,
            "snapshot_id": snapshot_id,
            "sequence": sequence,
            "company": model.company,
            "revision": model.revision,
            "artifacts": manifest_artifacts,
        }
        manifest_bytes = json.dumps(manifest, indent=1).encode("utf-8")
        with open(staging / MANIFEST_NAME, "wb") as handle:
            handle.write(manifest_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        self._note(f"write:{MANIFEST_NAME}")
        fsync_dir(staging)
        self._note("sync_stage_dir")

        final = self.snapshots_dir / snapshot_id
        os.replace(staging, final)
        self._note("rename_snapshot")
        fsync_dir(self.snapshots_dir)
        self._note("sync_snapshots_dir")

        self._publish(snapshot_id)
        self._prune(keep_id=snapshot_id)
        return SnapshotInfo(
            snapshot_id=snapshot_id,
            sequence=sequence,
            revision=model.revision,
            company=model.company,
            path=final,
        )

    def _publish(self, snapshot_id: str) -> None:
        atomic_write_text(
            self.root / CURRENT_NAME, snapshot_id + "\n", step=self._step, label=CURRENT_NAME
        )
        self._note("publish_current")

    def commit_update(self, model: PolicyModel) -> SnapshotInfo:
        """Journaled commit for an incrementally updated model.

        Writes a write-ahead record naming the base (currently published)
        snapshot and the successor before staging it, so a crash anywhere
        in the commit deterministically recovers to exactly one of the two
        states — see :meth:`recover`.
        """
        self.recover()
        base = self.current_id()
        successor = f"{_SNAP_PREFIX}{self._next_sequence():06d}"
        atomic_write_json(
            self.root / JOURNAL_NAME,
            {"op": "update", "base": base, "new": successor},
            step=self._step,
            label=JOURNAL_NAME,
        )
        self._note("journal_begin")
        info = self._commit(model)
        try:
            os.unlink(self.root / JOURNAL_NAME)
        except OSError:
            pass
        self._note("journal_clear")
        fsync_dir(self.root)
        return info

    def _prune(self, *, keep_id: str) -> None:
        """Retention: drop the oldest snapshots beyond ``keep_snapshots``."""
        ids = self.snapshot_ids()
        excess = len(ids) - self.keep_snapshots
        for snapshot_id in ids:
            if excess <= 0:
                break
            if snapshot_id == keep_id or snapshot_id == self.current_id():
                continue
            shutil.rmtree(self.snapshots_dir / snapshot_id, ignore_errors=True)
            excess -= 1

    def _note(self, name: str) -> None:
        if self._step is not None:
            self._step(name)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> str | None:
        """Apply journal recovery and garbage-collect staging directories.

        Returns ``"rolled_forward"``, ``"rolled_back"``, or ``None`` when
        there was no pending journal.  Idempotent; called automatically at
        the top of :meth:`load`, :meth:`commit`, and :meth:`commit_update`.
        """
        outcome: str | None = None
        journal_path = self.root / JOURNAL_NAME
        record: dict[str, object] | None = None
        if journal_path.exists():
            try:
                record = json.loads(journal_path.read_text("utf-8"))
            except (OSError, json.JSONDecodeError):
                record = None  # torn journal: the update never staged anything
        if record is not None:
            successor = record.get("new")
            current = self.current_id()
            if isinstance(successor, str) and current != successor:
                if not self.verify_snapshot(successor):
                    # The successor is complete and hash-valid: the crash hit
                    # between rename and publish.  Roll forward.
                    self._publish(successor)
                    outcome = "rolled_forward"
                else:
                    # Partial successor: drop it, stay on the base snapshot.
                    shutil.rmtree(
                        self.snapshots_dir / successor, ignore_errors=True
                    )
                    outcome = "rolled_back"
            elif isinstance(successor, str):
                outcome = "rolled_forward"  # published but journal not cleared
        if journal_path.exists():
            try:
                os.unlink(journal_path)
            except OSError:
                pass
            fsync_dir(self.root)
        if self.snapshots_dir.is_dir():
            for entry in self.snapshots_dir.iterdir():
                if entry.name.startswith(_TMP_PREFIX):
                    shutil.rmtree(entry, ignore_errors=True)
        return outcome

    # ------------------------------------------------------------------
    # Quarantine + load
    # ------------------------------------------------------------------

    def quarantine(self, snapshot_id: str, failures: list[str]) -> QuarantineReport:
        """Move a corrupt snapshot aside and write a structured report."""
        report = QuarantineReport(
            snapshot_id=snapshot_id,
            reason="snapshot failed verification",
            failures=list(failures),
        )
        source = self.snapshots_dir / snapshot_id
        if source.is_dir():
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_dir / snapshot_id
            if destination.exists():  # re-quarantine: keep the newest evidence
                shutil.rmtree(destination, ignore_errors=True)
            os.replace(source, destination)
            fsync_dir(self.quarantine_dir)
            fsync_dir(self.snapshots_dir)
            report.quarantined_to = str(destination)
            atomic_write_json(destination / "report.json", report.as_dict())
        return report

    def load(self) -> LoadResult:
        """Load the newest hash-valid snapshot, quarantining corrupt ones.

        Raises :class:`~repro.errors.SnapshotNotFoundError` when the store
        has never committed, and
        :class:`~repro.errors.SnapshotCorruptionError` when every
        candidate snapshot failed verification (each has been quarantined
        with its report).
        """
        started = time.perf_counter()
        journal_recovery = self.recover()
        current = self.current_id()
        if current is None and not self.snapshot_ids():
            raise SnapshotNotFoundError(f"no snapshot committed under {self.root}")

        quarantined: list[QuarantineReport] = []
        fallback_from: str | None = None
        candidates: list[str] = []
        if current is not None:
            candidates.append(current)
        candidates.extend(
            snapshot_id
            for snapshot_id in reversed(self.snapshot_ids())
            if snapshot_id != current
        )

        for snapshot_id in candidates:
            failures = self.verify_snapshot(snapshot_id)
            if not failures:
                try:
                    model = self._read_model(snapshot_id)
                except SnapshotCorruptionError as exc:
                    failures = [str(exc)]
            if failures:
                quarantined.append(self.quarantine(snapshot_id, failures))
                if snapshot_id == current:
                    fallback_from = current
                continue
            if snapshot_id != current:
                # Re-point CURRENT at the survivor so the next start is clean.
                self._publish(snapshot_id)
            return LoadResult(
                model=model,
                snapshot_id=snapshot_id,
                fallback_from=fallback_from,
                quarantined=quarantined,
                journal_recovery=journal_recovery,
                seconds=time.perf_counter() - started,
            )
        raise SnapshotCorruptionError(
            f"no hash-valid snapshot under {self.root} "
            f"({len(quarantined)} quarantined)",
            reports=tuple(quarantined),
        )
