"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ExtractionError(ReproError):
    """Phase 1 failed to extract structured parameters from a segment."""


class HierarchyError(ReproError):
    """Phase 2 taxonomy construction produced an inconsistent hierarchy."""


class QueryError(ReproError):
    """Phase 3 could not interpret or translate a user query."""


class TranslationError(QueryError):
    """Query terms could not be mapped into the policy vocabulary.

    Raised by strict-mode translation when a term has no embedding
    candidate above the similarity floor; ``terms`` carries every
    untranslatable term so callers can report them all at once.
    """

    def __init__(self, message: str, terms: tuple[str, ...] = ()) -> None:
        self.terms = tuple(terms)
        super().__init__(message)


class FOLError(ReproError):
    """An ill-formed first-order logic formula was constructed."""


class SortMismatchError(FOLError):
    """A term was used where a different sort was expected."""


class SMTLibError(ReproError):
    """SMT-LIB generation or parsing failed."""


class SMTLibParseError(SMTLibError):
    """The SMT-LIB parser encountered malformed input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SolverError(ReproError):
    """The SMT solver was driven incorrectly (e.g. pop on empty stack)."""


class BudgetExceededError(SolverError):
    """A solver resource budget was exhausted mid-operation.

    Callers normally never see this: the solver converts it into an
    ``UNKNOWN`` result.  It is public so tests can assert on the mechanism.
    """


class LLMError(ReproError):
    """The LLM client failed to produce a usable completion."""


class PromptError(LLMError):
    """A prompt template was rendered with missing or invalid fields."""


class CircuitOpenError(LLMError):
    """A completion was short-circuited by an open circuit breaker.

    Raised without consulting the backend; distinct from other
    :class:`LLMError` subclasses so retry policies can refuse to retry it
    (retrying an open circuit only burns the cooldown).
    """


class InjectedFaultError(LLMError):
    """A deterministic fault raised by the test-only fault injector."""


class ProviderError(LLMError):
    """A remote completion provider failed (HTTP backend or cassette).

    The taxonomy below is what the resilience stack keys on: transient
    subclasses are retried, :class:`RateLimitError` additionally carries
    the server's ``Retry-After`` hint, and permanent subclasses abort
    immediately (retrying a 401 only burns the retry budget).
    """


class TransientHTTPError(ProviderError):
    """A retryable provider failure: 5xx, timeout, or connection loss.

    ``status`` is the HTTP status code when one was received, ``None``
    for transport-level failures (reset, timeout, unparseable body).
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        self.status = status
        super().__init__(message)


class RateLimitError(TransientHTTPError):
    """The provider rejected the call with 429 (or equivalent).

    ``retry_after`` is the server-advised backoff in seconds (``None``
    when the response carried no usable ``Retry-After`` header).
    :class:`~repro.resilience.retry.RetryingLLM` honours the hint:
    it sleeps ``min(max(schedule_delay, retry_after), max_delay)``
    instead of hammering the rate-limited backend on the geometric
    schedule alone.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        status: int = 429,
    ) -> None:
        self.retry_after = retry_after
        super().__init__(message, status=status)


class PermanentHTTPError(ProviderError):
    """A non-retryable provider failure: 4xx other than 408/429.

    Never retried — the request itself is wrong (bad auth, bad payload,
    nonexistent model) and will fail identically on every attempt.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        self.status = status
        super().__init__(message)


class CassetteError(ProviderError):
    """A prompt->completion cassette is invalid or was misused."""


class CassetteMissError(CassetteError):
    """Strict replay was asked for a prompt the cassette never recorded.

    Raised by :class:`~repro.providers.cassette.ReplayLLM` in strict
    mode; ``prompt_digest`` identifies the missing entry so a recording
    run can be re-driven with exactly the uncovered inputs.  Never
    retried — replaying the lookup cannot make the record appear.
    """

    def __init__(self, message: str, prompt_digest: str = "") -> None:
        self.prompt_digest = prompt_digest
        super().__init__(message)


class CorpusError(ReproError):
    """A bundled or generated policy could not be produced."""


class JobError(ReproError):
    """A supervised batch job was misconfigured or cannot resume."""


class ExecutionError(ReproError):
    """The process-pool execution backend was misconfigured or misused."""


class QueryCancelledError(ExecutionError):
    """A solver work unit was cancelled mid-flight and its worker killed.

    Raised by the process backend when a caller-supplied cancel event
    fires (the job watchdog's stall replacement, portfolio loser
    cancellation).  Never cached: the single-flight verification cache
    propagates it without storing a result, so a cancelled solve cannot
    poison later queries for the same formula.
    """


class RegistryError(ReproError):
    """The multi-policy registry index is invalid or was misused."""


class IntegrityError(ReproError):
    """The integrity subsystem (fsck/repair/scrub) was misused.

    Distinct from damage *findings* — those are data, reported in an
    :class:`~repro.integrity.findings.IntegrityReport` and surfaced by
    the CLI as exit code 9; this exception covers misuse (a nonexistent
    scan root, applying an already-applied plan)."""


class ServerError(ReproError):
    """The serving daemon failed to bind, become ready, or was misused."""


class SnapshotError(ReproError):
    """Base class for model-store persistence failures."""


class SnapshotNotFoundError(SnapshotError):
    """No committed snapshot exists in the store directory."""


class SnapshotCorruptionError(SnapshotError):
    """No hash-valid snapshot could be loaded from the store.

    Raised only after every candidate snapshot failed verification and was
    quarantined; ``reports`` carries the structured quarantine records so
    callers can surface *what* was corrupt, not just that loading failed.
    """

    def __init__(self, message: str, reports: tuple = ()) -> None:
        self.reports = tuple(reports)
        super().__init__(message)
