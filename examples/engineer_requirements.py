#!/usr/bin/env python3
"""Engineer scenario: extract implementation requirements for a feature.

An engineer building a contact-sync feature needs the exact conditions the
policy attaches to contact data: what may be collected, what must be gated
on user choice, and which conditions are vague enough to need a product or
legal decision.  The same pass shows the formal-verification boundary: the
solver proves what it can and names the uninterpreted predicates it cannot.
"""

from repro import PolicyPipeline, SolverBudget, PipelineConfig
from repro.corpus import tiktak_policy


def main() -> None:
    pipeline = PolicyPipeline(
        config=PipelineConfig(solver_budget=SolverBudget(timeout_seconds=5.0))
    )
    model = pipeline.process(tiktak_policy().text)

    # Bridge the engineer's vocabulary into the policy's vocabulary first —
    # the policy says "email", "phone number", "contact", not the feature
    # spec's wording.
    from repro.core.translation import translate_query_terms

    feature_terms = ["phone contacts", "email address", "phone number"]
    translations = translate_query_terms(
        pipeline.runner,
        model.store,
        feature_terms,
        vocabulary=model.node_vocabulary,
    )
    print("vocabulary bridging:")
    for term, result in translations.items():
        print(f"  {term!r} -> {result.translated!r} (verified={result.verified})")

    print("\nrequirements relevant to a contact-sync feature:\n")
    seen = set()
    for result in translations.values():
        closure = model.graph.data_closure(result.translated)
        for node in closure:
            for edge in model.graph.edges_touching(node):
                if edge.target in closure:
                    seen.add(edge.describe())
    for line in sorted(seen)[:20]:
        print("  " + line)

    print("\n--- formal check: may TikTak collect the phone number? ---")
    outcome = pipeline.query(model, "TikTak collects the phone number.")
    print(outcome.summary())

    if outcome.verification.depends_on:
        print("\nimplementation checklist derived from the verdict:")
        for name, source in sorted(outcome.verification.depends_on.items()):
            print(f"  [ ] implement/verify gate for {name!r} ({source!r})")

    # Exploring a condition without re-encoding: check-sat-assuming lets the
    # engineer ask "and if the user opted in?" cheaply.
    print("\n--- condition exploration with check-sat-assuming ---")
    from repro.core.encode import encode_query
    from repro.core.subgraph import extract_subgraph
    from repro.fol.builder import negate
    from repro.fol.formula import PredicateSymbol
    from repro.solver import Solver

    sub = extract_subgraph(model.graph, ["phone number"], [])
    encoded = encode_query(sub, pipeline.runner.extract_parameters(
        "TikTak collects the phone number.", model.company)[0])
    solver = Solver()
    for formula in encoded.policy_formulas:
        solver.assert_formula(formula)
    if encoded.query_formula is not None:
        solver.assert_formula(negate(encoded.query_formula))
    for name, source in sorted(encoded.uninterpreted.items()):
        assumption = PredicateSymbol(name, (), uninterpreted=True)()
        result = solver.check_sat_assuming([assumption])
        verdict = "entailed" if result.is_unsat else "still not entailed"
        print(f"  assuming {name}: query {verdict}")


if __name__ == "__main__":
    main()
