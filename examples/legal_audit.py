#!/usr/bin/env python3
"""Legal-team scenario: audit a policy for contradictions and gaps.

Mirrors the PolicyLint workflow the paper cites: scan for apparent
contradictions, classify which are coherent exception patterns, report
the gaps (collection without retention, unconditional sharing, vague-term
hot spots) that a review should prioritize, and batch-verify the standing
compliance question list through ``PolicyPipeline.query_batch``.
"""

from repro import PolicyPipeline
from repro.analysis import (
    coverage_report,
    find_contradictions,
    find_incomplete_disclaimers,
    render_contradictions,
    render_coverage,
    render_disclaimers,
    rights_report,
)
from repro.corpus import metabook_policy
from repro.corpus.queries import POLICY_QUERIES


def main() -> None:
    policy = metabook_policy()
    print(f"auditing {policy.company} policy ({policy.word_count:,} words)")

    pipeline = PolicyPipeline()
    model = pipeline.process(policy.text)

    print("\n--- apparent contradictions (PolicyLint-style) ---")
    report = find_contradictions(
        model.extraction.practices, data_taxonomy=model.data_taxonomy
    )
    print(render_contradictions(report))

    # Compare against the generator's ground truth: the corpus deliberately
    # injects both coherent carve-outs and genuine contradictions.
    truth = policy.exception_pairs
    print(
        f"\nground truth: {len(truth)} injected pairs, "
        f"{sum(1 for p in truth if not p.coherent)} genuinely contradictory"
    )

    print("\n--- coverage and gap analysis ---")
    print(render_coverage(coverage_report(model.graph)))

    print("\n--- incomplete disclaimers ---")
    print(render_disclaimers(find_incomplete_disclaimers(model.graph)))

    print("\n--- user rights audit ---")
    print(rights_report(model.extraction.practices, model.graph).render())

    # The standing question list every review runs; the batch engine
    # verifies them concurrently and shares repeated solver work.
    print("\n--- batch verification of the compliance question list ---")
    questions = [q.text for q in POLICY_QUERIES if q.policy == "metabook"] + [
        "MetaBook shares the precise location with advertisers.",
        "MetaBook sells the biometric information to data brokers.",
        "Law enforcement receives the account information.",
        "MetaBook processes financial information.",  # repeated ask, cache hit
    ]
    batch = pipeline.query_batch(model, questions, max_workers=4)
    for outcome in batch:
        flags = []
        if outcome.verification.conditionally_valid:
            flags.append("conditionally valid")
        if outcome.verification.has_ambiguity:
            flags.append(f"depends on {len(outcome.verification.depends_on)} vague terms")
        suffix = f"  ({'; '.join(flags)})" if flags else ""
        print(f"  {outcome.verdict!s:7s} {outcome.question}{suffix}")
    print(f"  {batch.summary()}")

    print("\n--- where human judgment is required ---")
    vague = {}
    for practice in model.extraction.practices:
        for phrase, predicate in practice.vague_terms:
            vague.setdefault(predicate, set()).add(phrase)
    print(f"{len(vague)} distinct uninterpreted predicates; examples:")
    for predicate, phrases in sorted(vague.items())[:8]:
        print(f"  {predicate}: {sorted(phrases)[0]!r}")


if __name__ == "__main__":
    main()
