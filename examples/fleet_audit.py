#!/usr/bin/env python3
"""Fleet-scale scenario: audit many policies and aggregate, MAPS-style.

The paper cites MAPS, which scaled privacy-compliance analysis to a
million Android apps, and PolicyLint's corpus statistic that 14.2% of
apps contain apparent contradictions.  This example runs the pipeline over
a generated fleet of policies, asks every policy the same compliance
question suite through the concurrent batch engine
(``PolicyPipeline.query_batch``), and reports the corpus-level statistics
an app-store-scale audit would produce.
"""

from repro import PolicyPipeline
from repro.analysis import (
    coverage_report,
    find_contradictions,
    find_incomplete_disclaimers,
)
from repro.corpus.generator import GeneratorProfile, PolicyGenerator

FLEET_SIZE = 12
BATCH_WORKERS = 8

# The per-app compliance suite an auditor sweeps across the whole fleet.
COMPLIANCE_QUESTIONS = [
    "{company} collects the email address.",
    "{company} shares the location information with advertisers.",
    "{company} sells the personal information to third parties.",
    "Law enforcement receives the personal information.",
]


def main() -> None:
    pipeline = PolicyPipeline()
    per_policy = []
    batch_metrics = []
    for seed in range(FLEET_SIZE):
        # Vary size and contradiction profile across the fleet; a third of
        # the fleet gets no injected genuine contradictions at all.
        profile = GeneratorProfile(
            company=f"App{seed:02d}",
            platform=f"App{seed:02d}",
            seed=7000 + seed,
            exception_pairs=4 + seed % 3,
            incoherent_exception_fraction=0.0 if seed % 3 == 0 else 0.3,
        )
        doc = PolicyGenerator(profile).generate(1500 + 400 * (seed % 4))
        model = pipeline.process(doc.text)
        contradictions = find_contradictions(
            model.extraction.practices, data_taxonomy=model.data_taxonomy
        )
        coverage = coverage_report(model.graph)
        disclaimers = find_incomplete_disclaimers(model.graph)

        questions = [
            q.format(company=profile.company) for q in COMPLIANCE_QUESTIONS
        ]
        batch = pipeline.query_batch(model, questions, max_workers=BATCH_WORKERS)
        verdicts = batch.verdict_counts()
        batch_metrics.append(batch.metrics)

        per_policy.append(
            {
                "company": profile.company,
                "words": doc.word_count,
                "edges": model.statistics.total_edges,
                "apparent": contradictions.total,
                "genuine": len(contradictions.genuine),
                "coherent_fraction": contradictions.coherent_fraction,
                "retention_gaps": len(coverage.collection_without_retention),
                "disclaimer_findings": disclaimers.total_findings,
                "valid": verdicts.get("VALID", 0),
                "invalid": verdicts.get("INVALID", 0),
                "unknown": verdicts.get("UNKNOWN", 0),
            }
        )

    print(f"{'policy':8s} {'words':>6s} {'edges':>6s} {'apparent':>9s} "
          f"{'genuine':>8s} {'coherent':>9s} {'ret.gaps':>9s} {'disclaimers':>11s} "
          f"{'V/I/U':>7s}")
    for row in per_policy:
        print(
            f"{row['company']:8s} {row['words']:6d} {row['edges']:6d} "
            f"{row['apparent']:9d} {row['genuine']:8d} "
            f"{row['coherent_fraction']:8.1%} {row['retention_gaps']:9d} "
            f"{row['disclaimer_findings']:11d} "
            f"{row['valid']:>3d}/{row['invalid']}/{row['unknown']}"
        )

    with_genuine = sum(1 for r in per_policy if r["genuine"] > 0)
    queries_total = sum(m.queries for m in batch_metrics)
    verify_seconds = sum(m.verify_seconds for m in batch_metrics)
    cache_hits = sum(m.cache_hits for m in batch_metrics)
    cache_misses = sum(m.cache_misses for m in batch_metrics)
    print(
        f"\ncorpus statistics ({FLEET_SIZE} policies):"
        f"\n  policies with genuine contradictions: {with_genuine}"
        f" ({with_genuine / FLEET_SIZE:.1%} — PolicyLint reported 14.2% of apps)"
        f"\n  mean coherent-exception fraction: "
        f"{sum(r['coherent_fraction'] for r in per_policy) / FLEET_SIZE:.1%}"
        f"\n  compliance queries verified: {queries_total}"
        f" ({BATCH_WORKERS} workers, {verify_seconds:.2f}s solver time,"
        f" {cache_hits} cache hits / {cache_misses} misses)"
        f"\n  total LLM calls: {pipeline.llm.stats.calls}"
        f" ({pipeline.llm.stats.cache_hits} served from cache)"
    )


if __name__ == "__main__":
    main()
