#!/usr/bin/env python3
"""Fleet-scale scenario: audit many policies and aggregate, MAPS-style.

The paper cites MAPS, which scaled privacy-compliance analysis to a
million Android apps, and PolicyLint's corpus statistic that 14.2% of
apps contain apparent contradictions.  This example runs the pipeline over
a generated fleet of policies and reports the corpus-level statistics an
app-store-scale audit would produce.
"""

from repro import PolicyPipeline
from repro.analysis import (
    coverage_report,
    find_contradictions,
    find_incomplete_disclaimers,
)
from repro.corpus.generator import GeneratorProfile, PolicyGenerator

FLEET_SIZE = 12


def main() -> None:
    pipeline = PolicyPipeline()
    per_policy = []
    for seed in range(FLEET_SIZE):
        # Vary size and contradiction profile across the fleet; a third of
        # the fleet gets no injected genuine contradictions at all.
        profile = GeneratorProfile(
            company=f"App{seed:02d}",
            platform=f"App{seed:02d}",
            seed=7000 + seed,
            exception_pairs=4 + seed % 3,
            incoherent_exception_fraction=0.0 if seed % 3 == 0 else 0.3,
        )
        doc = PolicyGenerator(profile).generate(1500 + 400 * (seed % 4))
        model = pipeline.process(doc.text)
        contradictions = find_contradictions(
            model.extraction.practices, data_taxonomy=model.data_taxonomy
        )
        coverage = coverage_report(model.graph)
        disclaimers = find_incomplete_disclaimers(model.graph)
        per_policy.append(
            {
                "company": profile.company,
                "words": doc.word_count,
                "edges": model.statistics.total_edges,
                "apparent": contradictions.total,
                "genuine": len(contradictions.genuine),
                "coherent_fraction": contradictions.coherent_fraction,
                "retention_gaps": len(coverage.collection_without_retention),
                "disclaimer_findings": disclaimers.total_findings,
            }
        )

    print(f"{'policy':8s} {'words':>6s} {'edges':>6s} {'apparent':>9s} "
          f"{'genuine':>8s} {'coherent':>9s} {'ret.gaps':>9s} {'disclaimers':>11s}")
    for row in per_policy:
        print(
            f"{row['company']:8s} {row['words']:6d} {row['edges']:6d} "
            f"{row['apparent']:9d} {row['genuine']:8d} "
            f"{row['coherent_fraction']:8.1%} {row['retention_gaps']:9d} "
            f"{row['disclaimer_findings']:11d}"
        )

    with_genuine = sum(1 for r in per_policy if r["genuine"] > 0)
    print(
        f"\ncorpus statistics ({FLEET_SIZE} policies):"
        f"\n  policies with genuine contradictions: {with_genuine}"
        f" ({with_genuine / FLEET_SIZE:.1%} — PolicyLint reported 14.2% of apps)"
        f"\n  mean coherent-exception fraction: "
        f"{sum(r['coherent_fraction'] for r in per_policy) / FLEET_SIZE:.1%}"
        f"\n  total LLM calls: {pipeline.llm.stats.calls}"
        f" ({pipeline.llm.stats.cache_hits} served from cache)"
    )


if __name__ == "__main__":
    main()
