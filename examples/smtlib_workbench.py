#!/usr/bin/env python3
"""Working directly with the formal layer: FOL, SMT-LIB, and the solver.

Most users stay at the pipeline level, but the formal layer is a public
API of its own.  This walkthrough builds the paper's intro dialogue — "we
never share personal data, except to comply with the law or with consent"
— by hand, shows the generated SMT-LIB, round-trips it through the parser,
and explores the exception structure with check-sat-assuming, just as the
computer scientist in the dialogue would.
"""

from repro.fol import (
    DATA,
    ENTITY,
    Constant,
    PredicateSymbol,
    Variable,
    forall,
    implies,
    negate,
    pretty,
    uninterpreted,
)
from repro.fol.builder import disjoin
from repro.smtlib import compile_validity_script, execute_script_verbose
from repro.solver import Solver


def main() -> None:
    company = Constant("company", ENTITY)
    personal_data = Constant("personal_data", DATA)
    x = Variable("x", DATA)

    share = PredicateSymbol("share", (ENTITY, DATA))
    required_by_law = uninterpreted("required by law")
    consent = uninterpreted("with the user's express consent")

    # "We never share personal data, except to comply with the law or with
    # the user's express consent."  Formally: sharing implies one of the
    # two exceptions holds.
    policy = forall(
        x,
        implies(share(company, x), disjoin([required_by_law, consent])),
    )
    print("policy as FOL:")
    print("  " + pretty(policy))

    # The lawyer's reading survives formalization: the policy plus an
    # actual sharing event is NOT contradictory...
    solver = Solver()
    solver.assert_formula(policy)
    solver.assert_formula(share(company, personal_data))
    print("\npolicy + a sharing event:", solver.check_sat().status)

    # ...but the static analyzer's complaint is also real: with both
    # exceptions resolved to false, the same statements contradict.
    print(
        "same, assuming neither exception holds:",
        solver.check_sat_assuming([negate(required_by_law), negate(consent)]).status,
    )
    print(
        "assuming only legal compulsion:",
        solver.check_sat_assuming(
            [required_by_law, negate(consent), share(company, personal_data)]
        ).status,
    )

    # The textual round trip: compile to SMT-LIB, execute from text, and
    # read the model back with get-model.
    query = share(company, personal_data)
    script = compile_validity_script([policy], query)
    text = script.to_text() + "(get-model)\n"
    print("\ngenerated SMT-LIB:")
    for line in text.splitlines():
        print("  " + line)
    results, outputs = execute_script_verbose(text)
    print("verdict:", results[0].status, "(sat: sharing is not *forced* by the policy)")
    print("model returned by get-model:")
    for line in outputs:
        print("  " + line)


if __name__ == "__main__":
    main()
