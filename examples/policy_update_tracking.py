#!/usr/bin/env python3
"""Policy-author scenario: track changes across policy versions.

Demonstrates the incremental machinery: content-hashed segments mean a new
policy version only re-extracts what actually changed, and the
practice-level diff shows what the edit did to data handling.
"""

from repro import PolicyPipeline
from repro.analysis import diff_policies, render_diff
from repro.corpus import tiktak_policy


def main() -> None:
    base = tiktak_policy()
    pipeline = PolicyPipeline()

    print(f"processing version 1 ({base.word_count:,} words)...")
    model_v1 = pipeline.process(base.text)
    calls_v1 = pipeline.llm.stats.calls
    print(f"  LLM calls: {calls_v1}")

    # Version 2: a regulator forces two changes — consent gating on a
    # sharing statement, plus a brand-new collection disclosure.
    v2_text = base.text.replace(
        "We share your usage information with analytics providers",
        "We share your usage information with analytics providers only "
        "with your consent",
    )
    v2_text += "\nWe collect your voiceprints when you use voice effects.\n"

    print("\napplying version 2 incrementally...")
    model_v2, stats = pipeline.update(model_v1, v2_text)
    print(
        f"  segments: {stats.segments_total} total, "
        f"{stats.segments_reused} reused, "
        f"{stats.segments_reextracted} re-extracted, "
        f"{stats.segments_removed} removed"
    )
    print(f"  reuse fraction: {stats.reuse_fraction:.1%}")
    print(f"  additional LLM calls: {pipeline.llm.stats.calls - calls_v1}")

    print("\n--- what changed about data handling ---")
    diff = diff_policies(model_v1.extraction, model_v2.extraction)
    print(render_diff(diff))

    # The new practice is immediately queryable.
    outcome = pipeline.query(model_v2, "TikTak collects voiceprints.")
    print("\nverifying the new disclosure:")
    print(outcome.summary())


if __name__ == "__main__":
    main()
