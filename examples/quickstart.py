#!/usr/bin/env python3
"""Quickstart: process a policy, inspect the graph, verify a query.

Runs the full three-phase pipeline on the bundled TikTok-scale policy and
walks through the artifacts each phase produces.
"""

from repro import PolicyPipeline
from repro.corpus import tiktak_policy


def main() -> None:
    policy = tiktak_policy()
    print(f"policy: {policy.company}, {policy.word_count:,} words")

    # Phases 1 + 2: extraction, hierarchies, entity-data graph, embeddings.
    pipeline = PolicyPipeline()
    model = pipeline.process(policy.text)

    stats = model.statistics
    print("\nextraction statistics (cf. paper Table 1):")
    for key, value in stats.as_dict().items():
        print(f"  {key:22s} {value}")

    print("\nsample extracted edges:")
    for edge in model.graph.edges()[:8]:
        print("  " + edge.describe())

    print("\ndata hierarchy sample (depth-first from the root):")
    taxonomy = model.data_taxonomy
    for child in taxonomy.children("data")[:4]:
        print(f"  data -> {child}")
        for grandchild in taxonomy.children(child)[:3]:
            print(f"    {child} -> {grandchild}")

    # Phase 3: query verification through FOL -> SMT-LIB -> solver.
    print("\n" + "=" * 60)
    for question in (
        "The user provides email to TikTak.",
        "TikTak shares biometric identifiers with data brokers.",
    ):
        outcome = pipeline.query(model, question)
        print()
        print(outcome.summary())

    # The generated SMT-LIB is a real artifact you can inspect or feed to
    # another solver.
    outcome = pipeline.query(model, "The user provides email to TikTak.")
    print("\nfirst lines of the generated SMT-LIB script:")
    for line in outcome.verification.smtlib_text.splitlines()[:10]:
        print("  " + line)

    usage = pipeline.llm.stats
    print(
        f"\nLLM usage: {usage.calls} calls "
        f"({usage.cache_hits} cache hits), tasks: {usage.calls_by_task}"
    )


if __name__ == "__main__":
    main()
