"""Unit tests for incomplete-disclaimer detection."""

import pytest

from repro.analysis.disclaimers import (
    find_incomplete_disclaimers,
    is_sensitive,
    render_disclaimers,
)
from repro.core.graphs import PolicyGraph
from repro.core.hierarchy import Taxonomy
from repro.core.parameters import annotate
from repro.llm.tasks import ExtractedParameters


def _practice(sender, action, data_type, receiver=None, condition=None, permission=True, seg="s1"):
    return annotate(
        ExtractedParameters(
            sender=sender,
            receiver=receiver,
            subject="user",
            data_type=data_type,
            action=action,
            condition=condition,
            permission=permission,
        ),
        segment_id=seg,
        segment_index=0,
    )


class TestIsSensitive:
    @pytest.mark.parametrize(
        "term",
        [
            "biometric identifiers",
            "health information",
            "financial information",
            "precise location",
            "faceprints",
            "medications",
        ],
    )
    def test_sensitive(self, term):
        assert is_sensitive(term)

    @pytest.mark.parametrize("term", ["email address", "username", "device model"])
    def test_not_sensitive(self, term):
        assert not is_sensitive(term)


class TestSharedButNotCollected:
    def test_gap_detected(self):
        g = PolicyGraph("Acme")
        g.add_practice(_practice("acme", "share", "browsing history", receiver="advertisers"))
        report = find_incomplete_disclaimers(g)
        assert "browsing history" in report.shared_but_not_collected

    def test_collection_closes_gap(self):
        g = PolicyGraph("Acme")
        g.add_practices(
            [
                _practice("acme", "collect", "browsing history"),
                _practice("acme", "share", "browsing history", receiver="advertisers", seg="s2"),
            ]
        )
        report = find_incomplete_disclaimers(g)
        assert "browsing history" not in report.shared_but_not_collected

    def test_hierarchy_relative_closes_gap(self):
        taxonomy = Taxonomy(root="data")
        taxonomy.add("usage data", "data")
        taxonomy.add("browsing history", "usage data")
        g = PolicyGraph("Acme", data_taxonomy=taxonomy)
        g.add_practices(
            [
                _practice("acme", "collect", "usage data"),
                _practice("acme", "share", "browsing history", receiver="advertisers", seg="s2"),
            ]
        )
        report = find_incomplete_disclaimers(g)
        assert "browsing history" not in report.shared_but_not_collected

    def test_user_provision_counts_as_collection(self):
        g = PolicyGraph("Acme")
        g.add_practices(
            [
                _practice("user", "provide", "email"),
                _practice("acme", "share", "email", receiver="partners", seg="s2"),
            ]
        )
        report = find_incomplete_disclaimers(g)
        assert "email" not in report.shared_but_not_collected


class TestSensitiveWithoutConsent:
    def test_ungated_sensitive_sharing_flagged(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice("acme", "share", "health information", receiver="partners")
        )
        report = find_incomplete_disclaimers(g)
        assert report.sensitive_without_consent

    def test_consent_gate_accepted(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice(
                "acme",
                "share",
                "health information",
                receiver="partners",
                condition="with your consent",
            )
        )
        report = find_incomplete_disclaimers(g)
        assert not report.sensitive_without_consent

    def test_opt_out_counts_as_gate(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice(
                "acme",
                "share",
                "precise location",
                receiver="partners",
                condition="unless you opt out in your account settings",
            )
        )
        report = find_incomplete_disclaimers(g)
        assert not report.sensitive_without_consent

    def test_non_sensitive_not_flagged(self):
        g = PolicyGraph("Acme")
        g.add_practice(_practice("acme", "share", "username", receiver="partners"))
        report = find_incomplete_disclaimers(g)
        assert not report.sensitive_without_consent

    def test_denied_practice_not_flagged(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice("acme", "sell", "health information", permission=False)
        )
        report = find_incomplete_disclaimers(g)
        assert not report.sensitive_without_consent


class TestExternalDependencies:
    def test_law_reference(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice(
                "acme",
                "disclose",
                "email",
                receiver="law enforcement",
                condition="when required by law",
            )
        )
        report = find_incomplete_disclaimers(g)
        assert "law" in report.external_dependencies

    def test_settings_reference(self):
        g = PolicyGraph("Acme")
        g.add_practice(
            _practice(
                "acme",
                "collect",
                "gps location",
                condition="if you enable this feature in your settings",
            )
        )
        report = find_incomplete_disclaimers(g)
        assert "application settings" in report.external_dependencies

    def test_conditions_deduplicated(self):
        g = PolicyGraph("Acme")
        for i, data in enumerate(("email", "username")):
            g.add_practice(
                _practice(
                    "acme",
                    "disclose",
                    data,
                    receiver="courts",
                    condition="when required by law",
                    seg=f"s{i}",
                )
            )
        report = find_incomplete_disclaimers(g)
        assert report.external_dependencies["law"] == ["when required by law"]


class TestRendering:
    def test_render_covers_sections(self):
        g = PolicyGraph("Acme")
        g.add_practices(
            [
                _practice("acme", "share", "health information", receiver="partners"),
                _practice(
                    "acme",
                    "disclose",
                    "email",
                    receiver="courts",
                    condition="when required by law",
                    seg="s2",
                ),
            ]
        )
        text = render_disclaimers(find_incomplete_disclaimers(g))
        assert "incomplete disclaimers:" in text
        assert "sensitive data practices lacking a consent gate:" in text
        assert "[law]" in text

    def test_empty_graph(self):
        report = find_incomplete_disclaimers(PolicyGraph("Acme"))
        assert report.total_findings == 0

    def test_integration_on_bundled_policy(self, tiktak_model):
        report = find_incomplete_disclaimers(tiktak_model.graph)
        # The synthetic policies deliberately contain external references.
        assert "law" in report.external_dependencies
        assert report.total_findings > 0
